"""Tests for threshold-breach prediction."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.models.base import Forecast
from repro.service import BreachSeverity, predict_breach
from repro.service.thresholds import breach_probability_arrays


def _forecast(mean, spread=5.0, start=0.0):
    mean = np.asarray(mean, dtype=float)
    def mk(v):
        return TimeSeries(v, Frequency.HOURLY, start=start)

    return Forecast(
        mean=mk(mean),
        lower=mk(mean - spread),
        upper=mk(mean + spread),
        alpha=0.05,
        model_label="test",
    )


class TestPredictBreach:
    def test_no_breach(self):
        result = predict_breach(_forecast([10, 20, 30]), threshold=80.0)
        assert result.severity is BreachSeverity.NONE
        assert result.first_breach_step is None
        assert result.headroom == pytest.approx(50.0)

    def test_possible_breach_upper_band_only(self):
        result = predict_breach(_forecast([10, 70, 30], spread=15.0), threshold=80.0)
        assert result.severity is BreachSeverity.POSSIBLE
        assert result.first_breach_step == 2

    def test_likely_breach_point_forecast(self):
        result = predict_breach(_forecast([10, 85, 30], spread=10.0), threshold=80.0)
        assert result.severity is BreachSeverity.LIKELY
        assert result.first_breach_step == 2
        assert result.headroom < 0

    def test_certain_breach_lower_band(self):
        result = predict_breach(_forecast([10, 95, 30], spread=5.0), threshold=80.0)
        assert result.severity is BreachSeverity.CERTAIN

    def test_first_crossing_reported(self):
        result = predict_breach(_forecast([85, 90, 95], spread=1.0), threshold=80.0)
        assert result.first_breach_step == 1

    def test_timestamp_of_breach(self):
        result = predict_breach(
            _forecast([10, 85, 90], spread=1.0, start=7200.0), threshold=80.0
        )
        assert result.first_breach_timestamp == 7200.0 + 3600.0

    def test_nonfinite_threshold_rejected(self):
        with pytest.raises(DataError):
            predict_breach(_forecast([1.0]), threshold=np.inf)

    def test_describe(self):
        text = predict_breach(_forecast([10, 95]), threshold=80.0).describe()
        assert "threshold 80" in text


class TestDegenerateForecasts:
    """A live stream can hand the grader forecasts no batch run would
    produce; they must yield a no-breach verdict, never raise."""

    def test_all_nan_mean_is_no_breach(self):
        result = predict_breach(_forecast([np.nan, np.nan, np.nan]), threshold=80.0)
        assert result.severity is BreachSeverity.NONE
        assert result.first_breach_step is None
        assert np.isnan(result.headroom)

    def test_partial_nan_grades_on_finite_steps(self):
        result = predict_breach(_forecast([np.nan, 95.0, np.nan], spread=1.0), threshold=80.0)
        assert result.severity is BreachSeverity.CERTAIN
        assert result.first_breach_step == 2
        assert result.headroom == pytest.approx(-15.0)

    def test_nan_headroom_ignores_nan_steps(self):
        result = predict_breach(_forecast([np.nan, 30.0]), threshold=80.0)
        assert result.headroom == pytest.approx(50.0)

    def test_zero_width_interval_still_grades(self):
        result = predict_breach(_forecast([90.0, 90.0], spread=0.0), threshold=80.0)
        assert result.severity is BreachSeverity.CERTAIN
        result = predict_breach(_forecast([10.0, 10.0], spread=0.0), threshold=80.0)
        assert result.severity is BreachSeverity.NONE


class TestBreachProbability:
    """The band-quantile horizon probability shared with the planner."""

    def test_comfortable_margin_is_near_zero(self):
        mean = np.full(24, 10.0)
        p = breach_probability_arrays(mean, mean + 5.0, threshold=80.0)
        assert p == pytest.approx(0.0, abs=1e-9)

    def test_mean_at_threshold_is_half_per_step(self):
        mean = np.array([80.0])
        p = breach_probability_arrays(mean, mean + 5.0, threshold=80.0)
        assert p == pytest.approx(0.5)

    def test_steps_combine_as_independent_exceedances(self):
        one = breach_probability_arrays(
            np.array([80.0]), np.array([85.0]), threshold=80.0
        )
        two = breach_probability_arrays(
            np.array([80.0, 80.0]), np.array([85.0, 85.0]), threshold=80.0
        )
        assert two == pytest.approx(1.0 - (1.0 - one) ** 2)

    def test_zero_width_band_is_a_point_mass(self):
        mean = np.array([10.0, 90.0])
        assert breach_probability_arrays(mean, mean, threshold=80.0) == 1.0
        assert breach_probability_arrays(mean[:1], mean[:1], threshold=80.0) == 0.0

    def test_no_finite_step_is_nan(self):
        nans = np.full(3, np.nan)
        assert np.isnan(breach_probability_arrays(nans, nans, threshold=80.0))

    def test_validation(self):
        mean = np.array([10.0])
        with pytest.raises(DataError):
            breach_probability_arrays(mean, mean, threshold=np.inf)
        with pytest.raises(DataError):
            breach_probability_arrays(mean, mean, threshold=80.0, alpha=0.0)

    def test_predict_breach_reports_the_same_number(self):
        fc = _forecast([70.0, 75.0, 85.0])
        result = predict_breach(fc, threshold=80.0)
        direct = breach_probability_arrays(
            np.asarray(fc.mean.values),
            np.asarray(fc.upper.values),
            threshold=80.0,
            alpha=fc.alpha,
        )
        assert result.probability == pytest.approx(direct)
        assert 0.0 < result.probability < 1.0

    def test_probability_rides_the_advisory_grades(self):
        certain = predict_breach(_forecast([150.0, 150.0]), threshold=80.0)
        assert certain.probability > 0.99
        quiet = predict_breach(_forecast([10.0, 10.0]), threshold=80.0)
        assert quiet.probability == pytest.approx(0.0, abs=1e-9)
        empty = predict_breach(_forecast([np.nan, np.nan]), threshold=80.0)
        assert np.isnan(empty.probability)
