"""End-to-end tests for the streaming runtime loop.

The selection grid is stubbed with a cheap flat model (as in the
scheduler tests) so the loop's plumbing — delivery mangling, watermark
batching, staleness refits, alert escalation, telemetry — is what's
under test, at interactive speed.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.agent import AgentSample, MetricsRepository
from repro.exceptions import DataError
from repro.models.base import FittedModel
from repro.selection import AutoConfig
from repro.selection.auto import SelectionOutcome
from repro.service import EstatePlanner
from repro.stream import AlertKind, StreamConfig, StreamRuntime

STEP = 900.0
HOUR = 3600.0


@dataclass
class _FlatModel(FittedModel):
    def forecast(self, horizon, alpha=0.05, **kwargs):
        level = float(np.mean(self.train.values[-24:]))
        return self.make_forecast(np.full(horizon, level), np.ones(horizon), alpha)

    def label(self):
        return "flat"


@pytest.fixture
def stub_selection(monkeypatch):
    calls = []

    def fake_auto_select(series, config=None, executor=None, **kwargs):
        calls.append(series.name)
        model = _FlatModel(
            train=series, residuals=np.zeros(len(series)), sigma2=1.0, n_params=1
        )
        return SelectionOutcome(
            model=model,
            technique="hes",
            test_rmse=1.0,
            best_spec=None,
            seasonality=None,
            shock_calendar=None,
        )

    monkeypatch.setattr("repro.service.estate.auto_select", fake_auto_select)
    return calls


def polls(n_hours, value=40.0, start_hour=0, instance="db1", metric="cpu"):
    return [
        AgentSample(
            instance=instance,
            metric=metric,
            timestamp=(start_hour * 4 + i) * STEP,
            value=float(value),
        )
        for i in range(int(n_hours * 4))
    ]


def shocked_stream():
    """24 quiet hours at 40, then 24 shocked hours at 200."""
    return polls(24, value=40.0) + polls(24, value=200.0, start_hour=24)


def runtime(stream_config=None, planner=None):
    return StreamRuntime(
        planner=planner
        or EstatePlanner(config=AutoConfig(technique="hes", n_jobs=1)),
        config=stream_config
        or StreamConfig(
            thresholds={"cpu": 100.0},
            jitter_seconds=600.0,
            duplicate_rate=0.1,
            batch_polls=16,
            raise_after=2,
            recover_after=2,
            min_observations=24,
            seed=7,
        ),
    )


class TestDeliveryModel:
    def test_delivery_is_deterministic_per_seed(self):
        samples = polls(6)
        first = runtime().delivery_order(samples)
        second = runtime().delivery_order(samples)
        assert [s.timestamp for s in first] == [s.timestamp for s in second]

    def test_delivery_injects_duplicates_and_reorders(self):
        samples = polls(12)
        mangled = runtime().delivery_order(samples)
        assert len(mangled) > len(samples)  # 10% duplicate rate over 48 polls
        order = [s.timestamp for s in mangled]
        assert order != sorted(order)  # jitter reordered something

    def test_empty_delivery(self):
        assert runtime().delivery_order([]) == []

    def test_chunked_feeds_draw_fresh_delivery_noise(self):
        """Successive delivery_order calls on ONE runtime must not replay
        the identical jitter/duplicate pattern (regression: the RNG was
        re-seeded per call, correlating noise across chunks)."""
        samples = polls(6)
        rt = runtime()
        first = rt.delivery_order(samples)
        second = rt.delivery_order(samples)
        assert first != second
        # A fresh runtime with the same seed still replays the sequence.
        assert runtime().delivery_order(samples) == first

    def test_run_requires_samples(self):
        with pytest.raises(DataError):
            runtime().run([])


class TestEndToEnd:
    def test_shock_is_detected_refit_and_alerted(self, stub_selection):
        rt = runtime()
        rt.run(shocked_stream())
        rt.finish()

        # The quiet day produced the initial model, the shock forced
        # degradation refits on the same key.
        assert stub_selection[0] == "db1.cpu"
        assert rt.trace.counters["stream_initial_selections"] == 1
        assert rt.trace.counters["stream_refits_triggered"] >= 1
        reasons = {event.reason for event in rt.scheduler.refit_log}
        assert "initial" in reasons
        assert "rmse degraded beyond threshold" in reasons

        # Once the flat level crosses 100, consecutive breaching ticks
        # raise a debounced alert.
        assert rt.events, "the shock should have raised an alert"
        assert rt.events[0].kind is AlertKind.RAISED
        assert rt.alerts.active_alerts(), "breach persists to the end"

    def test_quiet_stream_never_alerts(self, stub_selection):
        rt = runtime()
        rt.run(polls(30, value=40.0))
        rt.finish()
        assert rt.events == []
        assert rt.alerts.active_alerts() == {}
        assert rt.trace.counters["stream_advisories_graded"] > 0

    def test_windows_match_batch_despite_mangling(self, stub_selection):
        """Jitter (600s) stays inside the lateness budget (1800s), so the
        mangled stream aggregates to the exact hourly values."""
        rt = runtime()
        rt.run(shocked_stream())
        rt.finish()
        series = rt.aggregator.series("db1", "cpu")
        assert len(series) == 48
        assert np.allclose(series.values[:24], 40.0)
        assert np.allclose(series.values[24:], 200.0)
        assert rt.bus.counters.get("samples_late_dropped", 0) == 0
        assert rt.bus.counters.get("samples_duplicate", 0) > 0

    def test_finish_flushes_trailing_windows(self, stub_selection):
        rt = runtime()
        rt.run(polls(6))
        closed_before = rt.aggregator.counters.get("windows_closed", 0)
        rt.finish()
        assert rt.aggregator.counters["windows_closed"] > closed_before
        assert rt.bus.buffered == 0


class TestBootstrap:
    def test_seed_from_repository_resumes_stream(self, stub_selection):
        with MetricsRepository() as repo:
            repo.ingest(polls(24, value=40.0))
            rt = runtime()
            rt.seed_from_repository(repo, "db1", "cpu")
        assert len(rt.scheduler.history("db1", "cpu")) == 24
        # Resume with live polls continuing the stored clock.
        rt.run(polls(8, value=40.0, start_hour=24))
        rt.finish()
        assert rt.trace.counters["stream_initial_selections"] == 1
        assert len(rt.scheduler.history("db1", "cpu")) == 32


class TestTelemetry:
    def test_telemetry_merges_every_layer(self, stub_selection):
        rt = runtime()
        rt.run(shocked_stream())
        rt.finish()
        counters = rt.telemetry().counters
        assert counters["samples_accepted"] == 192
        assert counters["windows_closed"] == 48
        assert counters["stream_ticks"] == rt.ticks
        assert counters["stream_selection_runs"] >= 1
        assert counters["alerts_raised"] >= 1

    def test_summary_lines_cover_the_four_layers(self, stub_selection):
        rt = runtime()
        rt.run(polls(26))
        rt.finish()
        lines = rt.summary_lines()
        assert len(lines) == 4
        prefixes = [line.split(":")[0] for line in lines]
        assert prefixes == ["ingest", "windows", "models", "alerts"]
