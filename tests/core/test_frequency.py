"""Tests for Frequency definitions and the Table 1 split rules."""

import pytest

from repro.core import SPLIT_RULES, Frequency, SplitRule


class TestFrequency:
    def test_seconds(self):
        assert Frequency.MINUTE_15.seconds == 900
        assert Frequency.HOURLY.seconds == 3600
        assert Frequency.DAILY.seconds == 86400
        assert Frequency.WEEKLY.seconds == 7 * 86400

    def test_samples_per_day(self):
        assert Frequency.MINUTE_15.samples_per_day == 96
        assert Frequency.HOURLY.samples_per_day == 24

    def test_default_periods(self):
        assert Frequency.HOURLY.default_period == 24
        assert Frequency.DAILY.default_period == 7
        assert Frequency.MONTHLY.default_period == 12

    def test_secondary_periods(self):
        assert Frequency.HOURLY.secondary_period == 168
        assert Frequency.DAILY.secondary_period is None

    def test_labels(self):
        assert Frequency.HOURLY.label() == "Hourly"


class TestTable1Rules:
    """The exact observation budgets of the paper's Table 1."""

    @pytest.mark.parametrize(
        "freq,obs,train,test,horizon",
        [
            (Frequency.HOURLY, 1008, 984, 24, 24),
            (Frequency.DAILY, 90, 83, 7, 7),
            (Frequency.WEEKLY, 92, 88, 4, 4),
        ],
    )
    def test_paper_values(self, freq, obs, train, test, horizon):
        rule = freq.split_rule
        assert rule.observations == obs
        assert rule.train_size == train
        assert rule.test_size == test
        assert rule.horizon == horizon

    def test_undefined_granularity_raises(self):
        with pytest.raises(KeyError):
            Frequency.MINUTE_15.split_rule

    def test_rule_consistency_validated(self):
        with pytest.raises(ValueError):
            SplitRule(observations=10, train_size=8, test_size=3, horizon=3)
        with pytest.raises(ValueError):
            SplitRule(observations=10, train_size=8, test_size=2, horizon=0)

    def test_registry_complete(self):
        assert set(SPLIT_RULES) == {Frequency.HOURLY, Frequency.DAILY, Frequency.WEEKLY}
