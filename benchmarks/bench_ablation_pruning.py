"""Ablation A2: correlogram-guided pruning vs the exhaustive grid.

Section 6.3: "In practice, we could reduce the number of models by tuning
… looking at where the data points intersect with the shaded areas …
thereby reducing the thousands of potential models considerably." The
paper's scaling worry is concrete — four nodes would mean "nearly 24000"
models.

This ablation quantifies the trade on the OLAP CPU metric: candidate
count, wall-clock, and the RMSE of the winner, pruned vs a stratified
sample of the exhaustive grid (the full 660 under ``REPRO_FULL_GRID=1``).
The expected shape: an order-of-magnitude fewer candidates at (near-)equal
winner quality.
"""

import time

import pytest

from repro.reporting import Table
from repro.selection import evaluate_grid, pruned_sarimax_grid, sarimax_grid

from .conftest import FULL_GRID, N_JOBS, metric_series


@pytest.fixture(scope="module")
def comparison(olap_run):
    series = metric_series(olap_run, "cdbm011", "cpu")
    train, test = series.train_test_split()

    full = sarimax_grid(24)
    if not FULL_GRID:
        # Stratified sample: every 7th candidate keeps all (d,q,P,D,Q)
        # shapes and spreads across lags while staying tractable.
        full = full[::7]
    pruned = pruned_sarimax_grid(train, 24)

    t0 = time.perf_counter()
    full_results = evaluate_grid(full, train, test, n_jobs=N_JOBS)
    full_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    pruned_results = evaluate_grid(pruned, train, test, n_jobs=N_JOBS)
    pruned_time = time.perf_counter() - t0

    return {
        "full": (full, full_results, full_time),
        "pruned": (pruned, pruned_results, pruned_time),
    }


def test_ablation_pruning(benchmark, olap_run, comparison):
    series = metric_series(olap_run, "cdbm011", "cpu")
    train, __ = series.train_test_split()
    benchmark(lambda: pruned_sarimax_grid(train, 24))

    full_specs, full_results, full_time = comparison["full"]
    pruned_specs, pruned_results, pruned_time = comparison["pruned"]
    best_full = next(r for r in full_results if not r.failed)
    best_pruned = next(r for r in pruned_results if not r.failed)

    table = Table(
        ["Strategy", "Candidates", "Eval time (s)", "Best model", "Best RMSE"],
        title="Ablation A2: exhaustive grid vs correlogram pruning (OLAP CPU)",
    )
    label = "exhaustive" if FULL_GRID else "exhaustive (1-in-7 sample)"
    table.add_row(
        [label, str(len(full_specs)), full_time, best_full.spec.describe(), best_full.rmse]
    )
    table.add_row(
        [
            "correlogram-pruned",
            str(len(pruned_specs)),
            pruned_time,
            best_pruned.spec.describe(),
            best_pruned.rmse,
        ]
    )
    print()
    table.print()

    # Pruning shrinks the candidate set substantially…
    assert len(pruned_specs) * 2 <= len(full_specs)
    # …without giving up meaningful winner quality.
    assert best_pruned.rmse <= best_full.rmse * 1.25, (
        f"pruned winner {best_pruned.rmse:.3f} vs full {best_full.rmse:.3f}"
    )
