"""Tests for cohort task dispatch on the engine executors."""

import pytest

from repro.engine import PoolExecutor, SerialExecutor
from repro.engine.executor import CohortSpec
from repro.exceptions import DataError


# Module-level so the process pool can pickle them.
def _grade(spec):
    return {"family": spec.family, "rows": len(spec.keys)}


def _boom_on_tbats(spec):
    if spec.family == "tbats":
        raise ValueError("sick cohort")
    return len(spec.keys)


def _fetch_payload(spec):
    from repro.engine.executor import resolve_payload

    return (spec.family, resolve_payload(spec.payload))


class TestCohortSpec:
    def test_requires_keys(self):
        with pytest.raises(DataError):
            CohortSpec(family="hes", keys=())

    def test_frozen_identity(self):
        spec = CohortSpec(family="hes", keys=("a", "b"))
        assert spec.family == "hes"
        assert spec.keys == ("a", "b")
        assert spec.payload is None


class TestRunCohorts:
    def test_serial_reports_in_order(self):
        specs = [
            CohortSpec(family="hes", keys=("a", "b", "c")),
            CohortSpec(family="tbats", keys=("d",)),
        ]
        ex = SerialExecutor()
        reports = ex.run_cohorts(_grade, specs)
        assert [r.value for r in reports] == [
            {"family": "hes", "rows": 3},
            {"family": "tbats", "rows": 1},
        ]
        assert ex.cohort_counters == {
            "cohorts_dispatched": 2,
            "cohort_rows": 4,
            "cohort_rows_max": 3,
        }

    def test_rejects_non_cohort_tasks(self):
        with pytest.raises(DataError):
            SerialExecutor().run_cohorts(_grade, [("hes", ("a",))])

    def test_failed_cohort_counted_not_raised(self):
        specs = [
            CohortSpec(family="hes", keys=("a", "b")),
            CohortSpec(family="tbats", keys=("c", "d", "e")),
        ]
        ex = SerialExecutor()
        reports = ex.run_cohorts(_boom_on_tbats, specs)
        assert reports[0].ok and not reports[1].ok
        assert "sick cohort" in reports[1].error
        assert ex.cohort_counters["cohorts_dispatched"] == 1
        assert ex.cohort_counters["cohorts_failed"] == 1
        # Failed rows are not charged to the rows counters.
        assert ex.cohort_counters["cohort_rows"] == 2

    def test_counters_accumulate_across_calls(self):
        ex = SerialExecutor()
        ex.run_cohorts(_grade, [CohortSpec(family="hes", keys=("a",))])
        ex.run_cohorts(_grade, [CohortSpec(family="hes", keys=("b", "c"))])
        assert ex.cohort_counters["cohorts_dispatched"] == 2
        assert ex.cohort_counters["cohort_rows"] == 3
        assert ex.cohort_counters["cohort_rows_max"] == 2

    def test_pool_executor(self):
        ex = PoolExecutor(max_workers=2)
        try:
            specs = [
                CohortSpec(family="hes", keys=tuple("abcd")),
                CohortSpec(family="arima", keys=("e",)),
            ]
            reports = ex.run_cohorts(_grade, specs)
            assert [r.value["rows"] for r in reports] == [4, 1]
            assert ex.cohort_counters["cohort_rows_max"] == 4
        finally:
            ex.close()

    def test_cohort_payload_rides_broadcast_plane(self):
        ex = PoolExecutor(max_workers=2)
        try:
            ref = ex.broadcast({"theta": [1.0, 2.0]})
            spec = CohortSpec(family="hes", keys=("a", "b"), payload=ref)
            reports = ex.run_cohorts(_fetch_payload, [spec])
            assert reports[0].ok
            assert reports[0].value == ("hes", {"theta": [1.0, 2.0]})
        finally:
            ex.close()
