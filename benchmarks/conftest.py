"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper (see
DESIGN.md's experiment index). Benches print their paper-style tables to
stdout — run with ``-s`` to see them — and save figure data as CSV under
``benchmarks/output/``.

Scaling: the paper's full protocol evaluates 660+ SARIMAX candidates per
instance. By default the benches use the correlogram-pruned grids
(Section 6.3's own "tuning" shortcut) so a full run finishes in minutes;
set ``REPRO_FULL_GRID=1`` to evaluate the complete 660-model grids exactly
as in the paper.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import TimeSeries, interpolate_missing
from repro.selection import (
    CandidateSpec,
    arima_grid,
    augmentation_specs,
    evaluate_grid,
    pruned_sarimax_grid,
    sarimax_grid,
    suggest_orders,
)
from repro.shocks import build_shock_calendar
from repro.workloads import generate_olap_run, generate_oltp_run

OUTPUT_DIR = Path(__file__).parent / "output"

FULL_GRID = os.environ.get("REPRO_FULL_GRID", "") not in ("", "0")

#: Worker processes for grid evaluation (0 = one per CPU).
N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))


def output_path(name: str) -> str:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return str(OUTPUT_DIR / name)


@pytest.fixture(scope="session")
def olap_run():
    """Experiment One traces, hourly-aggregated (cached per session)."""
    return generate_olap_run()


@pytest.fixture(scope="session")
def oltp_run():
    """Experiment Two traces, hourly-aggregated (cached per session)."""
    return generate_oltp_run()


def metric_series(run, instance: str, metric: str) -> TimeSeries:
    """One clean metric series out of a cluster run."""
    return interpolate_missing(getattr(run.instances[instance], metric))


def best_of_family(family: str, train, test, period: int = 24):
    """Find the RMSE-best model of one of the paper's three families.

    Families: ``"ARIMA"``, ``"SARIMAX"``, ``"SARIMAX FFT Exogenous"``.
    Uses the full Section 6.3 grids under ``REPRO_FULL_GRID=1``, else the
    correlogram-pruned equivalents.
    """
    suggestion = suggest_orders(train, period)
    if family == "ARIMA":
        if FULL_GRID:
            specs = arima_grid()
        else:
            specs = [
                s
                for s in arima_grid()
                if s.order[0] in suggestion.p_candidates
            ]
        return evaluate_grid(specs, train, test, n_jobs=N_JOBS)

    calendar = build_shock_calendar(train, period=period)
    shock_matrix = calendar.train_matrix() if calendar.n_columns else None
    shock_future = (
        calendar.future_matrix(len(test)) if calendar.n_columns else None
    )
    if FULL_GRID:
        base_specs = sarimax_grid(period)
    else:
        base_specs = pruned_sarimax_grid(train, period)
    results = evaluate_grid(
        base_specs,
        train,
        test,
        shock_matrix=shock_matrix,
        shock_future=shock_future,
        n_jobs=N_JOBS,
    )
    if family == "SARIMAX":
        return results

    best = next(r for r in results if not r.failed)
    aug = augmentation_specs(best.spec, calendar.n_columns, 168)
    aug = [s for s in aug if s.exog_columns <= calendar.n_columns]
    if not aug:  # no shocks found: Fourier-only augmentations
        aug = [
            CandidateSpec(
                order=best.spec.order,
                seasonal=best.spec.seasonal,
                fourier_periods=(168.0,),
                fourier_orders=(k,),
            )
            for k in (1, 2)
        ]
    aug_results = evaluate_grid(
        aug,
        train,
        test,
        shock_matrix=shock_matrix,
        shock_future=shock_future,
        n_jobs=1,
    )
    viable = [r for r in aug_results if not r.failed]
    # The augmentations are applied *on top of* the best SARIMAX (paper:
    # "added to the model with the best RMSE to see if it can be further
    # improved"), so the family's answer is the better of base and
    # augmented.
    return sorted(viable + [best], key=lambda r: r.rmse)
