"""Cheap per-key drift detection on one-step forecast errors.

The streaming scheduler rolls cached model states forward on every closed
window instead of refitting, so the old "refit when RMSE doubles" check
(which needed a fresh holdout evaluation) is replaced by a sequential
test on the innovations the roll produces for free: a two-sided CUSUM on
standardized one-step errors. While the model tracks the series the
standardized innovations are ~N(0, 1) and both CUSUM statistics hover
near zero; a level shift, trend break, or variance blow-up pushes one of
them past the decision interval within a handful of windows, and only
then does the scheduler pay for a full grid re-selection.

Parameters follow the classic tuning for detecting a one-sigma shift:
reference value ``k = 0.5`` (half the shift to detect) and decision
interval ``h = 8.0`` (long in-control average run length, ~16-window
detection delay for a sustained 1-sigma drift; a hard regime change with
multi-sigma errors trips in one or two windows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CusumDetector"]


@dataclass
class CusumDetector:
    """Two-sided CUSUM over standardized innovations.

    ``update`` consumes one standardized one-step error per closed
    window and returns ``True`` when either the upper or lower cumulative
    sum exceeds the decision interval — the caller then refits and
    installs a fresh detector. A non-finite innovation (the model state
    produced NaN/inf) trips immediately: that model is not gradeable and
    must be replaced regardless of drift history.
    """

    k: float = 0.5
    h: float = 8.0
    g_pos: float = field(default=0.0, init=False)
    g_neg: float = field(default=0.0, init=False)

    def update(self, e: float) -> bool:
        if not math.isfinite(e):
            self.g_pos = self.g_neg = math.inf
            return True
        self.g_pos = max(0.0, self.g_pos + e - self.k)
        self.g_neg = max(0.0, self.g_neg - e - self.k)
        return self.g_pos > self.h or self.g_neg > self.h

    def update_many(self, errors) -> bool:
        """Feed a batch of innovations; ``True`` if any step trips."""
        tripped = False
        for e in errors:
            tripped = self.update(float(e)) or tripped
        return tripped

    def reset(self) -> None:
        self.g_pos = 0.0
        self.g_neg = 0.0
