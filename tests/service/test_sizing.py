"""Tests for capacity/migration sizing."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.models.base import Forecast
from repro.service import overprovision_ratio, recommend_capacity, recommend_shape


def _forecast(upper_values):
    upper = np.asarray(upper_values, dtype=float)
    def mk(v):
        return TimeSeries(v, Frequency.HOURLY)

    return Forecast(
        mean=mk(upper - 5.0),
        lower=mk(upper - 10.0),
        upper=mk(upper),
        alpha=0.05,
        model_label="test",
    )


class TestRecommendCapacity:
    def test_percentile_of_upper_band(self):
        fc = _forecast(np.linspace(10, 110, 101))
        rec = recommend_capacity(fc, percentile=95.0, headroom=0.0, unit=1.0)
        assert rec.required == pytest.approx(105.0)

    def test_headroom_applied(self):
        fc = _forecast(np.full(10, 100.0))
        rec = recommend_capacity(fc, headroom=0.10, unit=1.0)
        assert rec.recommended == 110.0

    def test_rounds_up_to_unit(self):
        fc = _forecast(np.full(10, 101.0))
        rec = recommend_capacity(fc, headroom=0.0, unit=16.0)
        assert rec.recommended == 112.0  # ceil(101/16)*16

    def test_peak_forecast_reported(self):
        fc = _forecast(np.array([50.0, 80.0, 60.0]))
        rec = recommend_capacity(fc)
        assert rec.peak_forecast == 75.0  # mean band = upper - 5

    def test_validation(self):
        fc = _forecast(np.full(5, 10.0))
        with pytest.raises(DataError):
            recommend_capacity(fc, percentile=0.0)
        with pytest.raises(DataError):
            recommend_capacity(fc, headroom=-0.1)
        with pytest.raises(DataError):
            recommend_capacity(fc, unit=0.0)

    def test_describe(self):
        text = recommend_capacity(_forecast(np.full(5, 10.0))).describe()
        assert "recommend" in text


class TestOverprovisionRatio:
    def test_ratio(self):
        assert overprovision_ratio(200.0, 100.0) == 2.0

    def test_validation(self):
        with pytest.raises(DataError):
            overprovision_ratio(0.0, 1.0)
        with pytest.raises(DataError):
            overprovision_ratio(1.0, -1.0)


class TestRecommendShape:
    def _forecasts(self):
        return {
            "cpu": _forecast(np.full(10, 7.0)),
            "memory": _forecast(np.full(10, 100.0)),
            "storage": _forecast(np.full(10, 900.0)),
        }

    def test_one_recommendation_per_resource(self):
        rec = recommend_shape(self._forecasts(), headroom=0.0)
        assert sorted(rec.resources) == ["cpu", "memory", "storage"]
        assert rec.shape == {"cpu": 7.0, "memory": 100.0, "storage": 900.0}

    def test_policy_applied_uniformly(self):
        forecasts = self._forecasts()
        rec = recommend_shape(forecasts, percentile=90.0, headroom=0.2)
        for name, forecast in forecasts.items():
            alone = recommend_capacity(forecast, percentile=90.0, headroom=0.2)
            assert rec.resources[name].recommended == alone.recommended

    def test_units_round_per_resource(self):
        rec = recommend_shape(
            self._forecasts(),
            headroom=0.0,
            units={"memory": 16.0, "storage": 256.0},
        )
        assert rec.shape["cpu"] == 7.0  # default unit of 1
        assert rec.shape["memory"] == 112.0  # ceil(100/16)*16
        assert rec.shape["storage"] == 1024.0  # ceil(900/256)*256

    def test_validation(self):
        with pytest.raises(DataError):
            recommend_shape({})
        with pytest.raises(DataError):
            recommend_shape(self._forecasts(), units={"gpus": 1.0})

    def test_describe_names_every_resource(self):
        text = recommend_shape(self._forecasts()).describe()
        for name in ("cpu", "memory", "storage"):
            assert name in text
