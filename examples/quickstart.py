#!/usr/bin/env python
"""Quickstart: forecast a database metric in five lines.

Generates an hourly CPU trace with daily seasonality and a nightly backup
shock, lets the self-selecting pipeline (the paper's Figure 4 algorithm)
pick a model, and prints the 24-hour-ahead prediction with error bars.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AutoConfig, Frequency, TimeSeries, auto_forecast

# --- 1. A metric series (here: synthetic; in production: agent polls) ----
rng = np.random.default_rng(42)
hours = np.arange(45 * 24)
cpu = (
    35.0
    + 0.08 * hours / 24  # slow growth
    + 12.0 * np.sin(2 * np.pi * hours / 24)  # daily cycle
    + 10.0 * ((hours % 24) == 0)  # nightly backup shock
    + rng.normal(0, 1.5, hours.size)  # noise
)
series = TimeSeries(cpu, Frequency.HOURLY, name="cpu")

# --- 2. Self-select a model and forecast 24 hours ahead -------------------
forecast, outcome = auto_forecast(series, config=AutoConfig(n_jobs=0))

# --- 3. Inspect ------------------------------------------------------------
print(f"selected model : {outcome.model.label()}")
print(f"technique      : {outcome.technique}")
print(f"test RMSE      : {outcome.test_rmse:.3f}")
print(f"candidates     : {outcome.n_evaluated}")
if outcome.shock_calendar and outcome.shock_calendar.n_columns:
    print("shocks learned :", "; ".join(outcome.shock_calendar.describe()))
print()
print("hour  prediction   95% interval")
for h in range(forecast.horizon):
    mean = forecast.mean.values[h]
    lo = forecast.lower.values[h]
    hi = forecast.upper.values[h]
    print(f"{h + 1:4d}  {mean:10.2f}   [{lo:6.2f}, {hi:6.2f}]")
