"""Forecast-driven provisioning planner.

The paper's end goal — "what resource capacity do I need in the next 6
months to a year?" — answered as a subsystem: enumerate candidate
provisioning blueprints (:mod:`~repro.planner.blueprint`), score them
against the forecast distributions the models already produce
(:mod:`~repro.planner.scoring`), search the estate-level joint space
with a deterministic beam (:mod:`~repro.planner.beam`), and decide
*when* to re-plan from streaming trigger evidence
(:mod:`~repro.planner.triggers`). :mod:`~repro.planner.escalation`
closes the loop inside the stream: sustained or escalated breaches
become :class:`PlanProposal` events on the alert channel.
"""

from .beam import EstatePlan, PlanChoice, plan_estate
from .blueprint import (
    DEFAULT_CATALOG,
    Blueprint,
    BlueprintKind,
    CatalogTier,
    ResourceShape,
    enumerate_blueprints,
    enumerate_consolidations,
    metric_dimension,
    tier_named,
)
from .escalation import RESOLVED_PROBABILITY, PlanEscalator, PlanProposal
from .reconcile import ReconciledEstate, ReconciledLevel, combine_bands, reconcile
from .scoring import (
    BlueprintScore,
    ForecastBand,
    InstanceDemand,
    ScoreWeights,
    demands_from_entries,
    rank_blueprints,
    score_blueprint,
)
from .triggers import TriggerPolicy, TriggerReason, TriggerTracker

__all__ = [
    "ResourceShape",
    "CatalogTier",
    "BlueprintKind",
    "Blueprint",
    "DEFAULT_CATALOG",
    "metric_dimension",
    "tier_named",
    "enumerate_blueprints",
    "enumerate_consolidations",
    "ForecastBand",
    "InstanceDemand",
    "ScoreWeights",
    "BlueprintScore",
    "score_blueprint",
    "rank_blueprints",
    "demands_from_entries",
    "ReconciledLevel",
    "ReconciledEstate",
    "combine_bands",
    "reconcile",
    "PlanChoice",
    "EstatePlan",
    "plan_estate",
    "TriggerReason",
    "TriggerPolicy",
    "TriggerTracker",
    "PlanProposal",
    "PlanEscalator",
    "RESOLVED_PROBABILITY",
]
