"""Tests for the executor abstraction: serial, pooled, shared."""

import os
import time

import pytest

from repro.engine import (
    PoolExecutor,
    SerialExecutor,
    default_executor,
    shutdown_default_executors,
)
from repro.exceptions import DataError


# Task functions must be module-level so the process pool can pickle them.
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad input {x}")


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _hard_exit(x):
    os._exit(13)  # simulate a worker dying without raising


class TestSerialExecutor:
    def test_values_in_order(self):
        reports = SerialExecutor().run(_square, [1, 2, 3, 4])
        assert [r.value for r in reports] == [1, 4, 9, 16]
        assert [r.index for r in reports] == [0, 1, 2, 3]
        assert all(r.ok for r in reports)
        assert all(r.worker == "serial" for r in reports)

    def test_failure_captured_not_raised(self):
        reports = SerialExecutor().run(_boom, [7])
        assert not reports[0].ok
        assert "ValueError" in reports[0].error
        assert "bad input 7" in reports[0].error
        assert reports[0].value is None

    def test_failure_isolated_to_its_task(self):
        def fn(x):
            if x == 2:
                raise RuntimeError("nope")
            return x

        reports = SerialExecutor().run(fn, [1, 2, 3])
        assert [r.ok for r in reports] == [True, False, True]
        assert [r.value for r in reports] == [1, None, 3]

    def test_durations_recorded(self):
        reports = SerialExecutor().run(_sleepy, [0.01])
        assert reports[0].seconds >= 0.005

    def test_map_unwraps_and_raises(self):
        assert SerialExecutor().map(_square, [2, 3]) == [4, 9]
        with pytest.raises(DataError):
            SerialExecutor().map(_boom, [1])

    def test_empty_tasks(self):
        assert SerialExecutor().run(_square, []) == []


class TestPoolExecutor:
    def test_matches_serial(self):
        serial = SerialExecutor().run(_square, list(range(10)))
        with PoolExecutor(max_workers=2) as pool:
            pooled = pool.run(_square, list(range(10)))
        assert [r.value for r in pooled] == [r.value for r in serial]
        assert [r.index for r in pooled] == [r.index for r in serial]

    def test_pool_reused_across_calls(self):
        pool = PoolExecutor(max_workers=2)
        try:
            assert pool.pools_created == 0  # lazy: nothing until first run
            pool.run(_square, [1, 2, 3])
            pool.run(_square, [4, 5, 6])
            pool.run(_square, [7, 8])
            assert pool.pools_created == 1
            assert pool.tasks_dispatched == 8
        finally:
            pool.close()

    def test_workers_are_processes(self):
        with PoolExecutor(max_workers=1) as pool:
            reports = pool.run(_square, [1])
        assert reports[0].worker not in ("", "serial")
        assert reports[0].worker != str(os.getpid())

    def test_failure_captured_in_worker(self):
        with PoolExecutor(max_workers=1) as pool:
            reports = pool.run(_boom, [3])
        assert not reports[0].ok
        assert "bad input 3" in reports[0].error

    def test_timeout_captured(self):
        pool = PoolExecutor(max_workers=1, chunksize=1, timeout=0.2)
        try:
            reports = pool.run(_sleepy, [1.0])
            assert reports[0].timed_out
            assert not reports[0].ok
            assert "timed out" in reports[0].error
        finally:
            pool.close(force=True)  # abandon the still-sleeping worker

    def test_fast_task_beats_timeout(self):
        pool = PoolExecutor(max_workers=1, chunksize=1, timeout=5.0)
        try:
            reports = pool.run(_sleepy, [0.01])
            assert reports[0].ok and reports[0].value == 0.01
        finally:
            pool.close()

    def test_dead_worker_reported_and_pool_replaced(self):
        pool = PoolExecutor(max_workers=1, chunksize=1)
        try:
            reports = pool.run(_hard_exit, [1])
            assert not reports[0].ok
            # The broken pool is replaced transparently on the next call.
            healthy = pool.run(_square, [5])
            assert healthy[0].value == 25
            assert pool.pools_created == 2
        finally:
            pool.close()

    def test_chunking_configurable(self):
        with PoolExecutor(max_workers=2, chunksize=3) as pool:
            reports = pool.run(_square, list(range(7)))
        assert [r.value for r in reports] == [x * x for x in range(7)]

    def test_validation(self):
        with pytest.raises(DataError):
            PoolExecutor(max_workers=-1)
        with pytest.raises(DataError):
            PoolExecutor(chunksize=0)
        with pytest.raises(DataError):
            PoolExecutor(timeout=0.0)


class TestDefaultExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(default_executor(1), SerialExecutor)

    def test_pool_shared_per_worker_count(self):
        try:
            a = default_executor(2)
            b = default_executor(2)
            c = default_executor(3)
            assert a is b
            assert a is not c
            assert isinstance(a, PoolExecutor)
            assert a.max_workers == 2
        finally:
            shutdown_default_executors()

    def test_zero_means_cpu_count(self):
        try:
            executor = default_executor(0)
            if (os.cpu_count() or 1) == 1:
                assert isinstance(executor, SerialExecutor)
            else:
                assert executor.max_workers == os.cpu_count()
        finally:
            shutdown_default_executors()

    def test_negative_rejected(self):
        with pytest.raises(DataError):
            default_executor(-2)
