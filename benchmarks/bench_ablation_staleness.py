"""Ablation A4: the one-week model-staleness rule.

The pipeline stores the winning model "for a period of one week or until
the model's RMSE drops to a point where it is rendered useless". Is a week
the right horizon? This ablation fits one model on the first part of the
growing OLTP workload and then rolls forward day by day for a week,
scoring each day's 24-hour forecast (a) with the frozen stored model and
(b) with a model refitted every day, plus the degradation the
:class:`repro.selection.ModelMonitor` would report.

Expected shape: on a workload with trend the frozen model's daily RMSE
degrades as its horizon stretches, the daily-refit model stays flat, and
the monitor flags the frozen model before/at the week boundary — the
paper's rule is conservative but sound.
"""

import numpy as np
import pytest

from repro.core import rmse
from repro.models import Sarimax
from repro.reporting import Table
from repro.selection import ModelMonitor

from .conftest import metric_series

DAYS = 7
ORDER = (2, 1, 1)
SEASONAL = (1, 1, 1, 24)


@pytest.fixture(scope="module")
def staleness_curves(oltp_run):
    series = metric_series(oltp_run, "cdbm011", "cpu")
    # Reserve a week after the training window.
    n_train = len(series) - DAYS * 24
    base_train = series[:n_train]
    frozen = Sarimax(ORDER, seasonal=SEASONAL).fit(base_train)
    baseline_rmse = rmse(
        series[n_train : n_train + 24], frozen.forecast(24).mean
    )
    monitor = ModelMonitor(model=frozen, baseline_rmse=baseline_rmse)

    rows = []
    frozen_horizon_fc = frozen.forecast(DAYS * 24).mean.values
    for day in range(DAYS):
        start = n_train + day * 24
        actual = series[start : start + 24]
        frozen_rmse = rmse(actual, frozen_horizon_fc[day * 24 : (day + 1) * 24])
        refit = Sarimax(ORDER, seasonal=SEASONAL).fit(series[:start])
        refit_rmse = rmse(actual, refit.forecast(24).mean)
        monitor.observe(actual)
        verdict = monitor.check()
        rows.append((day + 1, frozen_rmse, refit_rmse, verdict))
    return baseline_rmse, rows


def test_ablation_staleness(benchmark, oltp_run, staleness_curves):
    series = metric_series(oltp_run, "cdbm011", "cpu")
    fitted = Sarimax(ORDER, seasonal=SEASONAL).fit(series[: len(series) - DAYS * 24])
    benchmark(lambda: fitted.forecast(24))

    baseline_rmse, rows = staleness_curves
    table = Table(
        ["Day", "Frozen model RMSE", "Daily-refit RMSE", "Monitor verdict"],
        title=f"Ablation A4: forecast decay over a week (baseline {baseline_rmse:.2f})",
    )
    for day, frozen_rmse, refit_rmse, verdict in rows:
        table.add_row([str(day), frozen_rmse, refit_rmse, verdict.describe()])
    print()
    table.print()

    frozen_curve = np.array([r[1] for r in rows])
    refit_curve = np.array([r[2] for r in rows])

    # The frozen model's late-week error exceeds its early-week error...
    assert frozen_curve[-3:].mean() > frozen_curve[:2].mean(), frozen_curve
    # ...while daily refits hold the line better on average.
    assert refit_curve.mean() <= frozen_curve.mean() * 1.05
    # Weekly cadence is enough: the frozen model never becomes useless
    # within the week (stays within 5x of the refit model).
    assert frozen_curve.max() <= 5.0 * max(refit_curve.mean(), 1e-9)
