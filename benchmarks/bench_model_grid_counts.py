"""Section 6.3: the model-count accounting and single-fit cost.

The paper enumerates exactly how many models each technique evaluates:

* ARIMA (p,d,q) — 180 per instance, 360 across two instances;
* SARIMAX (p,d,q)(P,D,Q,F) — 660 per instance (22 per lag × 30 lags),
  1320 across two instances;
* SARIMAX + Exogenous (4) + Fourier (2) — 666 per instance, 1332 total;
* "over 6000 models across the two experiments".

This bench re-derives every count from the grid constructors, benchmarks
the cost of one CSS fit (the unit the grid multiplies), and reports the
correlogram-pruned sizes that make four-node estates ("nearly 24000
models … unmanageable") tractable.
"""

from repro.models import Arima
from repro.reporting import Table
from repro.selection import (
    arima_grid,
    augmentation_specs,
    pruned_sarimax_grid,
    sarimax_grid,
)

from .conftest import metric_series


def test_model_grid_counts(benchmark, olap_run):
    series = metric_series(olap_run, "cdbm011", "cpu")
    train, __ = series.train_test_split()

    # The benchmark unit: one CSS SARIMA fit on the 984-point train window.
    benchmark(lambda: Arima((2, 1, 1), seasonal=(1, 1, 1, 24), maxiter=30).fit(train))

    arima = arima_grid()
    sarimax = sarimax_grid(24)
    augmented = augmentation_specs(sarimax[0], n_shock_columns=4, secondary_period=168)
    pruned = pruned_sarimax_grid(train, 24)

    table = Table(
        ["Family", "Per instance", "Two instances", "Paper"],
        title="Section 6.3: model grid accounting",
    )
    table.add_row(["ARIMA p,d,q", str(len(arima)), str(2 * len(arima)), "180 / 360"])
    table.add_row(
        ["SARIMAX p,d,q,P,D,Q,F", str(len(sarimax)), str(2 * len(sarimax)), "660 / 1320"]
    )
    table.add_row(
        [
            "SARIMAX + Exog(4) + Fourier(2)",
            str(len(sarimax) + len(augmented)),
            str(2 * (len(sarimax) + len(augmented))),
            "666 / 1332",
        ]
    )
    total = 2 * 2 * (len(arima) + 2 * len(sarimax) + len(augmented))
    table.add_row(["All families, two experiments", "-", str(total), "> 6000"])
    table.add_separator()
    table.add_row(
        ["Correlogram-pruned SARIMAX", str(len(pruned)), str(2 * len(pruned)), "'reduced considerably'"]
    )
    print()
    table.print()

    # --- exact paper counts --------------------------------------------------
    assert len(arima) == 180
    assert len(sarimax) == 660
    assert len(sarimax) + len(augmented) == 666
    assert total > 6000
    # Pruning delivers at least a 5x reduction on this workload.
    assert len(pruned) * 5 <= len(sarimax)
    # Per-lag structure: exactly 22 SARIMAX candidates for each of 30 lags.
    per_lag = {}
    for spec in sarimax:
        per_lag[spec.order[0]] = per_lag.get(spec.order[0], 0) + 1
    assert set(per_lag.values()) == {22} and len(per_lag) == 30
