"""Re-plan trigger rules: when a standing plan stops being trustworthy.

ARIMA_PLUS's argument (PAPERS.md) is that plan triggers belong where the
forecasts are served — continuously, in the stream — not in an offline
report. Four rules decide when a key's provisioning should be
re-planned:

* **escalated alert** — the :class:`~repro.stream.alerts.AlertManager`
  escalated the key's debounced alert (rising certainty of breach);
* **sustained breach** — the advisory stream has been breaching for
  ``sustained_breach_ticks`` consecutive ticks (a slow simmer that never
  escalates still deserves a plan);
* **drift** — the scheduler's CUSUM drift detector
  (:mod:`repro.stream.drift`) tripped a refit for the key: the world the
  current plan was scored against has moved;
* **plan age / utilisation error** — the plan is older than
  ``max_plan_age_seconds``, or the observed peak has wandered more than
  ``utilisation_error`` away from the peak the plan was sized for.

A per-key cooldown debounces proposal spam. The tracker's state is
picklable and mergeable so the sharded control plane can fan per-shard
trigger state into one estate-wide view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..selection.staleness import WEEK_SECONDS
from ..service.thresholds import BreachPrediction, BreachSeverity

__all__ = ["TriggerReason", "TriggerPolicy", "TriggerTracker"]


class TriggerReason(enum.Enum):
    """Why a key's provisioning is being re-planned."""

    ESCALATED_ALERT = "escalated-alert"
    SUSTAINED_BREACH = "sustained-breach"
    DRIFT = "drift"
    PLAN_AGE = "plan-age"
    UTILISATION_ERROR = "utilisation-error"


@dataclass(frozen=True)
class TriggerPolicy:
    """Thresholds for the four trigger rules plus the proposal cooldown."""

    sustained_breach_ticks: int = 6
    drift_refits: int = 1
    max_plan_age_seconds: float = WEEK_SECONDS
    utilisation_error: float = 0.25
    cooldown_seconds: float = 6 * 3600.0


@dataclass
class _KeyTriggerState:
    """Mutable trigger bookkeeping for one workload key (picklable)."""

    breach_streak: int = 0
    drift_count: int = 0
    escalated: bool = False
    last_planned_at: float | None = None
    planned_peak: float | None = None
    observed_peak: float | None = None


class TriggerTracker:
    """Accumulates trigger evidence per key and decides when to re-plan."""

    def __init__(self, policy: TriggerPolicy | None = None) -> None:
        self.policy = policy or TriggerPolicy()
        self._states: dict = {}

    # ------------------------------------------------------------------
    # Evidence intake
    # ------------------------------------------------------------------
    def _state(self, key) -> _KeyTriggerState:
        return self._states.setdefault(key, _KeyTriggerState())

    def observe_advisory(self, key, advisory: BreachPrediction) -> None:
        state = self._state(key)
        if advisory.severity is BreachSeverity.NONE:
            state.breach_streak = 0
        else:
            state.breach_streak += 1

    def observe_escalation(self, key) -> None:
        self._state(key).escalated = True

    def observe_drift(self, key) -> None:
        self._state(key).drift_count += 1

    def observe_utilisation(self, key, observed: float) -> None:
        state = self._state(key)
        if state.observed_peak is None or observed > state.observed_peak:
            state.observed_peak = float(observed)

    def note_planned(self, key, at: float, planned_peak: float | None = None) -> None:
        """A plan was just proposed for this key: reset its evidence."""
        state = self._state(key)
        state.escalated = False
        state.drift_count = 0
        state.breach_streak = 0
        state.observed_peak = None
        state.last_planned_at = float(at)
        if planned_peak is not None:
            state.planned_peak = float(planned_peak)

    def evict(self, key) -> None:
        """Drop a key's trigger state (shard rebalance migration)."""
        self._states.pop(key, None)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def firing(self, key, at: float) -> tuple[TriggerReason, ...]:
        """The reasons this key should be re-planned right now, if any.

        Empty during the post-proposal cooldown; otherwise the fixed-order
        tuple of every rule currently tripped.
        """
        state = self._states.get(key)
        if state is None:
            return ()
        if (
            state.last_planned_at is not None
            and at - state.last_planned_at < self.policy.cooldown_seconds
        ):
            return ()
        reasons = []
        if state.escalated:
            reasons.append(TriggerReason.ESCALATED_ALERT)
        if state.breach_streak >= self.policy.sustained_breach_ticks:
            reasons.append(TriggerReason.SUSTAINED_BREACH)
        if state.drift_count >= self.policy.drift_refits:
            reasons.append(TriggerReason.DRIFT)
        if (
            state.last_planned_at is not None
            and at - state.last_planned_at > self.policy.max_plan_age_seconds
        ):
            reasons.append(TriggerReason.PLAN_AGE)
        if (
            state.planned_peak is not None
            and state.planned_peak > 0
            and state.observed_peak is not None
            and abs(state.observed_peak - state.planned_peak) / state.planned_peak
            > self.policy.utilisation_error
        ):
            reasons.append(TriggerReason.UTILISATION_ERROR)
        return tuple(reasons)

    def fired(self, at: float) -> dict:
        """Every key currently firing, in sorted key order."""
        out = {}
        for key in sorted(self._states):
            reasons = self.firing(key, at)
            if reasons:
                out[key] = reasons
        return out

    # ------------------------------------------------------------------
    # Shard fan-in
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Picklable snapshot of every key's trigger evidence."""
        return {
            key: {
                "breach_streak": s.breach_streak,
                "drift_count": s.drift_count,
                "escalated": s.escalated,
                "last_planned_at": s.last_planned_at,
                "planned_peak": s.planned_peak,
                "observed_peak": s.observed_peak,
            }
            for key, s in self._states.items()
        }

    def adopt_state(self, exported: Mapping) -> None:
        """Install exported key states (union; shards own disjoint keys)."""
        for key, payload in exported.items():
            self._states[key] = _KeyTriggerState(**payload)

    @classmethod
    def merged(
        cls, exports: Iterable[Mapping], policy: TriggerPolicy | None = None
    ) -> "TriggerTracker":
        """One estate-wide tracker from per-shard exports.

        Shards partition the key space disjointly, so merging is a union;
        the result lets an estate-level plan see every shard's trigger
        evidence at once (the :class:`~repro.shard.runtime.ShardedRuntime`
        contract).
        """
        tracker = cls(policy=policy)
        for exported in exports:
            tracker.adopt_state(exported)
        return tracker
