"""Composable signal components for synthetic workload construction.

The experiments in the paper run against a real Oracle cluster driven by
Swingbench; this reproduction replaces that rig with a simulator whose
traces exhibit the same structures the paper's challenges enumerate:

* C1 — recurring patterns (seasonality),
* C2 — trends / non-stationarity,
* C3 — multiple overlapping seasonality,
* C4 — shocks.

A workload metric is assembled as a sum/product of small components, each
of which maps a timestamp grid to values. Components are deterministic
given their :class:`numpy.random.Generator`, so every experiment is
reproducible from a seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError

__all__ = [
    "Component",
    "Constant",
    "LinearTrend",
    "DailyCycle",
    "WeeklyCycle",
    "BusinessHours",
    "Surge",
    "RecurringShockComponent",
    "OneOffShock",
    "GaussianNoise",
    "ProportionalNoise",
    "Composite",
    "hours_of_day",
]

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def hours_of_day(timestamps: np.ndarray) -> np.ndarray:
    """Hour-of-day (fractional, in [0, 24)) for each timestamp."""
    return (np.asarray(timestamps, dtype=float) % SECONDS_PER_DAY) / SECONDS_PER_HOUR


class Component(abc.ABC):
    """A signal component evaluated on a timestamp grid."""

    @abc.abstractmethod
    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Component contribution at each timestamp."""

    def __add__(self, other: "Component") -> "Composite":
        return Composite([self, other])


@dataclass(frozen=True)
class Constant(Component):
    """A flat base level."""

    level: float

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.full(timestamps.size, self.level)


@dataclass(frozen=True)
class LinearTrend(Component):
    """Linear growth/decline: ``per_day`` units gained every 24 hours (C2)."""

    per_day: float

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        t0 = timestamps[0] if timestamps.size else 0.0
        return (timestamps - t0) / SECONDS_PER_DAY * self.per_day


@dataclass(frozen=True)
class DailyCycle(Component):
    """Smooth daily seasonality (C1): fundamental plus one harmonic.

    ``peak_hour`` places the daily maximum; ``sharpness`` > 0 mixes in the
    second harmonic to make the peak narrower than a pure sine.
    """

    amplitude: float
    peak_hour: float = 14.0
    sharpness: float = 0.3

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        hours = hours_of_day(timestamps)
        phase = 2.0 * np.pi * (hours - self.peak_hour) / 24.0
        wave = np.cos(phase) + self.sharpness * np.cos(2.0 * phase)
        return self.amplitude * wave / (1.0 + self.sharpness)


@dataclass(frozen=True)
class WeeklyCycle(Component):
    """Weekly seasonality (contributes to C3): weekend activity drop.

    ``weekend_factor`` scales a level reduction on days 5 and 6 of each
    7-day cycle (the grid's day 0 is a Monday by convention). A smooth
    ramp at the day boundaries avoids an artificial square wave.
    """

    depth: float
    weekend_factor: float = 1.0

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        day_of_week = (np.asarray(timestamps) / SECONDS_PER_DAY) % 7.0
        # Smooth indicator of the weekend (days in [5, 7)).
        ramp = 0.5 * (np.tanh((day_of_week - 5.0) * 6.0) - np.tanh((day_of_week - 7.0) * 6.0))
        return -self.depth * self.weekend_factor * ramp


@dataclass(frozen=True)
class BusinessHours(Component):
    """Office-hours plateau: elevated load between ``start`` and ``end``.

    Models the "users logging on at peak times" shape of Figure 2 more
    faithfully than a sine — a fast morning ramp, a flat working day and
    an evening ramp-down.
    """

    amplitude: float
    start: float = 8.0
    end: float = 18.0
    ramp_hours: float = 1.5

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        hours = hours_of_day(timestamps)
        k = 2.0 / max(self.ramp_hours, 1e-3)
        plateau = 0.5 * (np.tanh(k * (hours - self.start)) - np.tanh(k * (hours - self.end)))
        return self.amplitude * plateau


@dataclass(frozen=True)
class Surge(Component):
    """A daily login surge (C3 + C4): ``magnitude`` extra load from
    ``start_hour`` for ``duration_hours``, every day.

    Experiment Two uses two of these: 1000 users at 07:00 for 4 h and
    another 1000 at 09:00 for 1 h.
    """

    magnitude: float
    start_hour: float
    duration_hours: float

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise DataError("surge duration must be positive")

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        hours = hours_of_day(timestamps)
        end = self.start_hour + self.duration_hours
        inside = (hours >= self.start_hour) & (hours < end)
        if end > 24.0:  # surge wrapping past midnight
            inside |= hours < (end - 24.0)
        return self.magnitude * inside.astype(float)


@dataclass(frozen=True)
class RecurringShockComponent(Component):
    """A scheduled spike (C4), e.g. an RMAN backup every 6 hours.

    ``duration_samples`` is expressed in hours; the spike magnitude decays
    linearly over the duration like a backup whose first phase does the
    heavy lifting.
    """

    magnitude: float
    every_hours: float
    at_hour: float = 0.0
    duration_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.every_hours <= 0:
            raise DataError("shock recurrence interval must be positive")

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        period_s = self.every_hours * SECONDS_PER_HOUR
        offset = (np.asarray(timestamps) - self.at_hour * SECONDS_PER_HOUR) % period_s
        frac = offset / (self.duration_hours * SECONDS_PER_HOUR)
        active = frac < 1.0
        return self.magnitude * np.where(active, 1.0 - 0.5 * frac, 0.0)


@dataclass(frozen=True)
class OneOffShock(Component):
    """A single non-recurring event (a fault) at an absolute hour offset."""

    magnitude: float
    at_hour: float
    duration_hours: float = 1.0

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        t0 = timestamps[0] if timestamps.size else 0.0
        rel_hours = (np.asarray(timestamps) - t0) / SECONDS_PER_HOUR
        inside = (rel_hours >= self.at_hour) & (rel_hours < self.at_hour + self.duration_hours)
        return self.magnitude * inside.astype(float)


@dataclass(frozen=True)
class GaussianNoise(Component):
    """Additive white observation noise."""

    sigma: float

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, self.sigma, timestamps.size)


@dataclass(frozen=True)
class ProportionalNoise(Component):
    """Noise whose scale follows a reference signal (multiplicative flavour).

    Applied by :class:`Composite` after the deterministic components, so
    high-load hours fluctuate more than idle hours — matching the
    heteroscedasticity visible in the paper's Figures 2–3.
    """

    cv: float  # coefficient of variation relative to the running signal

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        # Resolved specially inside Composite; standalone it is zero-mean
        # noise of unit reference.
        return rng.normal(0.0, self.cv, timestamps.size)


class Composite(Component):
    """Sum of components, with proportional noise applied to the sum."""

    def __init__(self, components: list[Component]) -> None:
        flat: list[Component] = []
        for c in components:
            if isinstance(c, Composite):
                flat.extend(c.components)
            else:
                flat.append(c)
        self.components = flat

    def values(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        timestamps = np.asarray(timestamps, dtype=float)
        total = np.zeros(timestamps.size)
        proportional: list[ProportionalNoise] = []
        for c in self.components:
            if isinstance(c, ProportionalNoise):
                proportional.append(c)
            else:
                total = total + c.values(timestamps, rng)
        for p in proportional:
            total = total + np.abs(total) * rng.normal(0.0, p.cv, timestamps.size)
        return total
