"""Key registration and ingest fan-out over the consistent-hash ring.

The router is the control plane's only per-sample code path, so it is
deliberately tiny: one dict lookup per sample (the ring's hash + bisect
runs once per *key*, then the placement is memoised), appending into
per-shard lists. The memo doubles as the key registry — the set of every
key this deployment has ever routed — which rebalancing walks to compute
exactly which keys move when the ring resizes.
"""

from __future__ import annotations

from ..agent.agent import AgentSample
from .ring import HashRing

__all__ = ["ShardRouter"]


class ShardRouter:
    """Memoised key→shard placement plus batch partitioning."""

    def __init__(self, n_shards: int, vnodes: int = 64) -> None:
        self.ring = HashRing(n_shards, vnodes=vnodes)
        self._placement: dict[tuple[str, str], int] = {}

    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    def shard_for(self, instance: str, metric: str) -> int:
        """The shard owning a key (memoised; registers the key)."""
        key = (instance, metric)
        shard = self._placement.get(key)
        if shard is None:
            shard = self._placement[key] = self.ring.shard_for(instance, metric)
        return shard

    def known_keys(self) -> list[tuple[str, str]]:
        """Every key ever routed, sorted."""
        return sorted(self._placement)

    def partition(self, samples: list[AgentSample]) -> list[list[AgentSample]]:
        """Split one delivery-ordered chunk into per-shard sub-chunks.

        Relative sample order is preserved within each shard, so each
        shard sees exactly the arrival order the single-process bus
        would have seen for its keys.
        """
        parts: list[list[AgentSample]] = [[] for _ in range(self.n_shards)]
        placement = self._placement
        ring_lookup = self.ring.shard_for
        for sample in samples:
            key = (sample.instance, sample.metric)
            shard = placement.get(key)
            if shard is None:
                shard = placement[key] = ring_lookup(sample.instance, sample.metric)
            parts[shard].append(sample)
        return parts

    def rebuild(self, n_shards: int) -> dict[tuple[str, str], tuple[int, int]]:
        """Resize the ring; returns ``{moved key: (old shard, new shard)}``.

        Every registered key is re-placed on the new ring and the memo
        updated in place; only keys whose owner changed are returned —
        the migration worklist for
        :meth:`~repro.shard.runtime.ShardedRuntime.rebalance`.
        """
        new_ring = self.ring.resized(n_shards)
        moved: dict[tuple[str, str], tuple[int, int]] = {}
        for key, old in self._placement.items():
            new = new_ring.shard_for(*key)
            if new != old:
                moved[key] = (old, new)
            self._placement[key] = new
        self.ring = new_ring
        return moved
