"""Tests for the engine's run telemetry recorder."""

from repro.engine import RunTrace, SerialExecutor, StageEvent


def _double(x):
    return 2 * x


class TestRecording:
    def test_stage_context_times_block(self):
        trace = RunTrace()
        with trace.stage("score", detail="16 candidates"):
            pass
        assert len(trace.events) == 1
        event = trace.events[0]
        assert event.name == "score"
        assert event.detail == "16 candidates"
        assert event.seconds >= 0.0

    def test_stage_recorded_even_on_exception(self):
        trace = RunTrace()
        try:
            with trace.stage("explode"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [e.name for e in trace.events] == ["explode"]

    def test_counters_accumulate(self):
        trace = RunTrace()
        trace.count("candidates_fitted", 10)
        trace.count("candidates_fitted", 5)
        trace.count("candidates_failed")
        assert trace.counters == {"candidates_fitted": 15, "candidates_failed": 1}

    def test_worker_tasks(self):
        trace = RunTrace()
        trace.record_worker("1234", 3)
        trace.record_worker("1234")
        trace.record_worker("5678")
        assert trace.worker_tasks == {"1234": 4, "5678": 1}

    def test_record_task_reports(self):
        trace = RunTrace()
        reports = SerialExecutor().run(_double, [1, 2, 3])
        trace.record_task_reports(reports)
        assert trace.worker_tasks == {"serial": 3}
        assert "tasks_timed_out" not in trace.counters

    def test_lineage_notes(self):
        trace = RunTrace()
        trace.note("auto: hes beats grid")
        trace.note("refit HES on full window")
        assert trace.lineage == ["auto: hes beats grid", "refit HES on full window"]


class TestReading:
    def test_stage_seconds_aggregates_by_name(self):
        trace = RunTrace()
        trace.add_stage("score", 1.0)
        trace.add_stage("augment", 0.5)
        trace.add_stage("score", 0.25)
        assert trace.stage_seconds() == {"score": 1.25, "augment": 0.5}
        assert trace.total_seconds() == 1.75

    def test_merge_folds_everything(self):
        estate, workload = RunTrace(), RunTrace()
        workload.add_stage("score", 2.0)
        workload.count("candidates_fitted", 7)
        workload.record_worker("99", 7)
        estate.merge(workload, prefix="w1:")
        assert estate.stage_seconds() == {"w1:score": 2.0}
        assert estate.counters == {"candidates_fitted": 7}
        assert estate.worker_tasks == {"99": 7}

    def test_summary_lines(self):
        trace = RunTrace()
        trace.add_stage("repair", 0.01)
        trace.add_stage("score", 1.5)
        trace.count("candidates_fitted", 12)
        trace.count("candidates_failed", 2)
        trace.record_worker("serial", 14)
        trace.note("winner SARIMAX (1,0,1)(0,1,1,24)")
        lines = trace.summary_lines()
        assert any("repair" in line and "score" in line for line in lines)
        assert any("candidates_fitted=12" in line for line in lines)
        assert any("serial:14" in line for line in lines)
        assert any("lineage" in line for line in lines)

    def test_summary_empty_trace(self):
        assert RunTrace().summary_lines() == []

    def test_stage_event_immutable(self):
        event = StageEvent(name="x", seconds=1.0)
        try:
            event.seconds = 2.0
            raised = False
        except AttributeError:
            raised = True
        assert raised
