"""Table 2(b): Experiment Results — OLTP.

Same protocol as Table 2(a) but on Experiment Two: trend (+50 users/day),
multiple seasonality (daily cycle + 07:00/09:00 login surges) and 6-hourly
backup shocks. Prints the paper-style table and asserts the paper's shape:

* the seasonal SARIMAX families beat plain ARIMA on every metric — the
  OLTP gap is larger than the OLAP one because plain ARIMA cannot track
  surges and shocks;
* the models still cope when "complex data structures such as multiple
  seasonality and shocks" are added (IOPS accuracy within sane MAPE).
"""

import pytest

from repro.reporting import Table

from .conftest import best_of_family, metric_series

INSTANCES = ("cdbm011", "cdbm012")
METRICS = ("cpu", "memory", "logical_iops")
FAMILIES = ("ARIMA", "SARIMAX", "SARIMAX FFT Exogenous")


@pytest.fixture(scope="module")
def table_rows(oltp_run):
    rows = []
    for instance in INSTANCES:
        for metric in METRICS:
            series = metric_series(oltp_run, instance, metric)
            train, test = series.train_test_split()
            for family in FAMILIES:
                results = best_of_family(family, train, test)
                best = next(r for r in results if not r.failed)
                rows.append((instance, metric, family, best))
    return rows


def test_table2b_oltp(benchmark, oltp_run, table_rows):
    series = metric_series(oltp_run, "cdbm011", "logical_iops")
    train, test = series.train_test_split()
    benchmark.pedantic(
        lambda: best_of_family("SARIMAX FFT Exogenous", train, test),
        rounds=1,
        iterations=1,
    )

    table = Table(
        ["Forecast Model", "Metric", "RMSE", "MAPE %", "MAPA %", "Instance"],
        title="Table 2(b): Experiment Results - OLTP",
    )
    for instance, metric, family, best in table_rows:
        table.add_row(
            [
                best.spec.describe(),
                metric,
                best.rmse,
                best.accuracy.mape,
                best.accuracy.mapa,
                instance,
            ]
        )
    print()
    table.print()

    by_key = {
        (instance, metric, family): best
        for instance, metric, family, best in table_rows
    }

    for instance in INSTANCES:
        for metric in METRICS:
            arima = by_key[(instance, metric, "ARIMA")].rmse
            seasonal_best = min(
                by_key[(instance, metric, "SARIMAX")].rmse,
                by_key[(instance, metric, "SARIMAX FFT Exogenous")].rmse,
            )
            assert seasonal_best <= arima * 1.05, (
                f"{instance}/{metric}: seasonal families should not lose to "
                f"ARIMA ({seasonal_best:.3f} vs {arima:.3f})"
            )

    # Complex structure handled: IOPS (trend + surges + backups) forecast
    # accuracy stays useful — MAPA comfortably positive, as in the paper's
    # 80-90 % range for Table 2(b) IOPS rows.
    for instance in INSTANCES:
        best_iops = min(
            (by_key[(instance, "logical_iops", f)] for f in FAMILIES[1:]),
            key=lambda r: r.rmse,
        )
        assert best_iops.accuracy.mapa > 60.0, (
            f"{instance} iops MAPA {best_iops.accuracy.mapa:.1f}"
        )
