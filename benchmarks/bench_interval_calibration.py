"""Ablation A7: are the error bars honest? Interval calibration.

The problem definition (Section 3) requires predictions with "associated
error bars"; an error bar is only useful if its nominal coverage is real.
This ablation backtests the main model families over rolling origins on
the Experiment One CPU metric and measures the empirical coverage of the
95 % and 80 % prediction intervals.

Expected shape: coverage within a sane band around nominal (interval
construction differs per family — ψ-weight analytic for SARIMA, analytic
additive formulas for HES — but all should be usable: neither ~50 %
nor ~100 %).
"""

import pytest

from repro.models import Arima, HoltWinters
from repro.reporting import Table

from .conftest import metric_series

HORIZON = 24
N_ORIGINS = 6

FAMILIES = [
    ("SARIMA", lambda: Arima((1, 0, 1), seasonal=(0, 1, 1, 24), maxiter=60)),
    ("HES", lambda: HoltWinters(24)),
]


def empirical_coverage(series, factory, alpha):
    hits = total = 0
    last_origin = len(series) - HORIZON
    for k in range(N_ORIGINS):
        origin = last_origin - k * HORIZON
        train = series[:origin]
        actual = series.values[origin : origin + HORIZON]
        forecast = factory().fit(train).forecast(HORIZON, alpha=alpha)
        inside = (actual >= forecast.lower.values) & (actual <= forecast.upper.values)
        hits += int(inside.sum())
        total += HORIZON
    return hits / total


@pytest.fixture(scope="module")
def coverage_rows(olap_run):
    series = metric_series(olap_run, "cdbm011", "cpu")
    rows = []
    for name, factory in FAMILIES:
        cov95 = empirical_coverage(series, factory, alpha=0.05)
        cov80 = empirical_coverage(series, factory, alpha=0.20)
        rows.append((name, cov95, cov80))
    return rows


def test_interval_calibration(benchmark, olap_run, coverage_rows):
    series = metric_series(olap_run, "cdbm011", "cpu")
    train = series[: len(series) - HORIZON]
    fitted = Arima((1, 0, 1), seasonal=(0, 1, 1, 24), maxiter=60).fit(train)
    benchmark(lambda: fitted.forecast(HORIZON))

    table = Table(
        ["Family", "95% coverage", "80% coverage"],
        title=f"Ablation A7: interval calibration over {N_ORIGINS} rolling origins",
    )
    for name, cov95, cov80 in coverage_rows:
        table.add_row([name, 100.0 * cov95, 100.0 * cov80])
    print()
    table.print()

    for name, cov95, cov80 in coverage_rows:
        # Usable calibration: nominal 95 % realised within [85, 100],
        # nominal 80 % within [65, 99], and ordering preserved.
        assert 0.85 <= cov95 <= 1.0, (name, cov95)
        assert 0.65 <= cov80 <= 0.99, (name, cov80)
        assert cov95 >= cov80, name
