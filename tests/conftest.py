"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def daily_series(rng) -> TimeSeries:
    """Hourly series with a clean daily cycle and mild noise."""
    t = np.arange(600)
    values = 50.0 + 10.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.0, t.size)
    return TimeSeries(values, Frequency.HOURLY, name="cpu")


@pytest.fixture
def trending_series(rng) -> TimeSeries:
    """Hourly series with trend + daily cycle (Experiment Two shape)."""
    t = np.arange(800)
    values = (
        100.0
        + 0.1 * t
        + 12.0 * np.sin(2 * np.pi * t / 24)
        + rng.normal(0, 2.0, t.size)
    )
    return TimeSeries(values, Frequency.HOURLY, name="iops")


@pytest.fixture
def multiseasonal_series(rng) -> TimeSeries:
    """Hourly series with daily + weekly cycles (challenge C3)."""
    t = np.arange(1100)
    values = (
        80.0
        + 10.0 * np.sin(2 * np.pi * t / 24)
        + 5.0 * np.sin(2 * np.pi * t / 168)
        + rng.normal(0, 1.0, t.size)
    )
    return TimeSeries(values, Frequency.HOURLY, name="memory")


@pytest.fixture
def shocked_series(rng) -> TimeSeries:
    """Hourly series with a nightly backup spike (challenge C4)."""
    t = np.arange(720)
    values = 60.0 + 8.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.0, t.size)
    values[(t % 24) == 0] += 30.0
    return TimeSeries(values, Frequency.HOURLY, name="iops")


@pytest.fixture
def white_noise(rng) -> TimeSeries:
    return TimeSeries(rng.normal(0, 1, 400), Frequency.HOURLY, name="noise")
