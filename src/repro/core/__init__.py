"""Core time-series analysis substrate.

Everything the forecasting models and the self-selection pipeline need:
the :class:`TimeSeries` value type, sampling :class:`Frequency` definitions
with the paper's Table 1 split rules, accuracy metrics, autocorrelation
analysis, stationarity tests, seasonal decomposition, Box–Cox transforms,
Fourier regressors and gap repair.
"""

from .boxcox import boxcox, guerrero_lambda, inv_boxcox
from .decompose import Decomposition, decompose, seasonal_strength, trend_strength
from .fourier import (
    SeasonalityReport,
    detect_seasonalities,
    fourier_terms,
    periodogram,
)
from .frequency import SPLIT_RULES, Frequency, SplitRule
from .metrics import (
    AccuracyReport,
    accuracy_report,
    aic,
    aicc,
    bic,
    mae,
    mapa,
    mape,
    mase,
    rmse,
    smape,
)
from .preprocessing import (
    Gap,
    find_gaps,
    interpolate_missing,
    standardize,
    winsorize,
)
from .stationarity import (
    UnitRootResult,
    adf_test,
    difference,
    integrate,
    kpss_test,
    ndiffs,
    nsdiffs,
)
from .stats import Correlogram, LjungBoxResult, acf, correlogram, ljung_box, pacf
from .timeseries import TimeSeries

__all__ = [
    "TimeSeries",
    "Frequency",
    "SplitRule",
    "SPLIT_RULES",
    # metrics
    "rmse",
    "mae",
    "mape",
    "mapa",
    "smape",
    "mase",
    "aic",
    "aicc",
    "bic",
    "AccuracyReport",
    "accuracy_report",
    # stats
    "acf",
    "pacf",
    "ljung_box",
    "LjungBoxResult",
    "Correlogram",
    "correlogram",
    # stationarity
    "adf_test",
    "kpss_test",
    "difference",
    "integrate",
    "ndiffs",
    "nsdiffs",
    "UnitRootResult",
    # decomposition
    "decompose",
    "Decomposition",
    "seasonal_strength",
    "trend_strength",
    # transforms
    "boxcox",
    "inv_boxcox",
    "guerrero_lambda",
    # fourier
    "fourier_terms",
    "periodogram",
    "detect_seasonalities",
    "SeasonalityReport",
    # preprocessing
    "interpolate_missing",
    "find_gaps",
    "Gap",
    "winsorize",
    "standardize",
]
