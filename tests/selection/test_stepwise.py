"""Tests for the Hyndman–Khandakar stepwise order search."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries, rmse
from repro.exceptions import DataError
from repro.models import Arima
from repro.selection import stepwise_search


def make_series(seed=0, n=900, trend=0.05, amp=10.0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return TimeSeries(
        60 + trend * t + amp * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.5, n),
        Frequency.HOURLY,
    )


class TestStepwiseSearch:
    def test_seasonal_component_found(self):
        result = stepwise_search(make_series(), period=24)
        assert result.seasonal is not None
        assert result.seasonal[3] == 24
        assert np.isfinite(result.aicc)

    def test_far_fewer_fits_than_grid(self):
        result = stepwise_search(make_series(), period=24)
        assert result.n_fits < 60  # vs 660 for the paper's grid

    def test_winner_forecasts_well(self):
        series = make_series(seed=3)
        train, test = series.split(len(series) - 24)
        result = stepwise_search(train, period=24)
        fitted = Arima(result.order, seasonal=result.seasonal).fit(train)
        assert rmse(test, fitted.forecast(24).mean) < 4.0

    def test_nonseasonal_search(self):
        rng = np.random.default_rng(4)
        x = np.zeros(600)
        for t in range(1, 600):
            x[t] = 0.7 * x[t - 1] + rng.normal()
        result = stepwise_search(TimeSeries(x), period=None)
        assert result.seasonal is None
        assert result.order[0] >= 1  # some AR structure found

    def test_differencing_diagnosed(self):
        result = stepwise_search(make_series(trend=0.3), period=24)
        assert result.order[1] >= 1 or (result.seasonal and result.seasonal[1] >= 1)

    def test_budget_respected(self):
        result = stepwise_search(make_series(), period=24, max_fits=6)
        assert result.n_fits <= 6

    def test_trace_recorded(self):
        result = stepwise_search(make_series(), period=24)
        assert len(result.trace) == result.n_fits
        assert all("AICc=" in line for line in result.trace)

    def test_short_series_disables_seasonal(self):
        result = stepwise_search(make_series(n=40), period=24)
        assert result.seasonal is None

    def test_missing_values_rejected(self):
        values = make_series().values.copy()
        values[5] = np.nan
        with pytest.raises(DataError):
            stepwise_search(TimeSeries(values), period=24)

    def test_describe(self):
        text = stepwise_search(make_series(), period=24).describe()
        assert "stepwise winner" in text and "fits" in text
