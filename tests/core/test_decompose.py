"""Tests for classical seasonal decomposition and strength measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import decompose, seasonal_strength, trend_strength
from repro.exceptions import DataError


def seasonal_signal(n=480, period=24, amp=10.0, trend=0.0, noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (
        50.0
        + trend * t
        + amp * np.sin(2 * np.pi * t / period)
        + rng.normal(0, noise, n)
    )


class TestDecompose:
    def test_additive_recovers_profile(self):
        x = seasonal_signal()
        dec = decompose(x, 24)
        profile = dec.seasonal_profile
        expected = 10.0 * np.sin(2 * np.pi * np.arange(24) / 24)
        assert np.allclose(profile, expected, atol=0.6)

    def test_seasonal_sums_to_zero_additive(self):
        dec = decompose(seasonal_signal(), 24)
        assert dec.seasonal_profile.sum() == pytest.approx(0.0, abs=1e-9)

    def test_multiplicative_profile_averages_one(self):
        x = seasonal_signal(amp=5.0) + 100.0
        dec = decompose(x, 24, model="multiplicative")
        assert dec.seasonal_profile.mean() == pytest.approx(1.0, abs=1e-9)

    def test_trend_tracks_linear_growth(self):
        x = seasonal_signal(trend=0.2, noise=0.1)
        dec = decompose(x, 24)
        inner = dec.trend[50:-50]
        slopes = np.diff(inner)
        assert np.nanmean(slopes) == pytest.approx(0.2, abs=0.02)

    def test_trend_nan_at_edges(self):
        dec = decompose(seasonal_signal(), 24)
        assert np.isnan(dec.trend[0]) and np.isnan(dec.trend[-1])
        assert np.isfinite(dec.trend[24:-24]).all()

    def test_residual_reconstruction_additive(self):
        x = seasonal_signal()
        dec = decompose(x, 24)
        mask = np.isfinite(dec.trend)
        recon = dec.trend[mask] + dec.seasonal[mask] + dec.residual[mask]
        assert np.allclose(recon, x[mask])

    def test_residual_reconstruction_multiplicative(self):
        x = seasonal_signal(amp=5.0) + 100
        dec = decompose(x, 24, model="multiplicative")
        mask = np.isfinite(dec.trend)
        recon = dec.trend[mask] * dec.seasonal[mask] * dec.residual[mask]
        assert np.allclose(recon, x[mask])

    def test_odd_period(self):
        x = seasonal_signal(period=7, n=100)
        dec = decompose(x, 7)
        assert dec.period == 7
        assert np.isfinite(dec.trend[10:-10]).all()

    def test_rejects_short_series(self):
        with pytest.raises(DataError):
            decompose(np.arange(30.0), 24)

    def test_rejects_bad_period(self):
        with pytest.raises(DataError):
            decompose(np.arange(100.0), 1)

    def test_multiplicative_rejects_nonpositive(self):
        x = seasonal_signal() - 100.0
        with pytest.raises(DataError):
            decompose(x, 24, model="multiplicative")

    def test_unknown_model(self):
        with pytest.raises(DataError):
            decompose(seasonal_signal(), 24, model="magic")


class TestStrengths:
    def test_seasonal_strength_high_for_seasonal(self):
        assert seasonal_strength(seasonal_signal(noise=0.5), 24) > 0.9

    def test_seasonal_strength_low_for_noise(self, white_noise):
        assert seasonal_strength(white_noise, 24) < 0.3

    def test_seasonal_strength_zero_for_constant(self):
        assert seasonal_strength(np.ones(100), 24) == 0.0

    def test_seasonal_strength_zero_when_too_short(self):
        assert seasonal_strength(np.arange(10.0), 24) == 0.0

    def test_trend_strength_high_for_trending(self):
        x = seasonal_signal(trend=0.3)
        assert trend_strength(x, 24) > 0.9

    def test_trend_strength_low_for_noise(self, white_noise):
        assert trend_strength(white_noise, 24) < 0.5

    def test_trend_strength_without_period(self):
        rng = np.random.default_rng(0)
        x = np.arange(200.0) * 0.5 + rng.normal(0, 1, 200)
        assert trend_strength(x) > 0.9

    def test_strengths_in_unit_interval(self):
        x = seasonal_signal(trend=0.1, noise=3.0)
        assert 0.0 <= seasonal_strength(x, 24) <= 1.0
        assert 0.0 <= trend_strength(x, 24) <= 1.0


class TestDecomposeProperties:
    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=2, max_value=20),
        st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_always_holds(self, seed, period, amp):
        x = seasonal_signal(n=6 * period + 11, period=period, amp=amp, seed=seed)
        dec = decompose(x, period)
        mask = np.isfinite(dec.trend)
        recon = dec.trend[mask] + dec.seasonal[mask] + dec.residual[mask]
        assert np.allclose(recon, x[mask])

    @given(st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_strength_increases_with_amplitude_dominance(self, amp):
        weak = seasonal_signal(amp=0.1, noise=1.0)
        strong = seasonal_signal(amp=amp * 10, noise=1.0)
        assert seasonal_strength(strong, 24) >= seasonal_strength(weak, 24)
