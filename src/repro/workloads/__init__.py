"""Workload simulator substrate.

Replaces the paper's Oracle-Exadata-plus-Swingbench rig with a
deterministic discrete-time simulation producing metric traces with the
same structures: seasonality (C1), trend (C2), multiple seasonality (C3)
and shocks (C4). See DESIGN.md for the substitution rationale.
"""

from .cluster import (
    BackupPolicy,
    ClusterRun,
    ClusteredDatabase,
    ConnectionBalancer,
    FailoverEvent,
)
from .components import (
    BusinessHours,
    Component,
    Composite,
    Constant,
    DailyCycle,
    GaussianNoise,
    LinearTrend,
    OneOffShock,
    ProportionalNoise,
    RecurringShockComponent,
    Surge,
    WeeklyCycle,
)
from .database import (
    OLAP_PROFILE,
    OLTP_PROFILE,
    CostProfile,
    DatabaseInstance,
    MetricBundle,
)
from .olap import OlapExperiment, generate_olap_run, olap_cluster
from .oltp import OltpExperiment, generate_oltp_run, oltp_cluster
from .queries import (
    CalendarEffect,
    FlashCrowd,
    QueryTemplate,
    sibyl_template_mix,
    template_series,
    workload_series,
)
from .scenarios import (
    batch_etl,
    flash_crowd_frontend,
    holiday_retail_orders,
    make_series,
    query_store_arrivals,
    san_storage,
    tenant_drift_saas,
    unstable_system,
    weblogic_heap,
    web_transactions,
    weekly_business_app,
)
from .sessions import LoginSurge, UserPopulation
from .transactions import CHECKOUT, ClickStep, TransactionProfile, TransactionSimulator

__all__ = [
    # components
    "Component",
    "Composite",
    "Constant",
    "LinearTrend",
    "DailyCycle",
    "WeeklyCycle",
    "BusinessHours",
    "Surge",
    "RecurringShockComponent",
    "OneOffShock",
    "GaussianNoise",
    "ProportionalNoise",
    # sessions
    "UserPopulation",
    "LoginSurge",
    # database
    "CostProfile",
    "OLAP_PROFILE",
    "OLTP_PROFILE",
    "DatabaseInstance",
    "MetricBundle",
    # cluster
    "ClusteredDatabase",
    "ClusterRun",
    "ConnectionBalancer",
    "BackupPolicy",
    "FailoverEvent",
    # experiments
    "OlapExperiment",
    "olap_cluster",
    "generate_olap_run",
    "OltpExperiment",
    "oltp_cluster",
    "generate_oltp_run",
    # query workloads
    "QueryTemplate",
    "FlashCrowd",
    "CalendarEffect",
    "template_series",
    "workload_series",
    "sibyl_template_mix",
    # scenarios
    "web_transactions",
    "batch_etl",
    "weekly_business_app",
    "san_storage",
    "weblogic_heap",
    "unstable_system",
    "query_store_arrivals",
    "flash_crowd_frontend",
    "holiday_retail_orders",
    "tenant_drift_saas",
    "make_series",
    # transactions
    "ClickStep",
    "TransactionProfile",
    "TransactionSimulator",
    "CHECKOUT",
]
