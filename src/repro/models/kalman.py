"""Exact Gaussian likelihood for ARMA models via the Kalman filter.

The CSS objective used by :mod:`repro.models.arima` conditions on zero
initial values — fast and fine for order *selection*, but not the exact
likelihood. This module provides the state-space machinery for exact
maximum likelihood, the estimator R's ``arima`` refines its CSS starting
values with:

* :func:`arma_state_space` builds Harvey's representation of an
  ARMA(p, q) process: state dimension ``m = max(p, q+1)``, transition in
  companion form, the MA coefficients entering through the selection
  vector ``R``;
* :func:`stationary_initialisation` solves the discrete Lyapunov equation
  for the exact stationary state covariance, so the filter starts from
  the process's unconditional distribution instead of zeros;
* :func:`kalman_loglike` runs the filter and returns the exact Gaussian
  log-likelihood with the innovation variance concentrated out;
* :func:`fit_arma_mle` wraps the above in an optimiser, warm-started from
  given (CSS) estimates.

The SARIMA estimator exposes this as ``Arima(..., method="mle")``: the
seasonal polynomials are expanded into the equivalent long-AR/long-MA
form first, so one ARMA state space covers the seasonal case too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg, optimize

from ..exceptions import ConvergenceError, ModelError
from . import kernels
from .polynomials import ar_poly, ma_poly

__all__ = [
    "arma_state_space",
    "stationary_initialisation",
    "kalman_loglike",
    "kalman_loglike_batch",
    "fit_arma_mle",
    "MleResult",
]


def arma_state_space(
    phi: np.ndarray, theta: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Harvey's state-space form of a zero-mean ARMA(p, q) process.

    Returns ``(T, R, Z)`` with state dimension ``m = max(p, q + 1)``::

        alpha_t = T alpha_{t-1} + R eta_t,   y_t = Z' alpha_t

    where ``eta_t`` is the scalar innovation. ``T`` carries the AR
    coefficients in its first column plus an upper shift; ``R`` is
    ``[1, theta_1, …, theta_{m-1}]``.
    """
    phi = np.asarray(phi, dtype=float)
    theta = np.asarray(theta, dtype=float)
    p, q = phi.size, theta.size
    m = max(p, q + 1)
    T = np.zeros((m, m))
    T[:p, 0] = phi
    T[:-1, 1:] = np.eye(m - 1)
    R = np.zeros(m)
    R[0] = 1.0
    R[1 : q + 1] = theta
    Z = np.zeros(m)
    Z[0] = 1.0
    return T, R, Z


def stationary_initialisation(T: np.ndarray, R: np.ndarray) -> np.ndarray:
    """Unconditional state covariance: solve ``P = T P T' + R R'``.

    Only exists for a stationary transition (spectral radius < 1); the
    caller enforces stationarity before getting here.
    """
    RRt = np.outer(R, R)
    try:
        P0 = linalg.solve_discrete_lyapunov(T, RRt)
    except (linalg.LinAlgError, ValueError) as exc:
        raise ModelError(f"stationary initialisation failed: {exc}") from exc
    # Symmetrise against numerical drift.
    return 0.5 * (P0 + P0.T)


def kalman_loglike(
    y: np.ndarray, phi: np.ndarray, theta: np.ndarray
) -> tuple[float, float]:
    """Exact concentrated Gaussian log-likelihood of an ARMA(p, q).

    Runs the Kalman filter with the innovation variance σ² concentrated
    out: the filter computes scaled innovations ``v_t`` and their scaled
    variances ``F_t`` with σ² = 1, then

        σ̂² = (1/n) Σ v_t² / F_t
        ll  = −(n/2)(log 2π + 1 + log σ̂²) − (1/2) Σ log F_t

    Returns ``(loglike, sigma2_hat)``.
    """
    y = np.asarray(y, dtype=float)
    n = y.size
    if n < 3:
        raise ModelError("need at least 3 observations for the likelihood")
    # Stationarity / invertibility guard (strict, matching CSS).
    from .polynomials import min_root_modulus

    if phi.size and min_root_modulus(ar_poly(phi)) <= 1.0:
        return -np.inf, np.nan
    if theta.size and min_root_modulus(ma_poly(theta)) <= 1.0:
        return -np.inf, np.nan

    T, R, __ = arma_state_space(phi, theta)
    P = stationary_initialisation(T, R)
    RRt = np.outer(R, R)

    # The per-timestep filter loop (innovation → update → predict) lives in
    # the compiled kernel; Z picks the first state component.
    sum_sq, sum_logF, ok = kernels.kalman_filter(y, T, RRt, P)
    if not ok:
        return -np.inf, np.nan

    sigma2 = sum_sq / n
    if sigma2 <= 0 or not np.isfinite(sigma2):
        return -np.inf, np.nan
    ll = -0.5 * (n * (np.log(2.0 * np.pi) + 1.0 + np.log(sigma2)) + sum_logF)
    return float(ll), float(sigma2)


def kalman_loglike_batch(
    y: np.ndarray, phi: np.ndarray, theta: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concentrated log-likelihoods for a cohort sharing one ``(p, q)`` order.

    ``y`` is ``(B, n)``; ``phi``/``theta`` are ``(B, p)``/``(B, q)`` — one
    candidate parameter point per row (the shape a cohort-batched grid
    evaluation produces). State spaces are built per row (they are tiny);
    the filter passes run through
    :func:`repro.models.kernels.kalman_filter_batch` in one dispatch.
    Returns ``(loglike (B,), sigma2 (B,))``, each row bit-identical to
    :func:`kalman_loglike` on that row (non-stationary rows get
    ``(-inf, nan)`` exactly as the per-key guard does).
    """
    from .polynomials import min_root_modulus

    y = np.ascontiguousarray(y, dtype=float)
    if y.ndim != 2:
        raise ModelError(f"cohort series must be (batch, n), got {y.shape}")
    B, n = y.shape
    if n < 3:
        raise ModelError("need at least 3 observations for the likelihood")
    phi = np.atleast_2d(np.asarray(phi, dtype=float))
    theta = np.atleast_2d(np.asarray(theta, dtype=float))
    lls = np.full(B, -np.inf)
    sig = np.full(B, np.nan)
    rows: list[int] = []
    Ts, RRts, P0s = [], [], []
    for i in range(B):
        ph, th = phi[i], theta[i]
        if ph.size and min_root_modulus(ar_poly(ph)) <= 1.0:
            continue
        if th.size and min_root_modulus(ma_poly(th)) <= 1.0:
            continue
        T, R, __ = arma_state_space(ph, th)
        P = stationary_initialisation(T, R)
        rows.append(i)
        Ts.append(T)
        RRts.append(np.outer(R, R))
        P0s.append(P)
    if rows:
        sum_sq, sum_logF, ok = kernels.kalman_filter_batch(
            y[rows], np.stack(Ts), np.stack(RRts), np.stack(P0s)
        )
        for j, i in enumerate(rows):
            if not ok[j]:
                continue
            sigma2 = sum_sq[j] / n
            if sigma2 <= 0 or not np.isfinite(sigma2):
                continue
            lls[i] = -0.5 * (n * (np.log(2.0 * np.pi) + 1.0 + np.log(sigma2)) + sum_logF[j])
            sig[i] = float(sigma2)
    return lls, sig


@dataclass(frozen=True)
class MleResult:
    """Outcome of exact maximum-likelihood ARMA estimation."""

    phi: np.ndarray
    theta: np.ndarray
    sigma2: float
    loglike: float
    n_iterations: int
    converged: bool


def fit_arma_mle(
    y: np.ndarray,
    p: int,
    q: int,
    start_phi: np.ndarray | None = None,
    start_theta: np.ndarray | None = None,
    maxiter: int = 150,
) -> MleResult:
    """Exact MLE for a zero-mean ARMA(p, q) on (differenced) data.

    Warm-start from CSS estimates when available; falls back to small
    defaults otherwise. Demeaning is the caller's job (the SARIMA wrapper
    passes the centred, differenced series).
    """
    y = np.asarray(y, dtype=float)
    if p < 0 or q < 0:
        raise ModelError("orders must be non-negative")
    if p == 0 and q == 0:
        n = y.size
        sigma2 = float(y @ y) / max(n, 1)
        ll = -0.5 * n * (np.log(2 * np.pi) + 1.0 + np.log(max(sigma2, 1e-300)))
        return MleResult(
            phi=np.empty(0), theta=np.empty(0), sigma2=sigma2,
            loglike=float(ll), n_iterations=0, converged=True,
        )

    x0 = np.concatenate(
        [
            np.asarray(start_phi, dtype=float) if start_phi is not None else np.full(p, 0.1),
            np.asarray(start_theta, dtype=float) if start_theta is not None else np.full(q, 0.1),
        ]
    )
    if x0.size != p + q:
        raise ModelError("start values do not match the requested orders")

    def negll(x: np.ndarray) -> float:
        ll, __ = kalman_loglike(y, x[:p], x[p:])
        return 1e12 if not np.isfinite(ll) else -ll

    # Keep the warm start inside the stationary region.
    x = x0.copy()
    for __ in range(40):
        if np.isfinite(-negll(x)) and negll(x) < 1e12:
            break
        x *= 0.8
    result = optimize.minimize(
        negll, x, method="Nelder-Mead",
        options={"maxiter": maxiter * (p + q + 1), "fatol": 1e-8, "xatol": 1e-6},
    )
    ll, sigma2 = kalman_loglike(y, result.x[:p], result.x[p:])
    if not np.isfinite(ll):
        raise ConvergenceError("exact-MLE optimisation diverged")
    return MleResult(
        phi=result.x[:p].copy(),
        theta=result.x[p:].copy(),
        sigma2=sigma2,
        loglike=ll,
        n_iterations=int(result.nit),
        converged=bool(result.success),
    )
