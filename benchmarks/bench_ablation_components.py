"""Ablation A1: what do the Fourier terms and exogenous shocks buy?

The paper's third family stacks two mechanisms on top of SARIMAX —
exogenous shock indicators (Section 4.2) and Fourier terms (Section 4.4) —
but Table 2 only reports the combined model. This ablation separates them
on the Experiment Two logical-IOPS metric (trend + surges + 6-hourly
backups): SARIMAX alone, +Fourier, +Exogenous, +both, plus naive anchors.

Expected shape: every SARIMAX variant crushes the naive baselines; the
exogenous/Fourier increments are small on this metric because the 6-hourly
backups are 24-periodic and thus largely absorbed by the seasonal
component — which is itself a finding the paper's mixed Table 2(b)
orderings (SARIMAX occasionally beating SARIMAX FFT) corroborate.
"""

import pytest

from repro.core import accuracy_report
from repro.models import Naive, Sarimax, SeasonalNaive
from repro.reporting import Table
from repro.shocks import build_shock_calendar

from .conftest import metric_series

ORDER = (2, 1, 1)
SEASONAL = (1, 1, 1, 24)


@pytest.fixture(scope="module")
def ablation_rows(oltp_run):
    series = metric_series(oltp_run, "cdbm011", "logical_iops")
    train, test = series.train_test_split()
    horizon = len(test)
    calendar = build_shock_calendar(train, period=24, candidate_periods=(24, 168))
    exog = calendar.train_matrix()
    exog_future = calendar.future_matrix(horizon)

    rows = []

    def score(label, forecast):
        rows.append((label, accuracy_report(test, forecast.mean)))

    score("Naive", Naive().fit(train).forecast(horizon))
    score("SeasonalNaive(24)", SeasonalNaive(24).fit(train).forecast(horizon))
    score("SARIMAX", Sarimax(ORDER, seasonal=SEASONAL).fit(train).forecast(horizon))
    score(
        "SARIMAX + Fourier",
        Sarimax(ORDER, seasonal=SEASONAL, fourier_periods=[168], fourier_orders=[2])
        .fit(train)
        .forecast(horizon),
    )
    score(
        "SARIMAX + Exogenous",
        Sarimax(ORDER, seasonal=SEASONAL)
        .fit(train, exog=exog)
        .forecast(horizon, exog_future=exog_future),
    )
    score(
        "SARIMAX + Exog + Fourier",
        Sarimax(ORDER, seasonal=SEASONAL, fourier_periods=[168], fourier_orders=[2])
        .fit(train, exog=exog)
        .forecast(horizon, exog_future=exog_future),
    )
    return rows


def test_ablation_components(benchmark, oltp_run, ablation_rows):
    series = metric_series(oltp_run, "cdbm011", "logical_iops")
    train, test = series.train_test_split()
    benchmark.pedantic(
        lambda: Sarimax(ORDER, seasonal=SEASONAL).fit(train),
        rounds=1,
        iterations=1,
    )

    table = Table(
        ["Variant", "RMSE", "MAPE %", "MAPA %"],
        title="Ablation A1: component contributions (OLTP logical IOPS)",
    )
    scores = {}
    for label, report in ablation_rows:
        scores[label] = report.rmse
        table.add_row([label, report.rmse, report.mape, report.mapa])
    print()
    table.print()

    # Every SARIMAX variant beats both naive anchors.
    sarimax_best = min(v for k, v in scores.items() if k.startswith("SARIMAX"))
    sarimax_worst = max(v for k, v in scores.items() if k.startswith("SARIMAX"))
    assert sarimax_worst < scores["Naive"]
    assert sarimax_best < scores["SeasonalNaive(24)"]
    # The full stack stays competitive with the best single increment.
    assert scores["SARIMAX + Exog + Fourier"] <= sarimax_best * 1.5
