"""Tests for the monitoring agent and its fault model."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.agent import FaultModel, MonitoringAgent
from repro.workloads import OlapExperiment


@pytest.fixture(scope="module")
def small_run():
    return OlapExperiment(days=3.0).build().run(days=3.0, seed=1)


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(DataError):
            FaultModel(miss_probability=1.0)
        with pytest.raises(DataError):
            FaultModel(outage_probability_per_day=2.0)
        with pytest.raises(DataError):
            FaultModel(outage_duration_polls=0)

    def test_miss_rate_approximate(self):
        model = FaultModel(miss_probability=0.1, outage_probability_per_day=0.0)
        mask = model.dropped_mask(10_000, 96, np.random.default_rng(0))
        assert 0.08 < mask.mean() < 0.12

    def test_outages_create_runs(self):
        model = FaultModel(
            miss_probability=0.0,
            outage_probability_per_day=1.0,
            outage_duration_polls=8,
        )
        mask = model.dropped_mask(96 * 5, 96, np.random.default_rng(1))
        # Every day has one 8-poll outage.
        assert mask.sum() >= 5 * 8 - 8  # last outage may clip the boundary

    def test_perfect_when_zero(self):
        model = FaultModel(miss_probability=0.0, outage_probability_per_day=0.0)
        mask = model.dropped_mask(1000, 96, np.random.default_rng(2))
        assert mask.sum() == 0


class TestMonitoringAgent:
    def test_perfect_agent_polls_everything(self, small_run):
        agent = MonitoringAgent(fault_model=None)
        samples = agent.poll_run(small_run)
        expected = len(small_run.instances) * 3 * small_run.n_samples
        assert len(samples) == expected

    def test_faulty_agent_drops_some(self, small_run):
        agent = MonitoringAgent(fault_model=FaultModel(miss_probability=0.05))
        samples = agent.poll_run(small_run)
        perfect = len(small_run.instances) * 3 * small_run.n_samples
        assert len(samples) < perfect

    def test_samples_carry_identity(self, small_run):
        agent = MonitoringAgent(fault_model=None)
        samples = agent.poll_run(small_run)
        instances = {s.instance for s in samples}
        metrics = {s.metric for s in samples}
        assert instances == {"cdbm011", "cdbm012"}
        assert metrics == {"cpu", "memory", "logical_iops"}

    def test_deterministic_fault_injection(self, small_run):
        a = MonitoringAgent(fault_model=FaultModel(), seed=5).poll_run(small_run)
        b = MonitoringAgent(fault_model=FaultModel(), seed=5).poll_run(small_run)
        assert len(a) == len(b)

    def test_poll_series(self):
        ts = TimeSeries(np.arange(100.0), Frequency.MINUTE_15)
        samples = MonitoringAgent(fault_model=None).poll_series("i", "cpu", ts)
        assert len(samples) == 100
        assert samples[0].value == 0.0
        assert samples[1].timestamp - samples[0].timestamp == 900.0
