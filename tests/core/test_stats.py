"""Tests for ACF, PACF, Ljung–Box and the correlogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import acf, correlogram, ljung_box, pacf
from repro.exceptions import DataError


def ar1(phi: float, n: int = 2000, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = phi * x[t - 1] + rng.normal()
    return x[200:]


class TestAcf:
    def test_lag_zero_is_one(self):
        assert acf(ar1(0.5), nlags=5)[0] == pytest.approx(1.0)

    def test_ar1_geometric_decay(self):
        rho = acf(ar1(0.7), nlags=3)
        assert rho[1] == pytest.approx(0.7, abs=0.08)
        assert rho[2] == pytest.approx(0.49, abs=0.1)

    def test_white_noise_small(self, white_noise):
        rho = acf(white_noise, nlags=10)
        assert np.all(np.abs(rho[1:]) < 0.15)

    def test_seasonal_peak(self, daily_series):
        rho = acf(daily_series, nlags=30)
        assert rho[24] > 0.7

    def test_constant_series(self):
        rho = acf(np.ones(50), nlags=5)
        assert rho[0] == 1.0
        assert np.all(rho[1:] == 0.0)

    def test_nlags_clamped_to_length(self):
        assert acf(np.arange(10.0), nlags=50).size == 10

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            acf(np.array([1.0, np.nan, 2.0]))

    def test_rejects_too_short(self):
        with pytest.raises(DataError):
            acf(np.array([1.0]))

    def test_bounds(self):
        rho = acf(ar1(0.9), nlags=30)
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)


class TestPacf:
    def test_ar1_cuts_off_after_lag1(self):
        p = pacf(ar1(0.7), nlags=6)
        assert p[1] == pytest.approx(0.7, abs=0.08)
        assert np.all(np.abs(p[2:]) < 0.1)

    def test_ar2_cuts_off_after_lag2(self):
        rng = np.random.default_rng(1)
        n = 3000
        x = np.zeros(n)
        for t in range(2, n):
            x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + rng.normal()
        p = pacf(x[300:], nlags=6)
        assert abs(p[2]) > 0.2
        assert np.all(np.abs(p[3:]) < 0.1)

    def test_lag_zero_is_one(self):
        assert pacf(ar1(0.3), nlags=3)[0] == 1.0

    def test_values_bounded(self):
        p = pacf(ar1(0.95), nlags=25)
        assert np.all(np.abs(p) <= 1.0)

    def test_accepts_timeseries(self, daily_series):
        assert pacf(daily_series, nlags=10).size == 11


class TestLjungBox:
    def test_white_noise_not_rejected(self, white_noise):
        result = ljung_box(white_noise, lags=10)
        assert result.is_white_noise()

    def test_autocorrelated_rejected(self):
        result = ljung_box(ar1(0.8), lags=10)
        assert not result.is_white_noise()
        assert result.p_value < 0.01

    def test_df_adjusted_for_fitted_params(self, white_noise):
        a = ljung_box(white_noise, lags=10, n_fitted_params=0)
        b = ljung_box(white_noise, lags=10, n_fitted_params=4)
        assert b.df == a.df - 4

    def test_invalid_lags(self):
        with pytest.raises(DataError):
            ljung_box(np.array([1.0, 2.0]), lags=0)


class TestCorrelogram:
    def test_confidence_band_formula(self, white_noise):
        gram = correlogram(white_noise, nlags=20, alpha=0.05)
        assert gram.confidence == pytest.approx(1.96 / np.sqrt(len(white_noise)), abs=1e-3)

    def test_white_noise_few_significant(self, white_noise):
        gram = correlogram(white_noise, nlags=20)
        # 5 % false positive rate → expect ~1 of 20, allow a little slack.
        assert len(gram.significant_acf_lags()) <= 3

    def test_seasonal_lag_flagged(self, daily_series):
        gram = correlogram(daily_series, nlags=30)
        assert 24 in gram.significant_acf_lags()

    def test_ar1_pacf_lag1_flagged(self):
        gram = correlogram(ar1(0.6), nlags=20)
        assert 1 in gram.significant_pacf_lags()


class TestStatsProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_acf_of_any_series_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=100) * rng.uniform(0.1, 100)
        rho = acf(x, nlags=20)
        assert rho[0] == pytest.approx(1.0)
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)

    @given(st.floats(min_value=-0.9, max_value=0.9), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_acf_scale_invariant(self, phi, seed):
        x = ar1(phi, n=800, seed=seed)
        assert np.allclose(acf(x, 10), acf(x * 7.3, 10), atol=1e-10)
