#!/usr/bin/env python
"""A tour of the self-selection machinery on four workload shapes.

Section 8 lists the production scenarios the approach is applied to —
web-transaction groups, application containers, storage layers. This
example runs the Figure 4 pipeline over four structurally different
synthetic workloads and shows what the pipeline *learned* about each
(stationarity, seasonality, shocks) and which model it picked, including
the paper's rule that a system in fault (≤ 3 crashes) does not get its
crashes learned as behaviour.

Run:  python examples/model_selection_tour.py
"""

from repro import AutoConfig, auto_select
from repro.core import adf_test, detect_seasonalities
from repro.reporting import Table
from repro.workloads import (
    batch_etl,
    unstable_system,
    web_transactions,
    weekly_business_app,
)

WORKLOADS = [
    ("web transactions", web_transactions()),
    ("batch ETL", batch_etl()),
    ("weekly business app", weekly_business_app()),
    ("unstable system", unstable_system()),
]

table = Table(
    ["Workload", "Stationary?", "Seasons", "Shock regressors", "Selected model", "Test RMSE"],
    title="Self-selection across workload shapes (Figure 4 pipeline)",
)

for name, series in WORKLOADS:
    adf = adf_test(series)
    seasons = detect_seasonalities(series, candidates=[24, 168])
    outcome = auto_select(series, config=AutoConfig(n_jobs=0))
    n_shocks = outcome.shock_calendar.n_columns if outcome.shock_calendar else 0
    table.add_row(
        [
            name,
            "yes" if adf.stationary else "no",
            ",".join(str(p) for p in seasons.periods) or "-",
            str(n_shocks),
            outcome.model.label(),
            outcome.test_rmse,
        ]
    )

table.print()

print(
    "\nNote the last row: the unstable system's three crashes stay faults "
    "(0 shock regressors) per the paper's >3-occurrence rule."
)
