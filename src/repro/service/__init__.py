"""Service layer: the capacity-planning facade and advisory functions."""

from .estate import (
    EstateEntry,
    EstatePlanner,
    EstateReport,
    WorkloadKey,
    WorkloadStatus,
)
from .planner import CapacityPlanner, PlannerEntry
from .selection_cache import SelectionCache
from .sizing import (
    CapacityRecommendation,
    ShapeRecommendation,
    overprovision_ratio,
    recommend_capacity,
    recommend_shape,
)
from .thresholds import (
    BreachPrediction,
    BreachSeverity,
    breach_probability_arrays,
    predict_breach,
)

__all__ = [
    "CapacityPlanner",
    "PlannerEntry",
    "SelectionCache",
    "EstatePlanner",
    "EstateReport",
    "EstateEntry",
    "WorkloadKey",
    "WorkloadStatus",
    "BreachPrediction",
    "BreachSeverity",
    "predict_breach",
    "breach_probability_arrays",
    "CapacityRecommendation",
    "ShapeRecommendation",
    "recommend_capacity",
    "recommend_shape",
    "overprovision_ratio",
]
