"""SARIMAX: seasonal ARIMA with exogenous regressors and Fourier terms.

Section 4.2 of the paper extends SARIMA with *exogenous variables* — shock
indicators for backups, batch jobs and fail-overs — and Section 4.4 adds
*Fourier terms* as further external regressors to capture multiple
seasonality (a daily cycle inside a weekly cycle). Both reduce to the same
mechanism implemented here: regression with ARMA errors,

    y_t = X_t β + u_t,   φ(B)Φ(B^s)(1−B)^d(1−B^s)^D u_t = θ(B)Θ(B^s) a_t

estimated by iterated feasible GLS: an OLS pass for β, a CSS pass for the
ARMA parameters on the regression residual, then β is re-estimated on
series filtered through the fitted ARMA transfer function (which whitens
the errors), and the loop repeats. Two iterations are ample in practice.

Forecasting adds ``X_future β`` back onto the ARMA forecast of ``u``;
callers must therefore know future regressor values — which is exactly why
the paper restricts exogenous variables to *scheduled/recurring* shocks
(backups every 6 hours) and deterministic Fourier terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import signal

from ..core.fourier import fourier_terms
from ..core.timeseries import TimeSeries
from ..exceptions import DataError, ModelError
from .arima import Arima, ArimaOrder, FittedArima, SeasonalOrder, _polys, _warmup
from .base import Forecast, ForecastModel, check_series
from .polynomials import difference_poly, polymul

__all__ = ["Sarimax", "FittedSarimax"]


def _as_matrix(exog, n_rows: int, what: str) -> np.ndarray:
    X = np.asarray(exog, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise DataError(f"{what} must be 1- or 2-dimensional, got {X.ndim} dims")
    if X.shape[0] != n_rows:
        raise DataError(f"{what} has {X.shape[0]} rows but the series has {n_rows}")
    if not np.isfinite(X).all():
        raise DataError(f"{what} contains non-finite values")
    return X


@dataclass
class FittedSarimax(FittedArima):
    """A fitted SARIMAX: regression coefficients plus the ARMA error model."""

    beta: np.ndarray = field(default=None, repr=False)
    exog_columns: int = 0
    fourier_periods: tuple[float, ...] = ()
    fourier_orders: tuple[int, ...] = ()
    _label_override: str = ""

    def label(self) -> str:
        if self._label_override:
            return f"{self._label_override} {self.order}{self.seasonal}"
        parts = ["SARIMAX"]
        if self.fourier_periods:
            parts.append("FFT")
        if self.exog_columns:
            parts.append("Exogenous")
        suffix = f"{self.order}" if self.seasonal.is_null else f"{self.order}{self.seasonal}"
        return f"{' '.join(parts)} {suffix}"

    def _future_fourier(self, horizon: int) -> np.ndarray | None:
        if not self.fourier_periods:
            return None
        return fourier_terms(
            horizon,
            list(self.fourier_periods),
            list(self.fourier_orders),
            start=len(self.train),
        )

    def forecast(
        self,
        horizon: int,
        alpha: float = 0.05,
        exog_future: np.ndarray | None = None,
    ) -> Forecast:
        """Forecast ``horizon`` steps; future shock indicators go in
        ``exog_future`` (required when the model was fitted with exog)."""
        n_shock_cols = self.exog_columns
        blocks: list[np.ndarray] = []
        if n_shock_cols:
            if exog_future is None:
                raise ModelError(
                    "this SARIMAX was fitted with exogenous regressors; "
                    "pass exog_future with their future values"
                )
            Xf = _as_matrix(exog_future, horizon, "exog_future")
            if Xf.shape[1] != n_shock_cols:
                raise ModelError(
                    f"exog_future has {Xf.shape[1]} columns, model expects {n_shock_cols}"
                )
            blocks.append(Xf)
        elif exog_future is not None and np.asarray(exog_future).size:
            raise ModelError("model was fitted without exogenous regressors")
        fourier_future = self._future_fourier(horizon)
        if fourier_future is not None:
            blocks.append(fourier_future)

        z_train = self.train.values
        if blocks or self.beta.size:
            z_train = z_train - self._design_for_train() @ self.beta
        mean, std = self._forecast_adjusted(z_train, horizon)
        if blocks:
            mean = mean + np.hstack(blocks) @ self.beta
        elif self.beta.size:
            # Fourier-only model still needs the future regression part.
            pass
        return self.make_forecast(mean, std, alpha)

    def _design_for_train(self) -> np.ndarray:
        """Rebuild the training design matrix (exog part is cached)."""
        blocks = []
        if self._train_exog is not None:
            blocks.append(self._train_exog)
        if self.fourier_periods:
            blocks.append(
                fourier_terms(
                    len(self.train),
                    list(self.fourier_periods),
                    list(self.fourier_orders),
                )
            )
        if not blocks:
            return np.empty((len(self.train), 0))
        return np.hstack(blocks)

    # Stored by Sarimax.fit; not a dataclass field to keep repr small.
    _train_exog: np.ndarray | None = None


class Sarimax(ForecastModel):
    """SARIMAX specification: SARIMA + exogenous shocks + Fourier terms.

    Parameters
    ----------
    order / seasonal:
        As for :class:`~repro.models.arima.Arima`.
    fourier_periods / fourier_orders:
        Seasonal periods (e.g. ``[24, 168]``) and harmonic counts
        (e.g. ``[2, 1]``) for the Section 4.4 Fourier regressors. The
        periods here model *additional* seasonality beyond the seasonal
        SARIMA component.
    trend / maxiter:
        As for :class:`~repro.models.arima.Arima`.
    gls_iterations:
        Number of feasible-GLS refinement passes for β (2 is plenty).
    """

    def __init__(
        self,
        order: ArimaOrder | tuple[int, int, int],
        seasonal: SeasonalOrder | tuple[int, int, int, int] | None = None,
        fourier_periods: list[float] | tuple[float, ...] = (),
        fourier_orders: list[int] | tuple[int, ...] = (),
        trend: str = "auto",
        maxiter: int = 200,
        gls_iterations: int = 2,
        label: str = "",
    ) -> None:
        self._arima = Arima(order, seasonal=seasonal, trend=trend, maxiter=maxiter)
        if len(fourier_periods) != len(fourier_orders):
            raise ModelError("fourier_periods and fourier_orders must align")
        self.fourier_periods = tuple(float(p) for p in fourier_periods)
        self.fourier_orders = tuple(int(k) for k in fourier_orders)
        if gls_iterations < 0:
            raise ModelError("gls_iterations must be >= 0")
        self.gls_iterations = gls_iterations
        self.label_override = label

    @property
    def order(self) -> ArimaOrder:
        return self._arima.order

    @property
    def seasonal(self) -> SeasonalOrder:
        return self._arima.seasonal

    @property
    def min_observations(self) -> int:
        return self._arima.min_observations

    # ------------------------------------------------------------------
    def fit(
        self,
        series: TimeSeries,
        exog: np.ndarray | None = None,
        start_params=None,
        **kwargs,
    ) -> FittedSarimax:
        """Estimate on ``series`` with optional shock regressors ``exog``.

        ``exog`` rows align one-to-one with the training series; columns are
        typically 0/1 indicators for scheduled events (backups, batch jobs).
        ``start_params`` warm-starts the inner ARMA optimiser exactly as in
        :meth:`repro.models.arima.Arima.fit` (β is always re-estimated).
        """
        if kwargs:
            raise ModelError(f"unexpected fit options: {sorted(kwargs)}")
        y = check_series(series, self.min_observations)
        n = y.size

        blocks: list[np.ndarray] = []
        X_exog = None
        if exog is not None:
            X_exog = _as_matrix(exog, n, "exog")
            if X_exog.shape[1] == 0:
                # An empty shock calendar produces a 0-column matrix;
                # treat it as "no exogenous regressors".
                X_exog = None
            else:
                blocks.append(X_exog)
        if self.fourier_periods:
            blocks.append(fourier_terms(n, list(self.fourier_periods), list(self.fourier_orders)))
        X = np.hstack(blocks) if blocks else np.empty((n, 0))

        if X.shape[1]:
            rank = np.linalg.matrix_rank(X)
            if rank < X.shape[1]:
                raise ModelError(
                    f"regressor matrix is rank-deficient ({rank} < {X.shape[1]}); "
                    "drop collinear shock indicators or Fourier terms"
                )

        beta = self._ols(y, X)
        inner = None
        for iteration in range(max(1, self.gls_iterations + 1)):
            z = y - X @ beta
            inner = self._arima._fit_adjusted(
                series, z, family="SARIMAX", start_params=start_params
            )
            if X.shape[1] == 0 or iteration == self.gls_iterations:
                break
            beta = self._gls_beta(y, X, inner)

        fitted = FittedSarimax(
            train=series,
            residuals=inner.residuals,
            sigma2=inner.sigma2,
            n_params=inner.n_params + int(X.shape[1]),
            order=inner.order,
            seasonal=inner.seasonal,
            coeffs=inner.coeffs,
            intercept=inner.intercept,
            beta=beta,
            exog_columns=0 if X_exog is None else X_exog.shape[1],
            fourier_periods=self.fourier_periods,
            fourier_orders=self.fourier_orders,
            _label_override=self.label_override,
        )
        fitted._train_exog = X_exog
        fitted.warm_started = inner.warm_started
        return fitted

    @staticmethod
    def _ols(y: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Ridge-stabilised least squares with an internal intercept.

        The intercept column stops indicator regressors from absorbing the
        series mean (the ARMA part models the level); its coefficient is
        discarded. The tiny scale-aware ridge matters for one specific
        degeneracy: a shock indicator that is perfectly periodic at the
        seasonal-difference period is annihilated by the whitening filter,
        leaving a ≈0 column whose OLS coefficient would be arbitrary noise.
        The ridge shrinks such unidentified coefficients to zero, letting
        the seasonal component absorb the shock instead — the numerically
        sane resolution of an inherently unidentifiable split.
        """
        if X.shape[1] == 0:
            return np.empty(0)
        n, k = X.shape
        X_full = np.column_stack([np.ones(n), X])
        scale = max(float(np.mean(np.sum(X_full**2, axis=0))), 1.0)
        lam = 1e-6 * scale
        augmented_X = np.vstack([X_full, np.sqrt(lam) * np.eye(k + 1)])
        augmented_y = np.concatenate([y, np.zeros(k + 1)])
        beta, *_ = np.linalg.lstsq(augmented_X, augmented_y, rcond=None)
        return beta[1:]

    def _gls_beta(self, y: np.ndarray, X: np.ndarray, inner: FittedArima) -> np.ndarray:
        """Feasible-GLS β: whiten both sides with the fitted ARMA filter."""
        spec = inner._spec()
        ar_full, ma_full = _polys(spec, inner.coeffs)
        diff = difference_poly(inner.order.d, inner.seasonal.D, inner.seasonal.F)
        whiten = polymul(ar_full, diff)
        y_w = signal.lfilter(whiten, ma_full, y)
        X_w = signal.lfilter(whiten, ma_full, X, axis=0)
        skip = min(whiten.size - 1 + _warmup(spec), y.size // 3)
        return self._ols(y_w[skip:], X_w[skip:])
