"""The ``faults`` telemetry block: RunTrace plumbing and surface rendering."""

from repro.agent.agent import AgentSample
from repro.agent.repository import MetricsRepository
from repro.engine.executor import ExecutionPolicy, SerialExecutor
from repro.engine.telemetry import RunTrace
from repro.faults.plan import FaultInjector, FaultKind, FaultPlan, FaultRule
from repro.service.planner import CapacityPlanner
from repro.stream.runtime import StreamConfig, StreamRuntime


def samples(n=6):
    return [
        AgentSample(instance="db1", metric="cpu", timestamp=900.0 * i, value=12.0)
        for i in range(n)
    ]


class TestRunTraceFaults:
    def test_fault_and_absorb(self):
        trace = RunTrace()
        trace.fault("degraded_advisories")
        trace.fault("degraded_advisories", 2)
        trace.absorb_faults({"tasks_retried": 4})
        trace.absorb_faults(None)  # tolerated: nothing to fold
        assert trace.faults == {"degraded_advisories": 3, "tasks_retried": 4}

    def test_merge_folds_fault_blocks(self):
        one, two = RunTrace(), RunTrace()
        one.fault("faults_injected", 2)
        two.fault("faults_injected", 3)
        two.fault("pools_rebuilt")
        one.merge(two)
        assert one.faults == {"faults_injected": 5, "pools_rebuilt": 1}

    def test_summary_renders_faults_line(self):
        trace = RunTrace()
        assert not any("faults:" in line for line in trace.summary_lines())
        trace.fault("fault_drop_sample", 7)
        trace.fault("agent_poll_retries", 2)
        (line,) = [ln for ln in trace.summary_lines() if "faults:" in ln]
        assert "agent_poll_retries=2" in line
        assert "fault_drop_sample=7" in line


class TestPlannerTelemetry:
    def test_no_activity_is_none(self):
        assert CapacityPlanner().telemetry() is None

    def test_repository_retry_counters_surface(self):
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule(
                        site="repository.write",
                        kind=FaultKind.TRANSIENT_ERROR,
                        every=1,
                        limit=1,
                    ),
                )
            )
        )
        repo = MetricsRepository(injector=injector)
        planner = CapacityPlanner(repository=repo)
        planner.ingest(samples())
        trace = planner.telemetry()
        assert trace is not None
        assert trace.faults["repository_write_retries"] == 1
        assert trace.faults["repository_write_recoveries"] == 1
        repo.close()


class TestRuntimeTelemetry:
    def test_injector_counters_fold_into_the_trace(self):
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule(
                        site="ingest.deliver", kind=FaultKind.DROP_SAMPLE, every=1
                    ),
                )
            )
        )
        runtime = StreamRuntime(config=StreamConfig(), injector=injector)
        assert not any("faults:" in ln for ln in runtime.summary_lines())
        injector.on_sample("ingest.deliver", samples(1)[0])
        assert runtime.telemetry().faults["fault_drop_sample"] == 1
        (line,) = [ln for ln in runtime.summary_lines() if "faults:" in ln]
        assert "fault_drop_sample=1" in line

    def test_executor_resilience_counters_fold_in(self):
        def fails_once(x):
            raise RuntimeError("down")

        executor = SerialExecutor(policy=ExecutionPolicy(task_retries=1))
        executor.run(fails_once, [1])
        runtime = StreamRuntime(config=StreamConfig(), executor=executor)
        faults = runtime.telemetry().faults
        assert faults["tasks_retried"] == 1
        assert faults["task_retries_exhausted"] == 1
