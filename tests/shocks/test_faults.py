"""Tests for crash/fault handling (the paper's conclusion rules)."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.shocks import (
    FaultPolicy,
    FaultVerdict,
    detect_faults,
    discard_faults,
)


def base_series(n=720, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 60.0 + 20.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.5, n)


class TestDetectFaults:
    def test_crash_found(self):
        y = base_series()
        y[100:103] = 5.0
        episodes = detect_faults(TimeSeries(y), period=24)
        assert len(episodes) == 1
        assert episodes[0].start_index == 100
        assert episodes[0].length == 3
        assert episodes[0].mean_magnitude < -30

    def test_clean_series_no_faults(self):
        assert detect_faults(TimeSeries(base_series()), period=24) == []

    def test_noise_excursions_not_faults(self):
        # Pure noise at 3.5-4 sigma must not be classed as a crash.
        rng = np.random.default_rng(5)
        y = 60 + rng.normal(0, 2.0, 2000)
        episodes = detect_faults(TimeSeries(y), period=None)
        assert episodes == []

    def test_scheduled_stop_is_behaviour_not_fault(self):
        y = base_series()
        t = np.arange(y.size)
        y[(t % 24) == 3] -= 45.0  # nightly maintenance stop, 30 occurrences
        assert detect_faults(TimeSeries(y), period=24) == []

    def test_positive_spikes_ignored(self):
        y = base_series()
        y[200:203] += 80.0  # a backup-like spike is a shock, not a fault
        assert detect_faults(TimeSeries(y), period=24) == []


class TestDiscardFaults:
    def test_stable_verdict(self):
        analysis = discard_faults(TimeSeries(base_series()), period=24)
        assert analysis.verdict is FaultVerdict.STABLE
        assert analysis.discarded_samples == 0

    def test_occasional_faults_repaired(self):
        y = base_series()
        y[100:103] = 5.0
        y[400:402] = 3.0
        analysis = discard_faults(TimeSeries(y), period=24)
        assert analysis.verdict is FaultVerdict.OCCASIONAL_FAULTS
        assert analysis.discarded_samples == 5
        # The crash hole is filled with plausible values.
        assert analysis.series.values[100:103].min() > 20.0
        assert analysis.series.is_finite()

    def test_in_fault_not_discarded_by_default(self):
        y = base_series()
        for s0 in (50, 150, 260, 380, 500):
            y[s0 : s0 + 2] = 4.0
        analysis = discard_faults(TimeSeries(y), period=24)
        assert analysis.verdict is FaultVerdict.IN_FAULT
        assert analysis.discarded_samples == 0
        assert np.array_equal(analysis.series.values, y)

    def test_manual_override_discard(self):
        y = base_series()
        for s0 in (50, 150, 260, 380, 500):
            y[s0 : s0 + 2] = 4.0
        analysis = discard_faults(
            TimeSeries(y), period=24, policy=FaultPolicy(manual_override="discard")
        )
        assert analysis.discarded_samples == 10
        assert analysis.series.values.min() > 10.0

    def test_manual_override_keep(self):
        y = base_series()
        y[100:103] = 5.0
        analysis = discard_faults(
            TimeSeries(y), period=24, policy=FaultPolicy(manual_override="keep")
        )
        assert analysis.discarded_samples == 0
        assert analysis.series.values[100] == 5.0

    def test_describe(self):
        text = discard_faults(TimeSeries(base_series()), period=24).describe()
        assert "stable" in text


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(DataError):
            FaultPolicy(manual_override="maybe")
        with pytest.raises(DataError):
            FaultPolicy(in_fault_episode_limit=0)
        with pytest.raises(DataError):
            FaultPolicy(min_drop_fraction=1.5)

    def test_episode_limit_configurable(self):
        y = base_series()
        y[100:102] = 4.0
        y[300:302] = 4.0
        strict = discard_faults(
            TimeSeries(y), period=24, policy=FaultPolicy(in_fault_episode_limit=1)
        )
        assert strict.verdict is FaultVerdict.IN_FAULT
        lax = discard_faults(
            TimeSeries(y), period=24, policy=FaultPolicy(in_fault_episode_limit=5)
        )
        assert lax.verdict is FaultVerdict.OCCASIONAL_FAULTS


class TestPipelineInteraction:
    def test_discarding_improves_forecast(self):
        """A crash learned as data pollutes the forecast; discarding fixes it."""
        from repro.core import rmse
        from repro.models import HoltWinters

        y = base_series(n=744, seed=9)
        y[500:506] = 2.0  # a six-hour outage
        series = TimeSeries(y, Frequency.HOURLY)
        train_raw, test = series.split(720)

        repaired = discard_faults(train_raw, period=24).series
        raw_fc = HoltWinters(24).fit(train_raw).forecast(24)
        fixed_fc = HoltWinters(24).fit(repaired).forecast(24)
        assert rmse(test, fixed_fc.mean) <= rmse(test, raw_fc.mean) * 1.05
