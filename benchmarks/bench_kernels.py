"""Kernel throughput: compiled recursions vs the pre-PR per-timestep loops.

Every model family's optimiser objective bottoms out in a sequential
recursion; this bench times each extracted kernel against an inlined copy
of the numpy scalar-indexing loop it replaced and reports ns/observation
for every available backend. The acceptance contract:

* the **numpy** backend is no slower than the legacy loop on every
  kernel (it hoists per-step dispatch, so it is usually several times
  faster);
* the **numba** backend, when the ``perf`` extra is installed, is at
  least 3x faster than the legacy loop on the two optimiser-dominating
  kernels (the HES recursion and the TBATS filter). When numba is
  absent the numba metrics are recorded as ``null`` and the assertion is
  skipped — the fallback path is exactly what is being measured then.

Also records one end-to-end ``auto_select`` wall time on the active
backend, with the trace's kernel counters, so the JSON shows what the
kernels cost inside the real pipeline rather than in isolation.

Results land in ``benchmarks/output/BENCH_kernels.json``. Set
``REPRO_REDUCED_GRID=1`` (the CI smoke mode) for a seconds-scale run.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.models import kernels
from repro.reporting import Table
from repro.selection import AutoConfig, auto_select

from .conftest import output_path

REDUCED = os.environ.get("REPRO_REDUCED_GRID", "") not in ("", "0")

BENCH_JSON = "BENCH_kernels.json"

#: Best-of-N timing repeats; min is robust to scheduler noise.
REPEATS = 3 if REDUCED else 7

#: The kernels whose wall time dominates optimiser objectives; these carry
#: the 3x numba acceptance bar.
OBJECTIVE_KERNELS = ("ets_recursion", "tbats_filter")


def _write_bench_json(section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench output."""
    path = output_path(BENCH_JSON)
    data = {}
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _best_of(fn, *args, repeats: int | None = None) -> float:
    best = np.inf
    for __ in range(repeats if repeats is not None else REPEATS):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# Legacy loops: inlined copies of the pre-kernel per-timestep code, which
# iterated with scalar ndarray indexing and per-step temporaries.
# ---------------------------------------------------------------------------
def _legacy_ets_recursion(y, use_trend, seasonal_mode, period, alpha, beta, gamma, phi, level0, trend0, seasonal0):
    n = y.size
    level, trend = level0, trend0
    seas = seasonal0.copy()
    errors = np.empty(n)
    for t in range(n):
        damped = phi * trend if use_trend else 0.0
        s_idx = t % period
        if seasonal_mode == 1:
            fitted = level + damped + seas[s_idx]
        elif seasonal_mode == 2:
            fitted = (level + damped) * seas[s_idx]
        else:
            fitted = level + damped
        errors[t] = y[t] - fitted
        prev = level
        if seasonal_mode == 1:
            level = alpha * (y[t] - seas[s_idx]) + (1 - alpha) * (prev + damped)
            seas[s_idx] = gamma * (y[t] - prev - damped) + (1 - gamma) * seas[s_idx]
        elif seasonal_mode == 2:
            denom = seas[s_idx] if abs(seas[s_idx]) > 1e-12 else 1e-12
            level = alpha * (y[t] / denom) + (1 - alpha) * (prev + damped)
            base = prev + damped
            seas[s_idx] = gamma * (y[t] / (base if abs(base) > 1e-12 else 1e-12)) + (1 - gamma) * seas[s_idx]
        else:
            level = alpha * y[t] + (1 - alpha) * (prev + damped)
        if use_trend:
            trend = beta * (level - prev) + (1 - beta) * damped
    return errors, level, trend, seas


def _legacy_tbats_filter(y, alpha, beta, phi, use_trend, rot, gamma_vec, ar, ma, level0, trend0, z0, d0, e0):
    p, q = ar.size, ma.size
    level, trend = level0, trend0
    z = z0.copy()
    d_hist = d0.copy()
    e_hist = e0.copy()
    innovations = np.empty(y.size)
    for t in range(y.size):
        seasonal = float(np.sum(z.real)) if z.size else 0.0
        d_pred = float(ar @ d_hist) if p else 0.0
        if q:
            d_pred += float(ma @ e_hist)
        e = y[t] - (level + phi * trend + seasonal + d_pred)
        d = d_pred + e
        innovations[t] = e
        prev = level
        level = prev + phi * trend + alpha * d
        if use_trend:
            trend = phi * trend + beta * d
        if z.size:
            z = rot * z + gamma_vec * d
        if p:
            d_hist = np.roll(d_hist, 1)
            d_hist[0] = d
        if q:
            e_hist = np.roll(e_hist, 1)
            e_hist[0] = e
    return innovations, level, trend, z, d_hist, e_hist


def _legacy_kalman_filter(y, T, RRt, P0):
    m = T.shape[0]
    a = np.zeros(m)
    P = P0.copy()
    sum_sq = 0.0
    sum_logF = 0.0
    for t in range(y.size):
        F = P[0, 0]
        if not np.isfinite(F) or F <= 1e-300:
            return np.inf, np.inf, False
        v = y[t] - a[0]
        sum_sq += v * v / F
        sum_logF += np.log(F)
        K = P[:, 0] / F
        a = a + K * v
        P = P - np.outer(K, P[0, :])
        a = T @ a
        P = T @ P @ T.T + RRt
        P = 0.5 * (P + P.T)
    return sum_sq, sum_logF, True


def _legacy_arma_forecast(full_ar, ma_full, history, recent_e, c_star, horizon):
    L = full_ar.size - 1
    q_full = ma_full.size - 1
    mean = np.empty(horizon)
    buf = np.concatenate([history, mean])
    for h in range(horizon):
        acc = c_star
        for k in range(1, L + 1):
            acc -= full_ar[k] * buf[L + h - k]
        for j in range(h + 1, q_full + 1):
            idx = recent_e.size + h - j
            if 0 <= idx < recent_e.size:
                acc += ma_full[j] * recent_e[idx]
        buf[L + h] = acc
        mean[h] = acc
    return mean


def _legacy_bootstrap_deviations(psi, shocks):
    n_paths, horizon = shocks.shape
    deviations = np.empty((n_paths, horizon))
    for h in range(horizon):
        deviations[:, h] = shocks[:, : h + 1] @ psi[: h + 1][::-1]
    return deviations


def _legacy_ets_mul_paths(level0, trend0, seasonal0, alpha, beta, gamma, phi, use_trend, period, start_index, shocks):
    n_paths, horizon = shocks.shape
    sims = np.empty((n_paths, horizon))
    for i in range(n_paths):
        level, trend, seas = level0, trend0, seasonal0.copy()
        for h in range(horizon):
            damped = phi * trend if use_trend else 0.0
            s_idx = (start_index + h) % period
            value = (level + damped) * seas[s_idx] + shocks[i, h]
            prev = level
            denom = seas[s_idx] if abs(seas[s_idx]) > 1e-12 else 1e-12
            level = alpha * (value / denom) + (1 - alpha) * (prev + damped)
            base = prev + damped
            seas[s_idx] = gamma * (value / (base if abs(base) > 1e-12 else 1e-12)) + (1 - gamma) * seas[s_idx]
            if use_trend:
                trend = beta * (level - prev) + (1 - beta) * damped
            sims[i, h] = value
    return sims


def _legacy_tbats_paths(alpha, beta, phi, use_trend, rot, gamma_vec, ar, ma, level0, trend0, z0, d0, e0, shocks):
    n_paths, horizon = shocks.shape
    out = np.empty((n_paths, horizon))
    for i in range(n_paths):
        level, trend = level0, trend0
        z = z0.copy()
        d_hist = d0.copy()
        e_hist = e0.copy()
        for h in range(horizon):
            seasonal = float(np.sum(z.real)) if z.size else 0.0
            d_pred = float(ar @ d_hist) if ar.size else 0.0
            if ma.size:
                d_pred += float(ma @ e_hist)
            e = shocks[i, h]
            d = d_pred + e
            out[i, h] = level + phi * trend + seasonal + d
            prev = level
            level = prev + phi * trend + alpha * d
            if use_trend:
                trend = phi * trend + beta * d
            if z.size:
                z = rot * z + gamma_vec * d
            if ar.size:
                d_hist = np.roll(d_hist, 1)
                d_hist[0] = d
            if ma.size:
                e_hist = np.roll(e_hist, 1)
                e_hist[0] = e
    return out


# ---------------------------------------------------------------------------
# Workload builders: (legacy_callable, kernel_callable, n_observations)
# ---------------------------------------------------------------------------
def _cases() -> dict:
    n = 600 if REDUCED else 4000
    horizon = 60 if REDUCED else 200
    paths = 100 if REDUCED else 500
    rng = np.random.default_rng(42)
    t = np.arange(n)
    y = 50.0 + 0.02 * t + 8.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.5, n)

    ets = (y, True, 1, 24, 0.3, 0.05, 0.1, 0.97, float(y[:24].mean()), 0.02,
           5.0 * np.sin(2 * np.pi * np.arange(24) / 24))

    k = 5
    lam = 2 * np.pi * np.arange(1, k + 1) / 24.0
    tbats = (y / 10.0, 0.12, 0.02, 0.97, True, np.exp(-1j * lam),
             np.full(k, 0.002 + 0.001j), np.array([0.3, 0.1]), np.array([0.2, 0.05]),
             float(y.mean() / 10.0), 0.01,
             rng.normal(0, 0.5, k) + 1j * rng.normal(0, 0.5, k),
             np.zeros(2), np.zeros(2))

    from repro.models.kalman import arma_state_space, stationary_initialisation

    T, R, __ = arma_state_space(np.array([0.6, -0.2]), np.array([0.3]))
    kal = (y - y.mean(), T, np.outer(R, R), stationary_initialisation(T, R))

    L = 26
    arma = (np.concatenate(([1.0], rng.uniform(-0.02, 0.02, L))),
            np.array([1.0, 0.4, 0.2]), rng.normal(50, 5, L),
            rng.normal(0, 1, 3), 1.1, horizon)

    psi = 0.8 ** np.arange(horizon)
    boot = (psi, rng.normal(0, 2.0, size=(paths, horizon)))

    mul_shocks = rng.normal(0, 1.0, size=(paths, horizon))
    mul = (55.0, 0.1, 1.0 + 0.3 * np.sin(2 * np.pi * np.arange(24) / 24),
           0.3, 0.1, 0.1, 0.97, True, 24, n, mul_shocks)

    tbats_sim = tbats[1:] + (rng.normal(0, 0.5, size=(paths, horizon)),)

    return {
        "ets_recursion": (_legacy_ets_recursion, kernels.ets_recursion, ets, n),
        "ets_mul_paths": (_legacy_ets_mul_paths, kernels.ets_mul_paths, mul, paths * horizon),
        "tbats_filter": (_legacy_tbats_filter, kernels.tbats_filter, tbats, n),
        "tbats_paths": (_legacy_tbats_paths, kernels.tbats_paths, tbats_sim, paths * horizon),
        "kalman_filter": (_legacy_kalman_filter, kernels.kalman_filter, kal, n),
        "arma_forecast": (_legacy_arma_forecast, kernels.arma_forecast, arma, horizon),
        "bootstrap_deviations": (_legacy_bootstrap_deviations, kernels.bootstrap_deviations, boot, paths * horizon),
    }


def test_kernel_throughput_vs_legacy_loops():
    cases = _cases()
    restore = kernels.active_backend()
    rows = {}
    try:
        for name, (legacy, kernel, args, n_obs) in cases.items():
            entry = {"n_obs": n_obs, "legacy_ns_per_obs": None,
                     "numpy_ns_per_obs": None, "numba_ns_per_obs": None}
            entry["legacy_ns_per_obs"] = _best_of(legacy, *args) / n_obs * 1e9
            for backend in kernels.available_backends():
                kernels.set_backend(backend)
                kernels.ensure_warm()  # JIT outside the timed region
                entry[f"{backend}_ns_per_obs"] = _best_of(kernel, *args) / n_obs * 1e9
            rows[name] = entry
    finally:
        kernels.set_backend(restore)
        kernels.ensure_warm()

    table = Table(
        ["Kernel", "n_obs", "legacy ns/obs", "numpy ns/obs", "numba ns/obs", "best speedup"],
        title=f"Kernel throughput (best of {REPEATS})",
    )
    for name, e in rows.items():
        candidates = [v for v in (e["numpy_ns_per_obs"], e["numba_ns_per_obs"]) if v]
        speedup = e["legacy_ns_per_obs"] / min(candidates)
        table.add_row([
            name, str(e["n_obs"]),
            f"{e['legacy_ns_per_obs']:.1f}", f"{e['numpy_ns_per_obs']:.1f}",
            "-" if e["numba_ns_per_obs"] is None else f"{e['numba_ns_per_obs']:.1f}",
            f"{speedup:.2f}x",
        ])
    print()
    table.print()

    _write_bench_json(
        "kernel_throughput",
        {"backend_default": restore, "numba_available": kernels.NUMBA_AVAILABLE,
         "repeats": REPEATS, "reduced": REDUCED, "kernels": rows},
    )

    # NumPy fallback must never regress below the loops it replaced
    # (10 % timing-noise allowance).
    for name, e in rows.items():
        assert e["numpy_ns_per_obs"] <= e["legacy_ns_per_obs"] * 1.10, name
    # The compiled backend carries the 3x bar on the optimiser kernels.
    if kernels.NUMBA_AVAILABLE:
        for name in OBJECTIVE_KERNELS:
            ratio = rows[name]["legacy_ns_per_obs"] / rows[name]["numba_ns_per_obs"]
            assert ratio >= 3.0, f"{name}: numba only {ratio:.2f}x vs legacy"


def test_batched_dispatch_amortisation():
    """Cohort dispatch: one (B, n) kernel call vs B per-key calls.

    The streaming scheduler rolls short blocks (a handful of closed
    windows) across hundreds of keys every tick, so the workload shape
    is many rows x few observations — exactly where per-call dispatch
    overhead dominates and the batched entry points earn their keep.
    The acceptance bar: >= 10x at batch 256 on the numpy backend.
    """
    n = 2  # a realistic incremental-roll block (1-2 closed windows), not a refit
    period = 24
    batches = (1, 64, 256)
    rng = np.random.default_rng(7)

    def _rows(B):
        y = 50.0 + rng.normal(0, 1.5, (B, n))
        alpha = rng.uniform(0.1, 0.5, B)
        beta = rng.uniform(0.01, 0.1, B)
        gamma = rng.uniform(0.05, 0.2, B)
        phi = rng.uniform(0.9, 0.99, B)
        level0 = rng.normal(50, 2, B)
        trend0 = rng.normal(0, 0.05, B)
        seasonal0 = rng.normal(0, 3, (B, period))
        return y, alpha, beta, gamma, phi, level0, trend0, seasonal0

    def _per_key(y, alpha, beta, gamma, phi, level0, trend0, seasonal0):
        for i in range(y.shape[0]):
            kernels.ets_recursion(
                y[i], True, 1, period, alpha[i], beta[i], gamma[i],
                phi[i], level0[i], trend0[i], seasonal0[i],
            )

    def _batched(y, alpha, beta, gamma, phi, level0, trend0, seasonal0):
        kernels.ets_recursion_batch(
            y, True, 1, period, alpha, beta, gamma, phi, level0, trend0, seasonal0
        )

    restore = kernels.active_backend()
    rows = {}
    try:
        kernels.set_backend("numpy")
        kernels.ensure_warm()
        for B in batches:
            args = _rows(B)
            # The whole sweep is sub-millisecond, so extra repeats cost
            # nothing and keep the 10x bar out of scheduler-noise range.
            per_key = _best_of(_per_key, *args, repeats=15)
            batched = _best_of(_batched, *args, repeats=15)
            n_obs = B * n
            rows[str(B)] = {
                "per_key_ns_per_obs": per_key / n_obs * 1e9,
                "batched_ns_per_obs": batched / n_obs * 1e9,
                "speedup": per_key / batched,
            }
    finally:
        kernels.set_backend(restore)
        kernels.ensure_warm()

    table = Table(
        ["Batch", "per-key ns/obs", "batched ns/obs", "speedup"],
        title=f"Cohort dispatch amortisation (ets_recursion, n={n}, numpy)",
    )
    for B in batches:
        e = rows[str(B)]
        table.add_row([
            str(B), f"{e['per_key_ns_per_obs']:.0f}",
            f"{e['batched_ns_per_obs']:.0f}", f"{e['speedup']:.1f}x",
        ])
    print()
    table.print()

    _write_bench_json(
        "batched_dispatch",
        {
            "kernel": "ets_recursion",
            "n_per_row": n,
            "reduced": REDUCED,
            "batches": rows,
            "speedup_256": rows["256"]["speedup"],
        },
    )

    # Batch-of-one must not pay for the batching machinery it bypasses.
    assert rows["1"]["batched_ns_per_obs"] <= rows["1"]["per_key_ns_per_obs"] * 2.0
    # The headline acceptance bar for the cohort scheduler.
    assert rows["256"]["speedup"] >= 10.0, rows["256"]


def test_auto_select_end_to_end_wall_time():
    n = 360 if REDUCED else 1100
    rng = np.random.default_rng(9)
    t = np.arange(n)
    values = 45.0 + 0.03 * t + 7.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.2, n)
    series = TimeSeries(values, Frequency.HOURLY, name="cpu_busy")
    train, test = series.split(n - 24)
    config = AutoConfig(n_jobs=1, max_lag=4 if REDUCED else 8)

    started = time.perf_counter()
    outcome = auto_select(series, config=config, train=train, test=test)
    wall = time.perf_counter() - started
    assert np.isfinite(outcome.test_rmse)

    counters = outcome.trace.counters if outcome.trace else {}
    kernel_counters = {k: v for k, v in counters.items() if k.startswith("kernel_")}
    payload = {
        "backend": kernels.active_backend(),
        "wall_seconds": wall,
        "n_evaluated": outcome.n_evaluated,
        "technique": outcome.technique,
        "kernel_counters": kernel_counters,
    }
    _write_bench_json("auto_select_end_to_end", payload)

    table = Table(
        ["Backend", "Wall (s)", "Candidates", "Kernel dispatches"],
        title="End-to-end auto_select",
    )
    dispatches = int(sum(v for k, v in kernel_counters.items() if k.endswith("_calls")))
    table.add_row([kernels.active_backend(), f"{wall:.2f}", str(outcome.n_evaluated), str(dispatches)])
    print()
    table.print()
    assert dispatches > 0  # the pipeline actually went through the kernels


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q", "-s"])
