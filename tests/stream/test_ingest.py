"""Tests for the ingest bus and the injectable clocks."""

import math

import pytest

from repro.agent import AgentSample
from repro.core import Frequency
from repro.exceptions import DataError
from repro.stream import Clock, IngestBus, ManualClock, SystemClock


def sample(slot, value=1.0, instance="db1", metric="cpu"):
    return AgentSample(instance=instance, metric=metric, timestamp=slot * 900.0, value=value)


class TestClocks:
    def test_manual_clock_advances(self):
        clock = ManualClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.advance(5.0) == 15.0
        assert clock.advance_to(100.0) == 100.0
        # advance_to never rewinds
        assert clock.advance_to(50.0) == 100.0

    def test_manual_clock_rejects_negative_advance(self):
        with pytest.raises(DataError):
            ManualClock().advance(-1.0)

    def test_clock_protocol(self):
        assert isinstance(ManualClock(), Clock)
        assert isinstance(SystemClock(), Clock)


class TestPush:
    def test_accepts_and_buffers(self):
        bus = IngestBus()
        assert bus.push(sample(0)) is True
        assert bus.push(sample(1)) is True
        assert bus.buffered == 2
        assert bus.counters["samples_accepted"] == 2
        assert bus.keys() == [("db1", "cpu")]

    def test_duplicate_dropped_first_wins(self):
        bus = IngestBus()
        bus.push(sample(3, value=10.0))
        assert bus.push(sample(3, value=99.0)) is False
        assert bus.counters["samples_duplicate"] == 1
        assert bus.buffer("db1", "cpu").slots[3] == 10.0

    def test_out_of_order_accepted_and_counted(self):
        bus = IngestBus()
        bus.push(sample(5))
        assert bus.push(sample(2)) is True
        assert bus.counters["samples_out_of_order"] == 1
        assert bus.buffer("db1", "cpu").min_slot == 2

    def test_nonfinite_rejected(self):
        bus = IngestBus()
        assert bus.push(sample(0, value=float("nan"))) is False
        assert bus.push(sample(1, value=float("inf"))) is False
        assert bus.counters["samples_nonfinite"] == 2
        assert bus.buffered == 0

    def test_timestamp_snapped_to_grid(self):
        bus = IngestBus()
        bus.push(AgentSample("db1", "cpu", timestamp=905.0, value=1.0))
        assert 1 in bus.buffer("db1", "cpu").slots

    def test_keys_are_isolated(self):
        bus = IngestBus()
        bus.push(sample(0, instance="db1"))
        bus.push(sample(0, instance="db2"))
        bus.push(sample(0, metric="memory"))
        assert len(bus.keys()) == 3
        with pytest.raises(DataError):
            bus.buffer("db9", "cpu")


class TestBackpressure:
    def test_push_rejected_at_capacity(self):
        bus = IngestBus(capacity=3)
        assert bus.push_many([sample(i) for i in range(5)]) == 3
        assert bus.counters["samples_rejected_backpressure"] == 2
        assert bus.buffered == 3

    def test_consume_releases_capacity(self):
        bus = IngestBus(capacity=2)
        bus.push_many([sample(0), sample(1), sample(2)])
        assert bus.buffered == 2
        bus.consume(("db1", "cpu"), upto_slot=2)
        assert bus.buffered == 0
        assert bus.push(sample(2)) is True

    def test_invalid_capacity_rejected(self):
        with pytest.raises(DataError):
            IngestBus(capacity=0)


class TestWatermarks:
    def test_watermark_follows_newest_sample(self):
        bus = IngestBus(allowed_lateness=900.0)
        assert bus.watermark("db1", "cpu") is None
        bus.push(sample(4))
        assert bus.watermark("db1", "cpu") == 4 * 900.0 - 900.0

    def test_watermark_never_regresses_on_late_sample(self):
        bus = IngestBus(allowed_lateness=0.0)
        bus.push(sample(8))
        bus.push(sample(2))  # late but in-budget: buffered, watermark unmoved
        assert bus.watermark("db1", "cpu") == 8 * 900.0

    def test_infinite_lateness_never_advances(self):
        bus = IngestBus(allowed_lateness=math.inf)
        bus.push(sample(1000))
        assert bus.watermark("db1", "cpu") == -math.inf

    def test_negative_lateness_rejected(self):
        with pytest.raises(DataError):
            IngestBus(allowed_lateness=-1.0)


class TestLateDrops:
    def test_sample_below_frontier_dropped(self):
        bus = IngestBus()
        bus.push_many([sample(0), sample(1), sample(2), sample(3)])
        bus.consume(("db1", "cpu"), upto_slot=4)  # first hour finalised
        assert bus.push(sample(2, value=7.0)) is False
        assert bus.counters["samples_late_dropped"] == 1

    def test_consume_takes_only_below_limit(self):
        bus = IngestBus()
        bus.push_many([sample(i) for i in range(6)])
        taken = bus.consume(("db1", "cpu"), upto_slot=4)
        assert sorted(taken) == [0, 1, 2, 3]
        assert sorted(bus.buffer("db1", "cpu").slots) == [4, 5]


class TestHigherFrequencies:
    def test_hourly_polling_grid(self):
        bus = IngestBus(raw_frequency=Frequency.HOURLY)
        bus.push(AgentSample("db1", "cpu", timestamp=3600.0, value=2.0))
        assert 1 in bus.buffer("db1", "cpu").slots
