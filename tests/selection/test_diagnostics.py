"""Tests for residual adequacy diagnostics."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.models import Arima, Naive, SeasonalNaive
from repro.selection.diagnostics import diagnose_residuals, jarque_bera


def seasonal_ts(n=800, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return TimeSeries(
        50 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, n),
        Frequency.HOURLY,
    )


class TestJarqueBera:
    def test_normal_sample_passes(self):
        rng = np.random.default_rng(1)
        __, p = jarque_bera(rng.normal(0, 1, 2000))
        assert p > 0.05

    def test_heavy_tails_fail(self):
        rng = np.random.default_rng(2)
        __, p = jarque_bera(rng.standard_t(df=2, size=2000))
        assert p < 0.01

    def test_skewed_sample_fails(self):
        rng = np.random.default_rng(3)
        __, p = jarque_bera(rng.exponential(1.0, 2000))
        assert p < 0.01

    def test_constant_sample(self):
        jb, p = jarque_bera(np.full(50, 3.0))
        assert jb == 0.0 and p == 1.0

    def test_too_short(self):
        with pytest.raises(DataError):
            jarque_bera(np.arange(5.0))


class TestDiagnoseResiduals:
    def test_well_specified_model_adequate(self):
        ts = seasonal_ts()
        fitted = Arima((1, 0, 1), seasonal=(0, 1, 1, 24)).fit(ts)
        report = diagnose_residuals(fitted, period=24)
        assert report.white_noise
        assert not report.seasonal_acf_significant
        assert report.adequate

    def test_underspecified_model_flagged(self):
        # Naive on strongly seasonal data leaves blatant autocorrelation.
        ts = seasonal_ts()
        fitted = Naive().fit(ts)
        report = diagnose_residuals(fitted, period=24)
        assert not report.white_noise
        assert not report.adequate

    def test_missing_seasonality_flagged_at_seasonal_lag(self):
        ts = seasonal_ts()
        fitted = Arima((1, 1, 1)).fit(ts)  # no seasonal component
        report = diagnose_residuals(fitted, period=24)
        assert report.seasonal_acf_significant

    def test_shocky_residuals_fail_normality(self):
        rng = np.random.default_rng(4)
        t = np.arange(800)
        y = 50 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 800)
        # Irregular (aperiodic) spikes that no seasonal structure absorbs
        # leave heavy-tailed residuals.
        spike_at = rng.choice(800, size=25, replace=False)
        y[spike_at] += 15.0
        fitted = SeasonalNaive(24).fit(TimeSeries(y))
        report = diagnose_residuals(fitted, period=24)
        assert report.jarque_bera_p < 0.05

    def test_describe_readable(self):
        fitted = Arima((1, 0, 1), seasonal=(0, 1, 1, 24)).fit(seasonal_ts())
        text = diagnose_residuals(fitted, period=24).describe()
        assert "LB p=" in text and "JB p=" in text

    def test_too_few_residuals(self):
        fitted = Naive().fit(TimeSeries(np.arange(8.0)))
        with pytest.raises(DataError):
            diagnose_residuals(fitted)
