"""Tests for the cluster simulation and the two paper experiments."""

import numpy as np
import pytest

from repro.core import Frequency, detect_seasonalities, seasonal_strength, trend_strength
from repro.exceptions import DataError
from repro.shocks import build_shock_calendar
from repro.workloads import (
    BackupPolicy,
    ClusteredDatabase,
    ConnectionBalancer,
    DatabaseInstance,
    OLAP_PROFILE,
    OltpExperiment,
    UserPopulation,
    generate_olap_run,
    generate_oltp_run,
)


@pytest.fixture(scope="module")
def olap_run():
    return generate_olap_run()


@pytest.fixture(scope="module")
def oltp_run():
    return generate_oltp_run()


class TestBackupPolicy:
    def test_nightly_schedule(self):
        policy = BackupPolicy(every_hours=24.0, at_hour=2.0, duration_hours=1.0)
        t = np.arange(0, 2 * 86400.0, 3600.0)
        active = policy.active(t)
        assert active[2] == 1.0 and active[26] == 1.0
        assert active.sum() == 2.0

    def test_six_hourly(self):
        policy = BackupPolicy(every_hours=6.0, duration_hours=1.0)
        t = np.arange(0, 86400.0, 3600.0)
        assert policy.active(t).sum() == 4.0

    def test_validation(self):
        with pytest.raises(DataError):
            BackupPolicy(every_hours=0.0)


class TestConnectionBalancer:
    def test_even_split_sums_to_total(self):
        balancer = ConnectionBalancer(n_nodes=2, imbalance_cv=0.05)
        sessions = np.full(100, 1000.0)
        parts = balancer.split(sessions, np.random.default_rng(0))
        total = parts[0] + parts[1]
        assert np.allclose(total, 1000.0)
        assert abs(parts[0].mean() - 500.0) < 25.0

    def test_weighted_split(self):
        balancer = ConnectionBalancer(n_nodes=2, weights=(3.0, 1.0), imbalance_cv=0.0)
        parts = balancer.split(np.full(10, 100.0), np.random.default_rng(0))
        assert np.allclose(parts[0], 75.0)
        assert np.allclose(parts[1], 25.0)

    def test_validation(self):
        with pytest.raises(DataError):
            ConnectionBalancer(n_nodes=0)
        with pytest.raises(DataError):
            ConnectionBalancer(n_nodes=2, weights=(1.0,))


class TestClusteredDatabase:
    def _cluster(self, n_nodes=2, backups=()):
        nodes = [
            DatabaseInstance(name=f"node{i}", profile=OLAP_PROFILE)
            for i in range(n_nodes)
        ]
        return ClusteredDatabase(
            nodes=nodes,
            population=UserPopulation(base_users=40.0),
            backups=list(backups),
        )

    def test_run_produces_all_instances(self):
        run = self._cluster().run(days=2.0, seed=1)
        assert set(run.instances) == {"node0", "node1"}
        assert run.frequency is Frequency.MINUTE_15
        assert run.n_samples == 2 * 96

    def test_deterministic_given_seed(self):
        a = self._cluster().run(days=1.0, seed=9)
        b = self._cluster().run(days=1.0, seed=9)
        assert np.array_equal(
            a.instances["node0"].cpu.values, b.instances["node0"].cpu.values
        )

    def test_different_seeds_differ(self):
        a = self._cluster().run(days=1.0, seed=1)
        b = self._cluster().run(days=1.0, seed=2)
        assert not np.array_equal(
            a.instances["node0"].cpu.values, b.instances["node0"].cpu.values
        )

    def test_backup_only_on_pinned_node(self):
        backup = BackupPolicy(every_hours=24.0, at_hour=0.0, duration_hours=1.0, node_index=0)
        run = self._cluster(backups=[backup]).run(days=4.0, seed=3)
        node0 = run.instances["node0"].logical_iops.values
        node1 = run.instances["node1"].logical_iops.values
        # Backup samples on node0 should spike way above node1's.
        assert node0[0] > node1[0] * 1.1

    def test_hourly_aggregation(self):
        run = self._cluster().run(days=2.0, seed=4)
        hourly = run.hourly()
        assert hourly.frequency is Frequency.HOURLY
        assert hourly.n_samples == 48

    def test_validation(self):
        with pytest.raises(DataError):
            ClusteredDatabase(nodes=[], population=UserPopulation(base_users=1.0))
        with pytest.raises(DataError):
            self._cluster().run(days=0.0)
        with pytest.raises(DataError):
            self._cluster().run(days=1.0, step_minutes=30)
        with pytest.raises(DataError):
            ClusteredDatabase(
                nodes=[DatabaseInstance(name="n", profile=OLAP_PROFILE)],
                population=UserPopulation(base_users=1.0),
                backups=[BackupPolicy(node_index=5)],
            )


class TestOlapExperiment:
    """Experiment One must exhibit challenges C1 (seasonality) and C4 (shock)."""

    def test_instances_named_as_paper(self, olap_run):
        assert set(olap_run.instances) == {"cdbm011", "cdbm012"}

    def test_c1_seasonality(self, olap_run):
        cpu = olap_run.instances["cdbm011"].cpu
        assert seasonal_strength(cpu, 24) > 0.8

    def test_c4_backup_shock_on_node1(self, olap_run):
        iops = olap_run.instances["cdbm011"].logical_iops
        calendar = build_shock_calendar(iops, period=24)
        assert calendar.n_columns >= 1
        assert calendar.shocks[0].period == 24

    def test_node2_has_no_backup_shock(self, olap_run):
        iops = olap_run.instances["cdbm012"].logical_iops
        calendar = build_shock_calendar(iops, period=24)
        assert calendar.n_columns == 0

    def test_iops_magnitude_matches_paper(self, olap_run):
        # Paper: "2.3 million logical IOPS per hour throughput at the peak".
        peak = olap_run.instances["cdbm012"].logical_iops.values.max()
        assert 1e6 < peak < 6e6

    def test_enough_data_for_table1(self, olap_run):
        assert olap_run.n_samples >= 1008


class TestOltpExperiment:
    """Experiment Two must exhibit C1, C2 (trend), C3 (multi-season), C4."""

    def test_c2_trend(self, oltp_run):
        cpu = oltp_run.instances["cdbm011"].cpu
        assert trend_strength(cpu, 24) > 0.8
        # User growth: second half busier than first half.
        half = len(cpu) // 2
        assert cpu.values[half:].mean() > cpu.values[:half].mean() * 1.15

    def test_c1_seasonality(self, oltp_run):
        cpu = oltp_run.instances["cdbm011"].cpu
        assert 24 in detect_seasonalities(cpu, candidates=[24, 168]).periods

    def test_c3_surges_visible(self, oltp_run):
        cpu = oltp_run.instances["cdbm011"].cpu.values
        hours = np.arange(cpu.size) % 24
        surge = cpu[(hours >= 7) & (hours < 10)].mean()
        pre_dawn = cpu[(hours >= 2) & (hours < 5)].mean()
        assert surge > pre_dawn * 1.2

    def test_c4_four_exogenous_backups(self, oltp_run):
        iops = oltp_run.instances["cdbm011"].logical_iops
        calendar = build_shock_calendar(iops, period=24, candidate_periods=(24, 168))
        assert calendar.n_columns == 4  # 6-hourly → 4 daily phases

    def test_paper_parameters_defaults(self):
        config = OltpExperiment()
        assert config.growth_per_day == 50.0
        assert config.backup_every_hours == 6.0
        surges = config.build().population.surges
        assert (surges[0].users, surges[0].start_hour, surges[0].duration_hours) == (1000, 7.0, 4.0)
        assert (surges[1].users, surges[1].start_hour, surges[1].duration_hours) == (1000, 9.0, 1.0)


class TestFailover:
    def _cluster(self, failovers):
        from repro.workloads import FailoverEvent, OLTP_PROFILE

        nodes = [
            DatabaseInstance(name=f"n{i}", profile=OLTP_PROFILE) for i in range(2)
        ]
        return ClusteredDatabase(
            nodes=nodes,
            population=UserPopulation(base_users=2000.0),
            failovers=failovers,
        )

    def test_failed_node_goes_quiet_survivor_doubles(self):
        from repro.workloads import FailoverEvent

        run = self._cluster(
            [FailoverEvent(at_hour=48.0, duration_hours=4.0, node_index=0)]
        ).run(days=5.0, seed=1).hourly()
        c0 = run.instances["n0"].cpu.values
        c1 = run.instances["n1"].cpu.values
        assert c0[49] < 0.2 * c0[25]  # down node near idle
        assert c1[49] > 1.6 * c1[25]  # survivor absorbs the load

    def test_total_sessions_conserved(self):
        from repro.workloads import FailoverEvent

        run = self._cluster(
            [FailoverEvent(at_hour=24.0, duration_hours=2.0, node_index=1)]
        ).run(days=3.0, seed=2).hourly()
        iops0 = run.instances["n0"].logical_iops.values
        iops1 = run.instances["n1"].logical_iops.values
        total = iops0 + iops1
        # Total demand during the failover stays near the surrounding level
        # (the load moved, it did not vanish); generous noise tolerance.
        around = np.r_[total[20:24], total[27:31]].mean()
        assert abs(total[25] - around) < 0.25 * around

    def test_validation(self):
        from repro.workloads import FailoverEvent, OLTP_PROFILE

        with pytest.raises(DataError):
            FailoverEvent(at_hour=0.0, duration_hours=0.0)
        with pytest.raises(DataError):
            ClusteredDatabase(
                nodes=[DatabaseInstance(name="solo", profile=OLTP_PROFILE)],
                population=UserPopulation(base_users=10.0),
                failovers=[FailoverEvent(at_hour=1.0, duration_hours=1.0)],
            )
        with pytest.raises(DataError):
            self._cluster([FailoverEvent(at_hour=1.0, duration_hours=1.0, node_index=9)])
