"""Chaos under sharding: scenarios run unchanged with ``shards=N``.

The survival report is the determinism contract's strongest form — at
N=1 the sharded report must be byte-identical to the single-process one
(same fault draws at every site, same advisories, same counters), and at
N>1 the deployment must still survive its scenario.

Runs under the reduced grid for CI-sized spans.
"""

import os

import pytest

from repro.faults.scenarios import run_scenario


@pytest.fixture(autouse=True)
def reduced_grid(monkeypatch):
    monkeypatch.setenv("REPRO_REDUCED_GRID", "1")


class TestShardedChaos:
    def test_agent_flap_n1_report_byte_identical(self):
        base = run_scenario("agent-flap", seed=7)
        sharded = run_scenario("agent-flap", seed=7, shards=1, shard_processes=False)
        assert sharded.to_json() == base.to_json()

    def test_agent_flap_n1_process_mode_byte_identical(self):
        base = run_scenario("agent-flap", seed=7)
        sharded = run_scenario("agent-flap", seed=7, shards=1, shard_processes=True)
        assert sharded.to_json() == base.to_json()

    def test_agent_flap_survives_two_shards(self):
        report = run_scenario("agent-flap", seed=7, shards=2, shard_processes=False)
        assert report.survived
        assert report.counters["windows_closed"] > 0
        # the fault plane fired on both driver (agent) and worker sites
        assert report.faults.get("fault_transient_error", 0) > 0
        assert report.faults.get("fault_drop_sample", 0) > 0

    def test_blackout_degrades_but_survives_sharded(self):
        report = run_scenario("blackout", seed=3, shards=2, shard_processes=False)
        assert report.survived
        assert report.degraded_ticks > 0

    def test_shard_count_does_not_break_repo_lock_scenario(self):
        report = run_scenario("repo-lock", seed=5, shards=2, shard_processes=False)
        assert report.survived
        # repository.write contention is a driver-side site: the central
        # store's retries must still fire under sharding
        assert report.faults.get("repository_write_retries", 0) > 0


@pytest.mark.skipif(
    os.environ.get("REPRO_SHARD_SLOW", "") in ("", "0"),
    reason="slow cross-seed sweep; set REPRO_SHARD_SLOW=1",
)
class TestShardedChaosSweep:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("scenario", ["agent-flap", "nan-burst", "slow-selection"])
    def test_n1_identity_across_scenarios(self, scenario, seed):
        base = run_scenario(scenario, seed=seed)
        sharded = run_scenario(scenario, seed=seed, shards=1, shard_processes=False)
        assert sharded.to_json() == base.to_json()
