"""Incremental state rolls: ``advance`` moves the forecast origin, no refit.

Every fitted family that supports rolling must satisfy the same algebra:
advancing through a block of observations in chunks lands on exactly the
state (and innovation stream) that one big advance produces, the rolled
train grows by exactly the absorbed values, and the ETS cohort roll is
bit-identical to rolling each member alone — that last equivalence is
what lets the scheduler batch same-spec keys without changing a single
advisory byte.
"""

import numpy as np
import pytest

from repro.core import TimeSeries
from repro.exceptions import ModelError
from repro.models import Arima, HoltWinters, Tbats
from repro.models.ets import advance_cohort, forecast_cohort_arrays


def _seasonal(seed, n, period=24):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 100.0 + 0.05 * t + 12.0 * np.sin(2 * np.pi * t / period) + rng.normal(0, 1.5, n)


@pytest.fixture(scope="module")
def hw_fit():
    y = _seasonal(0, 400)
    return HoltWinters(period=24).fit(TimeSeries(y[:360])), y[360:]


@pytest.fixture(scope="module")
def tbats_fit():
    y = _seasonal(1, 480)
    model = Tbats(periods=[24], max_harmonics=2, try_boxcox=False, maxiter=60)
    return model.fit(TimeSeries(y[:456])), y[456:]


@pytest.fixture(scope="module")
def arima_fit():
    rng = np.random.default_rng(2)
    e = rng.normal(0, 1.0, 400)
    y = np.empty(400)
    y[0] = 0.0
    for t in range(1, 400):
        y[t] = 0.6 * y[t - 1] + e[t]
    return Arima((1, 0, 0)).fit(TimeSeries(50.0 + y[:380])), 50.0 + y[380:]


def _assert_same_model(a, b):
    assert repr(a.train) == repr(b.train)
    assert np.array_equal(a.train.values, b.train.values)
    assert a.train.end == b.train.end
    assert a.sigma2 == b.sigma2


class TestChunkedEqualsOneShot:
    def test_ets(self, hw_fit):
        fit, future = hw_fit
        one, innov_one = fit.advance(future[:12])
        two_a, innov_a = fit.advance(future[:5])
        two, innov_b = two_a.advance(future[5:12])
        _assert_same_model(one, two)
        assert one.level == two.level and one.trend == two.trend
        assert np.array_equal(one.seasonal_state, two.seasonal_state)
        assert np.array_equal(innov_one, np.concatenate([innov_a, innov_b]))
        assert repr(one.forecast(24)) == repr(two.forecast(24))

    def test_tbats(self, tbats_fit):
        fit, future = tbats_fit
        one, innov_one = fit.advance(future[:12])
        two_a, innov_a = fit.advance(future[:7])
        two, innov_b = two_a.advance(future[7:12])
        _assert_same_model(one, two)
        assert np.array_equal(innov_one, np.concatenate([innov_a, innov_b]))
        assert repr(one.forecast(24)) == repr(two.forecast(24))

    def test_arima(self, arima_fit):
        # ARIMA innovations are block-relative (deviations from the
        # pre-roll forecast), so only the leading chunk matches the
        # one-shot stream — but the rolled model and its forecasts must
        # land on the same origin regardless of chunking.
        fit, future = arima_fit
        one, innov_one = fit.advance(future[:10])
        two_a, innov_a = fit.advance(future[:4])
        two, innov_b = two_a.advance(future[4:10])
        _assert_same_model(one, two)
        assert np.array_equal(innov_one[:4], innov_a)
        assert innov_b.shape == (6,)
        assert repr(one.forecast(24)) == repr(two.forecast(24))


class TestRollSemantics:
    def test_train_extends_and_origin_moves(self, hw_fit):
        fit, future = hw_fit
        rolled, innov = fit.advance(future[:6])
        assert len(rolled.train) == len(fit.train) + 6
        assert np.array_equal(rolled.train.values[-6:], future[:6])
        step = fit.train.frequency.seconds
        assert rolled.train.end == fit.train.end + 6 * step
        assert innov.shape == (6,)

    def test_arima_first_innovation_is_one_step_error(self, arima_fit):
        fit, future = arima_fit
        point = fit.forecast(1).mean.values[0]
        __, innov = fit.advance(future[:1])
        # Step one is exact (psi_0 = 1): the innovation is the one-step
        # forecast error in observation units.
        assert innov[0] == pytest.approx(future[0] - point, rel=1e-9)

    def test_tbats_rejects_nonfinite(self, tbats_fit):
        fit, __ = tbats_fit
        with pytest.raises(ModelError):
            fit.advance(np.array([1.0, np.nan]))

    def test_tbats_boxcox_rejects_nonpositive(self):
        y = _seasonal(5, 480)
        model = Tbats(periods=[24], max_harmonics=1, try_boxcox=True, maxiter=40)
        fit = model.fit(TimeSeries(y[:456]))
        if fit.boxcox_lambda is None:
            pytest.skip("fit did not choose a Box-Cox transform")
        with pytest.raises(ModelError):
            fit.advance(np.array([-5.0]))


class TestEtsCohort:
    def _members(self, n_keys=4):
        fits = []
        futures = []
        for k in range(n_keys):
            y = _seasonal(10 + k, 400)
            fits.append(HoltWinters(period=24).fit(TimeSeries(y[:360])))
            futures.append(y[360:])
        return fits, futures

    def test_cohort_roll_matches_per_key(self):
        fits, futures = self._members()
        block = np.stack([f[:8] for f in futures])
        rolled, innov = advance_cohort(fits, block)
        assert innov.shape == (len(fits), 8)
        for i, fit in enumerate(fits):
            solo, solo_innov = fit.advance(block[i])
            assert np.array_equal(innov[i], solo_innov)
            _assert_same_model(rolled[i], solo)
            assert rolled[i].level == solo.level
            assert rolled[i].trend == solo.trend
            assert np.array_equal(rolled[i].seasonal_state, solo.seasonal_state)
            assert repr(rolled[i].forecast(24)) == repr(solo.forecast(24))

    def test_cohort_forecast_matches_per_key(self):
        fits, __ = self._members()
        mean, lower, upper = forecast_cohort_arrays(fits, 24)
        for i, fit in enumerate(fits):
            fc = fit.forecast(24)
            assert np.array_equal(mean[i], fc.mean.values)
            assert np.array_equal(lower[i], fc.lower.values)
            assert np.array_equal(upper[i], fc.upper.values)

    def test_cohort_of_one_matches_per_key(self):
        fits, futures = self._members(1)
        rolled, innov = advance_cohort(fits, futures[0][:4][None, :])
        solo, solo_innov = fits[0].advance(futures[0][:4])
        assert np.array_equal(innov[0], solo_innov)
        _assert_same_model(rolled[0], solo)

    def test_mixed_spec_cohort_rejected(self):
        y = _seasonal(20, 400)
        hw = HoltWinters(period=24).fit(TimeSeries(y[:360]))
        hw12 = HoltWinters(period=12).fit(TimeSeries(y[:360]))
        with pytest.raises(ModelError):
            advance_cohort([hw, hw12], np.zeros((2, 4)))
