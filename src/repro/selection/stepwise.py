"""Stepwise SARIMA order search (Hyndman–Khandakar style).

The paper's protocol evaluates a *fixed grid* of orders and ranks by
held-out RMSE; its scaling remedy is correlogram pruning. The classic
alternative — what R's ``auto.arima`` does — is a greedy neighbourhood
walk: start from a handful of seed orders, repeatedly move to the best
neighbouring order (±1 in one of p, q, P, Q, toggling the constant) until
no neighbour improves, ranking by AICc on the *training* data.

This module implements that search so the repository can compare the two
philosophies (ablation A8): grid + holdout-RMSE (paper) versus stepwise +
in-sample AICc (auto.arima). The search is deliberately faithful to the
published algorithm: seed models, one-step neighbourhood, an evaluation
cache, and a fit budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stationarity import ndiffs, nsdiffs
from ..core.timeseries import TimeSeries
from ..exceptions import CapacityPlanningError, DataError, SelectionError
from ..models.arima import Arima

__all__ = ["StepwiseResult", "stepwise_search"]

#: Order caps, as in Hyndman–Khandakar.
MAX_P = 5
MAX_Q = 5
MAX_SP = 2
MAX_SQ = 2


@dataclass(frozen=True)
class StepwiseResult:
    """Outcome of a stepwise search."""

    order: tuple[int, int, int]
    seasonal: tuple[int, int, int, int] | None
    aicc: float
    n_fits: int
    trace: tuple[str, ...]

    def describe(self) -> str:
        seasonal = "" if self.seasonal is None else str(self.seasonal).replace(" ", "")
        return (
            f"stepwise winner ({self.order[0]},{self.order[1]},{self.order[2]})"
            f"{seasonal} AICc={self.aicc:.2f} after {self.n_fits} fits"
        )


def _aicc_of(fitted) -> float:
    from ..core.metrics import aicc

    resid = fitted.residuals[np.isfinite(fitted.residuals)]
    return aicc(float(resid @ resid), resid.size, fitted.n_params)


def stepwise_search(
    series: TimeSeries,
    period: int | None = None,
    max_fits: int = 60,
    maxiter: int = 40,
) -> StepwiseResult:
    """Greedy SARIMA order search ranked by AICc.

    Parameters
    ----------
    series:
        Training series (no missing values).
    period:
        Seasonal period; ``None`` or data too short disables the seasonal
        part of the search.
    max_fits:
        Budget of model estimations; the search stops when exhausted.
    """
    if series.has_missing():
        raise DataError("interpolate missing values before the stepwise search")
    n = len(series)
    seasonal_enabled = period is not None and period >= 2 and n >= 2 * period + 5

    d = ndiffs(series)
    D = nsdiffs(series, period) if seasonal_enabled else 0

    def clamp(p, q, P, Q):
        return (
            max(0, min(MAX_P, p)),
            max(0, min(MAX_Q, q)),
            max(0, min(MAX_SP, P)) if seasonal_enabled else 0,
            max(0, min(MAX_SQ, Q)) if seasonal_enabled else 0,
        )

    # Hyndman–Khandakar seed models.
    seeds = [(2, 2, 1, 1), (0, 0, 0, 0), (1, 0, 1, 0), (0, 1, 0, 1)]
    seeds = [clamp(*s) for s in seeds]

    cache: dict[tuple[int, int, int, int], float] = {}
    n_fits = 0
    trace: list[str] = []

    def evaluate(p, q, P, Q) -> float:
        nonlocal n_fits
        key = (p, q, P, Q)
        if key in cache:
            return cache[key]
        if n_fits >= max_fits:
            return np.inf
        seasonal = (P, D, Q, period) if seasonal_enabled and (P or D or Q) else None
        try:
            n_fits += 1
            fitted = Arima((p, d, q), seasonal=seasonal, maxiter=maxiter).fit(series)
            score = _aicc_of(fitted)
        except (CapacityPlanningError, np.linalg.LinAlgError, ValueError):
            score = np.inf
        cache[key] = score
        trace.append(f"({p},{d},{q})x({P},{D},{Q}) AICc={score:.2f}")
        return score

    best_key = None
    best_score = np.inf
    for seed in dict.fromkeys(seeds):  # de-dup, keep order
        score = evaluate(*seed)
        if score < best_score:
            best_key, best_score = seed, score
    if best_key is None or not np.isfinite(best_score):
        raise SelectionError("no stepwise seed model could be fitted")

    improved = True
    while improved and n_fits < max_fits:
        improved = False
        p, q, P, Q = best_key
        neighbours = [
            (p + 1, q, P, Q), (p - 1, q, P, Q),
            (p, q + 1, P, Q), (p, q - 1, P, Q),
            (p + 1, q + 1, P, Q), (p - 1, q - 1, P, Q),
        ]
        if seasonal_enabled:
            neighbours += [
                (p, q, P + 1, Q), (p, q, P - 1, Q),
                (p, q, P, Q + 1), (p, q, P, Q - 1),
            ]
        for cand in neighbours:
            cand = clamp(*cand)
            if cand == best_key:
                continue
            score = evaluate(*cand)
            if score < best_score - 1e-9:
                best_key, best_score = cand, score
                improved = True
                break  # greedy: restart the walk from the new optimum

    p, q, P, Q = best_key
    seasonal = (P, D, Q, period) if seasonal_enabled and (P or D or Q) else None
    return StepwiseResult(
        order=(p, d, q),
        seasonal=seasonal,
        aicc=float(best_score),
        n_fits=n_fits,
        trace=tuple(trace),
    )
