"""TBATS: Trigonometric seasonality, Box–Cox, ARMA errors, Trend, Seasonal.

Implements the model of Section 4.3 (De Livera, Hyndman & Snyder 2011),
equations (7)–(14) of the paper:

    y_t^(λ) = l_{t-1} + φ·b_{t-1} + Σ_i s^(i)_{t-1} + d_t
    l_t     = l_{t-1} + φ·b_{t-1} + α·d_t
    b_t     = φ·b_{t-1} + β·d_t
    d_t     = Σ φ_i d_{t-i} + Σ θ_j e_{t-j} + e_t

with each seasonal component represented by ``k_i`` trigonometric harmonic
pairs. We store each pair as a single complex state ``z = s + i·s*`` so one
multiplication by ``e^{-iλ}`` performs the rotation of equations (12)–(13).

Model configuration follows the paper's recipe: candidate configurations —
with/without Box–Cox, with/without trend, with/without damping, with/without
ARMA(p, q) errors, and different harmonic counts — are each fitted by
minimising the one-step sum of squared innovations, and the winner is the
configuration with the lowest AIC. The Box–Cox exponent is chosen by
Guerrero's method and held fixed during the inner optimisation (a standard
simplification that keeps the search well-conditioned).

Prediction intervals are produced by simulating the fitted state space
forward with Gaussian innovations (fixed seed for reproducibility) and, when
a Box–Cox transform is active, back-transforming the simulated quantiles so
the intervals are correct on the original scale.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace

import numpy as np
from scipy import optimize

from ..core.boxcox import boxcox, guerrero_lambda, inv_boxcox
from ..core.metrics import aic as _aic
from ..core.timeseries import TimeSeries
from ..exceptions import ConvergenceError, ModelError
from . import kernels
from .base import FittedModel, Forecast, ForecastModel, check_series

__all__ = ["Tbats", "FittedTbats", "TbatsConfig"]


@dataclass(frozen=True)
class TbatsConfig:
    """One concrete TBATS configuration evaluated during model selection."""

    use_boxcox: bool
    use_trend: bool
    use_damping: bool
    arma_p: int
    arma_q: int
    harmonics: tuple[int, ...]

    def describe(self) -> str:
        bits = []
        bits.append("BoxCox" if self.use_boxcox else "no-BoxCox")
        if self.use_trend:
            bits.append("damped-trend" if self.use_damping else "trend")
        if self.arma_p or self.arma_q:
            bits.append(f"ARMA({self.arma_p},{self.arma_q})")
        bits.append("k=" + ",".join(str(k) for k in self.harmonics))
        return " ".join(bits)


@dataclass
class _State:
    """Mutable recursion state for one pass through the data."""

    level: float
    trend: float
    z: np.ndarray  # complex harmonic states, concatenated across seasons
    d_hist: np.ndarray  # last p values of the ARMA(d) process
    e_hist: np.ndarray  # last q innovations


def _initial_harmonics(
    y: np.ndarray, periods: tuple[int, ...], harmonics: tuple[int, ...]
) -> tuple[np.ndarray, float, float]:
    """Initial level, trend slope and harmonic states by OLS.

    Pure rotation (γ = 0) implies ``s_{j,t} = s_{j,0}cos(λt) + s*_{j,0}sin(λt)``,
    so regressing the data on an intercept, a slope and cos/sin columns gives
    the initial states directly.
    """
    n = y.size
    t = np.arange(n, dtype=float)
    cols = [np.ones(n), t]
    for period, k in zip(periods, harmonics):
        for j in range(1, k + 1):
            lam = 2.0 * np.pi * j / period
            cols.append(np.cos(lam * t))
            cols.append(np.sin(lam * t))
    X = np.column_stack(cols)
    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    level0 = float(beta[0])
    trend0 = float(beta[1])
    z0 = []
    idx = 2
    for period, k in zip(periods, harmonics):
        for __ in range(k):
            z0.append(complex(beta[idx], beta[idx + 1]))
            idx += 2
    return np.asarray(z0, dtype=complex), level0, trend0


def _rotations(periods: tuple[int, ...], harmonics: tuple[int, ...]) -> np.ndarray:
    """Per-harmonic complex rotation factors ``e^{-iλ_j}``."""
    rot = []
    for period, k in zip(periods, harmonics):
        for j in range(1, k + 1):
            lam = 2.0 * np.pi * j / period
            rot.append(np.exp(-1j * lam))
    return np.asarray(rot, dtype=complex)


def _run(
    y: np.ndarray,
    config: TbatsConfig,
    params: dict[str, np.ndarray | float],
    init: _State,
    rot: np.ndarray,
) -> tuple[np.ndarray, _State]:
    """One filtering pass; returns innovations and the final state.

    The per-timestep loop lives in
    :func:`repro.models.kernels.tbats_filter` — it is the hot path of the
    configuration search's L-BFGS objective.
    """
    gamma = params["gamma1"] + 1j * params["gamma2"]  # per-season, broadcast below
    z = init.z
    gamma_vec = np.repeat(gamma, params["k_per_season"]) if z.size else np.empty(0, complex)
    innovations, level, trend, z_final, d_hist, e_hist = kernels.tbats_filter(
        y,
        params["alpha"],
        params["beta"],
        params["phi"],
        config.use_trend,
        rot,
        gamma_vec,
        params["ar"],
        params["ma"],
        init.level,
        init.trend,
        z,
        init.d_hist,
        init.e_hist,
    )
    return innovations, _State(level, trend, z_final, d_hist, e_hist)


def _pack_params(config: TbatsConfig, n_seasons: int):
    """Describe the free-parameter vector for a configuration."""
    names: list[tuple[str, int]] = [("alpha", 1)]
    if config.use_trend:
        names.append(("beta", 1))
        if config.use_damping:
            names.append(("phi", 1))
    if n_seasons:
        names.append(("gamma1", n_seasons))
        names.append(("gamma2", n_seasons))
    if config.arma_p:
        names.append(("ar", config.arma_p))
    if config.arma_q:
        names.append(("ma", config.arma_q))
    return names


_BOUNDS = {
    "alpha": (1e-4, 0.995),
    "beta": (1e-4, 0.5),
    "phi": (0.8, 0.999),
    "gamma1": (-0.5, 0.5),
    "gamma2": (-0.5, 0.5),
    "ar": (-0.95, 0.95),
    "ma": (-0.95, 0.95),
}

_DEFAULTS = {
    "alpha": 0.1,
    "beta": 0.01,
    "phi": 0.98,
    "gamma1": 0.001,
    "gamma2": 0.001,
    "ar": 0.1,
    "ma": 0.1,
}


@dataclass
class FittedTbats(FittedModel):
    """A fitted TBATS model (winning configuration of the AIC search)."""

    config: TbatsConfig = field(default=None)
    periods: tuple[int, ...] = ()
    params: dict = field(default=None, repr=False)
    final_state: _State = field(default=None, repr=False)
    boxcox_lambda: float | None = None
    aic_value: float = math.inf
    #: Standardisation factor: the state space lives in y/y_scale units
    #: (of the Box-Cox-transformed series when a transform is active).
    y_scale: float = 1.0
    _rot: np.ndarray = field(default=None, repr=False)

    def label(self) -> str:
        return f"TBATS {{{self.config.describe()}}}"

    def _simulate(self, horizon: int, n_paths: int, rng: np.random.Generator) -> np.ndarray:
        # Simulation runs in the standardised state space. All paths go
        # through the kernel together; the shocks are pre-drawn as one
        # (paths, horizon) matrix, which consumes the generator in exactly
        # the order the former nested loop did, so paths are bit-identical.
        sigma = math.sqrt(self.sigma2) / self.y_scale
        cfg, p = self.config, self.params
        state = self.final_state
        gamma_vec = (
            np.repeat(p["gamma1"] + 1j * p["gamma2"], p["k_per_season"])
            if state.z.size
            else np.empty(0, complex)
        )
        if n_paths > 1:
            shocks = rng.normal(0.0, sigma, size=(n_paths, horizon))
        else:
            shocks = np.zeros((1, horizon))  # the noiseless point-forecast path
        return kernels.tbats_paths(
            p["alpha"],
            p["beta"],
            p["phi"],
            cfg.use_trend,
            self._rot,
            gamma_vec,
            p["ar"],
            p["ma"],
            state.level,
            state.trend,
            state.z,
            state.d_hist,
            state.e_hist,
            shocks,
        )

    def forecast(self, horizon: int, alpha: float = 0.05, n_paths: int = 300) -> Forecast:
        if horizon <= 0:
            raise ModelError(f"horizon must be positive, got {horizon}")
        point = self._simulate(horizon, 1, np.random.default_rng(0))[0]
        sims = self._simulate(horizon, n_paths, np.random.default_rng(2024))
        lo_q, hi_q = alpha / 2.0, 1.0 - alpha / 2.0
        lower = np.quantile(sims, lo_q, axis=0)
        upper = np.quantile(sims, hi_q, axis=0)
        # Back from standardised state-space units to data units.
        point = point * self.y_scale
        lower = lower * self.y_scale
        upper = upper * self.y_scale
        if self.boxcox_lambda is not None:
            point = inv_boxcox(point, self.boxcox_lambda)
            lower = inv_boxcox(lower, self.boxcox_lambda)
            upper = inv_boxcox(upper, self.boxcox_lambda)
        mean_ts = self._future_series(point)
        return Forecast(
            mean=mean_ts,
            lower=self._future_series(np.minimum(lower, point)),
            upper=self._future_series(np.maximum(upper, point)),
            alpha=alpha,
            model_label=self.label(),
        )

    def advance(self, values: np.ndarray) -> tuple["FittedTbats", np.ndarray]:
        """Roll the state space through new observations without refitting.

        Runs the fitted filter (frozen parameters) from the stored final
        state over ``values`` — the same per-timestep updates a refit's
        filtering pass would apply to the concatenated series — and moves
        the forecast origin forward. Returns ``(rolled model, one-step
        innovations)`` with innovations in ``residuals`` units (the
        Box-Cox-transformed scale when a transform is active), the units
        of ``sqrt(sigma2)``.
        """
        raw = np.ascontiguousarray(values, dtype=float)
        if raw.ndim != 1 or raw.size == 0:
            raise ModelError("advance needs a non-empty 1-D batch of observations")
        if not np.all(np.isfinite(raw)):
            raise ModelError("cannot roll a TBATS state through non-finite observations")
        if self.boxcox_lambda is not None:
            if np.any(raw <= 0):
                raise ModelError("Box-Cox roll requires positive observations")
            y = boxcox(raw, self.boxcox_lambda) / self.y_scale
        else:
            y = raw / self.y_scale
        with np.errstate(over="ignore", invalid="ignore"):
            innovations, state = _run(y, self.config, self.params, self.final_state, self._rot)
        innovations = innovations * self.y_scale
        step = self.train.frequency.seconds
        extension = TimeSeries(
            values=raw,
            frequency=self.train.frequency,
            start=self.train.end + step,
            name=self.train.name,
        )
        rolled = replace(
            self,
            train=self.train.append(extension),
            residuals=np.concatenate([self.residuals, innovations]),
            final_state=state,
        )
        return rolled, innovations


class Tbats(ForecastModel):
    """TBATS specification with AIC-driven configuration search.

    Parameters
    ----------
    periods:
        Seasonal periods, e.g. ``[24, 168]`` for hourly data with daily and
        weekly cycles. May be empty for a non-seasonal TBATS.
    max_harmonics:
        Cap on harmonics per season (``k_i``); candidates ``1..cap`` are
        resolved by a quick pre-fit before the main configuration search.
    try_boxcox / try_trend / try_damping / try_arma:
        Toggle the corresponding configuration dimensions of the search
        (each doubles — or for ARMA quadruples — the candidate count).
    """

    def __init__(
        self,
        periods: list[int] | tuple[int, ...] = (),
        max_harmonics: int = 3,
        try_boxcox: bool = True,
        try_trend: bool = True,
        try_damping: bool = False,
        try_arma: bool = True,
        maxiter: int = 120,
    ) -> None:
        self.periods = tuple(int(p) for p in periods)
        if any(p < 2 for p in self.periods):
            raise ModelError("every TBATS period must be >= 2")
        if len(set(self.periods)) != len(self.periods):
            raise ModelError("duplicate seasonal periods")
        self.max_harmonics = max(1, int(max_harmonics))
        self.try_boxcox = try_boxcox
        self.try_trend = try_trend
        self.try_damping = try_damping
        self.try_arma = try_arma
        self.maxiter = maxiter

    @property
    def min_observations(self) -> int:
        return max(10, 2 * max(self.periods, default=4) + 1)

    # ------------------------------------------------------------------
    def _select_harmonics(self, y: np.ndarray) -> tuple[int, ...]:
        """Pick ``k_i`` per season by AIC of an OLS Fourier regression.

        This mirrors the original TBATS procedure of resolving harmonic
        counts *before* the expensive state-space search: the detrended
        series is regressed on ``k`` harmonic pairs for each candidate
        ``k`` and the AIC-best count wins; the chosen seasonality is then
        removed before evaluating the next (longer) period.
        """
        from ..core.fourier import fourier_terms

        n = y.size
        t = np.arange(n, dtype=float)
        base = np.column_stack([np.ones(n), t])
        beta, *_ = np.linalg.lstsq(base, y, rcond=None)
        resid = y - base @ beta
        ks: list[int] = []
        for period in self.periods:
            cap = min(self.max_harmonics, max(1, (period - 1) // 2))
            best_k, best_score, best_X = 1, math.inf, None
            for k in range(1, cap + 1):
                X = fourier_terms(n, [period], [k])
                b, *_ = np.linalg.lstsq(X, resid, rcond=None)
                sse = float(np.sum((resid - X @ b) ** 2))
                score = _aic(sse, n, 2 * k)
                if score < best_score:
                    best_k, best_score, best_X = k, score, X @ b
            ks.append(best_k)
            resid = resid - best_X
        return tuple(ks)

    def _configs(self, harmonics: tuple[int, ...]) -> list[TbatsConfig]:
        boxcox_opts = [False, True] if self.try_boxcox else [False]
        trend_opts = [False, True] if self.try_trend else [True]
        arma_opts = [(0, 0), (1, 1)] if self.try_arma else [(0, 0)]
        configs = []
        for use_bc, use_tr, (p, q) in itertools.product(
            boxcox_opts, trend_opts, arma_opts
        ):
            ks = harmonics
            damp_opts = [False, True] if (use_tr and self.try_damping) else [False]
            for damped in damp_opts:
                configs.append(
                    TbatsConfig(
                        use_boxcox=use_bc,
                        use_trend=use_tr,
                        use_damping=damped,
                        arma_p=p,
                        arma_q=q,
                        harmonics=ks,
                    )
                )
        return configs

    def _fit_config(self, y: np.ndarray, config: TbatsConfig) -> tuple[float, dict, _State, np.ndarray, np.ndarray]:
        periods = self.periods
        rot = _rotations(periods, config.harmonics)
        z0, level0, trend0 = (
            _initial_harmonics(y, periods, config.harmonics)
            if periods
            else (np.empty(0, complex), float(np.mean(y)), 0.0)
        )
        if not config.use_trend:
            trend0 = 0.0
        init = _State(
            level=level0,
            trend=trend0,
            z=z0,
            d_hist=np.zeros(config.arma_p),
            e_hist=np.zeros(config.arma_q),
        )
        layout = _pack_params(config, len(periods))

        def unpack(x: np.ndarray) -> dict:
            params = {
                "alpha": _DEFAULTS["alpha"],
                "beta": 0.0,
                "phi": 1.0,
                "gamma1": np.zeros(len(periods)),
                "gamma2": np.zeros(len(periods)),
                "ar": np.zeros(config.arma_p),
                "ma": np.zeros(config.arma_q),
                "k_per_season": np.asarray(config.harmonics, dtype=int),
            }
            i = 0
            for name, size in layout:
                chunk = x[i : i + size]
                i += size
                if name in ("alpha", "beta", "phi"):
                    params[name] = float(chunk[0])
                else:
                    params[name] = np.asarray(chunk, dtype=float)
            if not config.use_damping:
                params["phi"] = 1.0 if config.use_trend else params["phi"]
            return params

        def objective(x: np.ndarray) -> float:
            params = unpack(x)
            if params["ar"].size and np.sum(np.abs(params["ar"])) >= 0.98:
                return 1e12
            with np.errstate(over="ignore", invalid="ignore"):
                e, __ = _run(y, config, params, init, rot)
                sse = float(e @ e)
            return sse if np.isfinite(sse) else 1e12

        x0_parts, bounds = [], []
        for name, size in layout:
            x0_parts.extend([_DEFAULTS[name]] * size)
            bounds.extend([_BOUNDS[name]] * size)
        x0 = np.asarray(x0_parts)

        result = optimize.minimize(
            objective, x0, method="L-BFGS-B", bounds=bounds, options={"maxiter": self.maxiter}
        )
        params = unpack(result.x)
        with np.errstate(over="ignore", invalid="ignore"):
            e, final_state = _run(y, config, params, init, rot)
            sse = float(e @ e)
        if not np.isfinite(sse):
            # The optimiser ended in a divergent corner (e.g. a seasonal
            # smoothing bound); this configuration must lose the AIC race.
            return math.inf, params, final_state, e, rot
        n_params = sum(size for __, size in layout) + 2 + 2 * sum(config.harmonics)
        score = _aic(sse, y.size, n_params) + (1 if config.use_boxcox else 0)
        return score, params, final_state, e, rot

    def fit(self, series: TimeSeries, **kwargs) -> FittedTbats:
        if kwargs:
            raise ModelError(f"unexpected fit options: {sorted(kwargs)}")
        y_raw = check_series(series, self.min_observations)

        # The state space is fitted on standardised data: TBATS is linear
        # in y (given a Box-Cox branch), so dividing by the standard
        # deviation changes nothing statistically while keeping the
        # optimiser and the seasonal rotation numerically well-conditioned
        # for metrics in the 10^5-IOPS range.
        scale_raw = max(float(np.std(y_raw)), 1e-12)

        lam = None
        y_bc = None
        scale_bc = 1.0
        if self.try_boxcox:
            if np.all(y_raw > 0):
                lam = guerrero_lambda(y_raw, max(self.periods, default=2))
                y_bc = boxcox(y_raw, lam)
                scale_bc = max(float(np.std(y_bc)), 1e-12)
            # Non-positive data silently skips the Box-Cox branch.

        harmonics = self._select_harmonics(y_raw) if self.periods else ()
        best = None
        for config in self._configs(harmonics):
            if config.use_boxcox:
                if y_bc is None:
                    continue
                y = y_bc / scale_bc
                cfg_lambda = lam
                cfg_scale = scale_bc
            else:
                y = y_raw / scale_raw
                cfg_lambda = None
                cfg_scale = scale_raw
            try:
                score, params, state, e, rot = self._fit_config(y, config)
            except (np.linalg.LinAlgError, ValueError):
                continue
            if best is None or score < best[0]:
                best = (score, config, params, state, e, rot, cfg_lambda, cfg_scale)
        if best is None or not math.isfinite(best[0]):
            raise ConvergenceError("no TBATS configuration could be fitted")

        score, config, params, state, e, rot, cfg_lambda, cfg_scale = best
        skip = max(self.periods, default=1)
        used = e[skip:] if e.size > skip else e
        n_params = len(_pack_params(config, len(self.periods)))
        dof = max(1, used.size - n_params)
        sigma2_scaled = float(used @ used) / dof
        return FittedTbats(
            train=series,
            residuals=e * cfg_scale,
            sigma2=sigma2_scaled * cfg_scale**2,
            n_params=n_params + 2 * sum(config.harmonics) + 2,
            config=config,
            periods=self.periods,
            params=params,
            final_state=state,
            boxcox_lambda=cfg_lambda,
            aic_value=score,
            y_scale=cfg_scale,
            _rot=rot,
        )
