"""Tests for ADF/KPSS tests, differencing and order heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    adf_test,
    difference,
    integrate,
    kpss_test,
    ndiffs,
    nsdiffs,
)
from repro.exceptions import DataError


def random_walk(n: int = 500, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=n))


def stationary_ar(n: int = 500, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = 0.5 * x[t - 1] + rng.normal()
    return x


class TestAdf:
    def test_stationary_series_rejected_null(self):
        result = adf_test(stationary_ar())
        assert result.stationary
        assert result.p_value <= 0.05

    def test_random_walk_not_rejected(self):
        result = adf_test(random_walk())
        assert not result.stationary
        assert result.p_value > 0.05

    def test_differenced_walk_stationary(self):
        walk = random_walk()
        assert adf_test(np.diff(walk)).stationary

    def test_trend_regression(self):
        rng = np.random.default_rng(3)
        t = np.arange(400.0)
        trend_stationary = 0.5 * t + stationary_ar(400, seed=3)
        result = adf_test(trend_stationary, regression="ct")
        assert result.stationary

    def test_critical_values_ordered(self):
        result = adf_test(stationary_ar())
        cv = result.critical_values
        assert cv[0.01] < cv[0.05] < cv[0.10]

    def test_invalid_regression(self):
        with pytest.raises(DataError):
            adf_test(stationary_ar(), regression="bogus")

    def test_too_short(self):
        with pytest.raises(DataError):
            adf_test(np.arange(5.0))

    def test_accepts_timeseries(self, daily_series):
        assert adf_test(daily_series).n_lags >= 0


class TestKpss:
    def test_stationary_series_passes(self):
        result = kpss_test(stationary_ar())
        assert result.stationary

    def test_random_walk_fails(self):
        result = kpss_test(random_walk(seed=7))
        assert not result.stationary

    def test_trend_variant(self):
        t = np.arange(400.0)
        trend_stationary = 0.3 * t + stationary_ar(400, seed=5)
        assert kpss_test(trend_stationary, regression="ct").stationary

    def test_agrees_with_adf_on_clean_cases(self):
        x = stationary_ar(seed=11)
        assert adf_test(x).stationary and kpss_test(x).stationary
        w = random_walk(seed=11)
        assert (not adf_test(w).stationary) and (not kpss_test(w).stationary)


class TestDifference:
    def test_first_difference(self):
        x = np.array([1.0, 3.0, 6.0])
        assert list(difference(x, d=1)) == [2.0, 3.0]

    def test_seasonal_difference(self):
        x = np.arange(10.0)
        out = difference(x, d=0, seasonal_d=1, period=3)
        assert np.allclose(out, 3.0)

    def test_combined_lengths(self):
        x = np.arange(50.0)
        out = difference(x, d=1, seasonal_d=1, period=7)
        assert out.size == 50 - 1 - 7

    def test_removes_linear_trend(self):
        x = 2.0 * np.arange(30.0) + 5.0
        assert np.allclose(difference(x, d=1), 2.0)

    def test_too_short_raises(self):
        with pytest.raises(DataError):
            difference(np.array([1.0]), d=1)
        with pytest.raises(DataError):
            difference(np.arange(3.0), seasonal_d=1, period=5)

    def test_invalid_orders(self):
        with pytest.raises(DataError):
            difference(np.arange(10.0), d=-1)
        with pytest.raises(DataError):
            difference(np.arange(10.0), seasonal_d=1, period=1)


class TestIntegrate:
    @pytest.mark.parametrize("d,D,period", [(1, 0, 1), (2, 0, 1), (0, 1, 24), (1, 1, 24), (1, 2, 12)])
    def test_roundtrip(self, d, D, period):
        rng = np.random.default_rng(4)
        y = rng.normal(size=300).cumsum() + 50
        h = 30
        diffed = difference(y, d=d, seasonal_d=D, period=period)
        rebuilt = integrate(diffed[-h:], y[:-h], d=d, seasonal_d=D, period=period)
        assert np.allclose(rebuilt, y[-h:])

    def test_horizon_longer_than_period(self):
        y = np.arange(100.0) + np.tile([0.0, 5.0, 1.0, 2.0], 25)
        diffed = difference(y, d=0, seasonal_d=1, period=4)
        h = 10  # > period, exercises the recursive seasonal rebuild
        rebuilt = integrate(diffed[-h:], y[:-h], d=0, seasonal_d=1, period=4)
        assert np.allclose(rebuilt, y[-h:])


class TestNdiffs:
    def test_stationary_needs_none(self):
        assert ndiffs(stationary_ar()) == 0

    def test_random_walk_needs_one(self):
        assert ndiffs(random_walk()) == 1

    def test_double_integrated_needs_two(self):
        walk2 = np.cumsum(random_walk(400, seed=2))
        assert ndiffs(walk2) == 2

    def test_capped_at_max(self):
        walk2 = np.cumsum(random_walk(400, seed=2))
        assert ndiffs(walk2, max_d=1) == 1

    def test_constant_series(self):
        assert ndiffs(np.ones(100)) == 0


class TestNsdiffs:
    def test_strong_seasonality_needs_one(self, daily_series):
        assert nsdiffs(daily_series, 24) == 1

    def test_white_noise_needs_none(self, white_noise):
        assert nsdiffs(white_noise, 24) == 0

    def test_period_one_is_zero(self, daily_series):
        assert nsdiffs(daily_series, 1) == 0

    def test_short_series_zero(self):
        assert nsdiffs(np.arange(10.0), 24) == 0


class TestStationarityProperties:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_difference_then_integrate_identity(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(size=120).cumsum()
        diffed = difference(y, d=1)
        rebuilt = integrate(diffed[-10:], y[:-10], d=1)
        assert np.allclose(rebuilt, y[-10:])

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=20, deadline=None)
    def test_seasonal_roundtrip_any_period(self, seed, period):
        rng = np.random.default_rng(seed)
        y = rng.normal(size=8 * period + 17).cumsum()
        h = period + 3
        diffed = difference(y, d=0, seasonal_d=1, period=period)
        rebuilt = integrate(diffed[-h:], y[:-h], d=0, seasonal_d=1, period=period)
        assert np.allclose(rebuilt, y[-h:])


def _integrate_scalar(diffed, original, d=1, seasonal_d=0, period=1):
    """The former per-lag scalar rebuild of the seasonal chains."""
    history_stack = [np.asarray(original, dtype=float)]
    x = history_stack[0]
    for __ in range(seasonal_d):
        x = x[period:] - x[:-period]
        history_stack.append(x)
    for __ in range(d):
        x = np.diff(x)
        history_stack.append(x)
    out = np.asarray(diffed, dtype=float).copy()
    for layer in range(d):
        base = history_stack[-2 - layer]
        out = np.cumsum(out) + base[-1]
    for layer in range(seasonal_d):
        base = history_stack[seasonal_d - 1 - layer]
        rebuilt = np.empty_like(out)
        for h in range(out.size):
            prev = rebuilt[h - period] if h >= period else base[base.size - period + h]
            rebuilt[h] = out[h] + prev
        out = rebuilt
    return out


class TestIntegrateVectorizedEquivalence:
    """The per-phase cumulative rebuild must equal the scalar recurrence."""

    @given(
        seed=st.integers(min_value=0, max_value=500),
        period=st.integers(min_value=2, max_value=12),
        horizon=st.integers(min_value=1, max_value=40),
        d=st.integers(min_value=0, max_value=2),
        seasonal_d=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_recurrence(self, seed, period, horizon, d, seasonal_d):
        rng = np.random.default_rng(seed)
        n = (seasonal_d + 1) * 3 * period + d + 20
        original = rng.normal(size=n).cumsum()
        diffed = rng.normal(size=horizon)
        got = integrate(diffed, original, d=d, seasonal_d=seasonal_d, period=period)
        want = _integrate_scalar(diffed, original, d=d, seasonal_d=seasonal_d, period=period)
        np.testing.assert_array_equal(got, want)

    def test_horizon_within_one_season(self):
        # n <= period takes the straight base-tail branch.
        rng = np.random.default_rng(7)
        original = rng.normal(size=60).cumsum()
        diffed = rng.normal(size=5)
        got = integrate(diffed, original, d=0, seasonal_d=1, period=12)
        want = _integrate_scalar(diffed, original, d=0, seasonal_d=1, period=12)
        np.testing.assert_array_equal(got, want)

    def test_horizon_spanning_many_seasons(self):
        rng = np.random.default_rng(8)
        original = rng.normal(size=80).cumsum()
        diffed = rng.normal(size=31)
        got = integrate(diffed, original, d=1, seasonal_d=1, period=4)
        want = _integrate_scalar(diffed, original, d=1, seasonal_d=1, period=4)
        np.testing.assert_array_equal(got, want)
