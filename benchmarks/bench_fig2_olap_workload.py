"""Figure 2: Key Metrics — Workload Descriptions, Experiment One (OLAP).

Regenerates the three per-instance metric traces of the paper's Figure 2
(CPU, memory, logical IOPS for cdbm011/cdbm012), saves them as figure
CSVs, and asserts the structural traits the paper reads off the charts:

* spikes/surges in usage at peak times (C1, seasonality);
* load growth as the dataset gets bigger (C2, trend);
* the midnight backup on node 1 only (C4, shock);
* logical-IOPS peak in the paper's millions-per-hour regime.
"""

from repro.core import seasonal_strength, trend_strength
from repro.reporting import Table, workload_chart
from repro.shocks import build_shock_calendar
from repro.workloads import generate_olap_run

from .conftest import metric_series, output_path


def test_fig2_olap_workload(benchmark, olap_run):
    # Benchmark the full substrate: simulate + aggregate Experiment One.
    benchmark.pedantic(generate_olap_run, rounds=1, iterations=1)

    table = Table(
        ["Instance", "Metric", "Mean", "Peak", "Seasonal F_s", "Trend F_t"],
        title="Figure 2: OLAP workload description",
    )
    for instance, bundle in olap_run.instances.items():
        fig = workload_chart(
            f"fig2_{instance}",
            {m: metric_series(olap_run, instance, m) for m in ("cpu", "memory", "logical_iops")},
        )
        fig.save(output_path(f"fig2_{instance}.csv"))
        for metric in ("cpu", "memory", "logical_iops"):
            series = metric_series(olap_run, instance, metric)
            table.add_row(
                [
                    instance,
                    metric,
                    float(series.values.mean()),
                    float(series.values.max()),
                    seasonal_strength(series, 24),
                    trend_strength(series, 24),
                ]
            )
    print()
    table.print()

    # --- structural assertions -------------------------------------------
    for instance in ("cdbm011", "cdbm012"):
        cpu = metric_series(olap_run, instance, "cpu")
        assert seasonal_strength(cpu, 24) > 0.8, f"{instance}: C1 missing"

    iops_backup_node = metric_series(olap_run, "cdbm011", "logical_iops")
    iops_other_node = metric_series(olap_run, "cdbm012", "logical_iops")
    assert build_shock_calendar(iops_backup_node, period=24).n_columns >= 1
    assert build_shock_calendar(iops_other_node, period=24).n_columns == 0

    # Paper: ~2.3M logical IOPS/hour at peak.
    assert 1e6 < iops_other_node.values.max() < 6e6

    # Mild growth (C2): last week busier than first week.
    week = 7 * 24
    assert iops_other_node.values[-week:].mean() > iops_other_node.values[:week].mean()
