"""Naive baselines: last-value, seasonal-naive, drift and moving average.

Every serious forecasting evaluation needs baselines that are free to beat.
The paper's Table 2 compares ARIMA variants against each other; the ablation
benches in this reproduction additionally anchor those numbers against the
standard naive family so a reader can see how much structure the models
actually capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.timeseries import TimeSeries
from ..exceptions import ModelError
from .base import FittedModel, Forecast, ForecastModel, check_series

__all__ = ["Naive", "SeasonalNaive", "Drift", "MovingAverage"]


@dataclass
class _FittedSimple(FittedModel):
    """Fitted state for the baseline family (closures do the forecasting)."""

    point_fn: object = field(default=None, repr=False)
    std_fn: object = field(default=None, repr=False)
    name: str = "Naive"

    def label(self) -> str:
        return self.name

    def forecast(self, horizon: int, alpha: float = 0.05) -> Forecast:
        if horizon <= 0:
            raise ModelError(f"horizon must be positive, got {horizon}")
        mean = self.point_fn(horizon)
        std = self.std_fn(horizon)
        return self.make_forecast(mean, std, alpha)


class Naive(ForecastModel):
    """Forecast every future point as the last observed value."""

    def fit(self, series: TimeSeries, **kwargs) -> _FittedSimple:
        y = check_series(series, 2)
        resid = np.diff(y)
        sigma2 = float(resid @ resid) / max(1, resid.size - 1)
        last = float(y[-1])
        return _FittedSimple(
            train=series,
            residuals=resid,
            sigma2=sigma2,
            n_params=1,
            point_fn=lambda h: np.full(h, last),
            std_fn=lambda h: np.sqrt(sigma2 * np.arange(1, h + 1)),
            name="Naive",
        )


class SeasonalNaive(ForecastModel):
    """Forecast each point as the value one season earlier."""

    def __init__(self, period: int) -> None:
        if period < 2:
            raise ModelError(f"period must be >= 2, got {period}")
        self.period = int(period)

    @property
    def min_observations(self) -> int:
        return self.period + 1

    def fit(self, series: TimeSeries, **kwargs) -> _FittedSimple:
        y = check_series(series, self.min_observations)
        m = self.period
        resid = y[m:] - y[:-m]
        sigma2 = float(resid @ resid) / max(1, resid.size - 1)
        last_season = y[-m:].copy()

        def point(h: int) -> np.ndarray:
            reps = int(np.ceil(h / m))
            return np.tile(last_season, reps)[:h]

        def std(h: int) -> np.ndarray:
            k = (np.arange(h) // m) + 1  # how many seasons ahead
            return np.sqrt(sigma2 * k)

        return _FittedSimple(
            train=series,
            residuals=resid,
            sigma2=sigma2,
            n_params=1,
            point_fn=point,
            std_fn=std,
            name=f"SeasonalNaive({m})",
        )


class Drift(ForecastModel):
    """Linear extrapolation between the first and last observations."""

    def fit(self, series: TimeSeries, **kwargs) -> _FittedSimple:
        y = check_series(series, 3)
        n = y.size
        slope = (y[-1] - y[0]) / (n - 1)
        resid = np.diff(y) - slope
        sigma2 = float(resid @ resid) / max(1, resid.size - 1)
        last = float(y[-1])

        def std(h: int) -> np.ndarray:
            steps = np.arange(1, h + 1, dtype=float)
            return np.sqrt(sigma2 * steps * (1.0 + steps / (n - 1)))

        return _FittedSimple(
            train=series,
            residuals=resid,
            sigma2=sigma2,
            n_params=2,
            point_fn=lambda h: last + slope * np.arange(1, h + 1),
            std_fn=std,
            name="Drift",
        )


class MovingAverage(ForecastModel):
    """Forecast the mean of the last ``window`` observations."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ModelError(f"window must be >= 1, got {window}")
        self.window = int(window)

    @property
    def min_observations(self) -> int:
        return self.window + 1

    def fit(self, series: TimeSeries, **kwargs) -> _FittedSimple:
        y = check_series(series, self.min_observations)
        w = self.window
        # In-sample one-step errors of the rolling mean.
        kernel = np.ones(w) / w
        rolled = np.convolve(y, kernel, mode="valid")[:-1]
        resid = y[w:] - rolled
        sigma2 = float(resid @ resid) / max(1, resid.size - 1)
        level = float(y[-w:].mean())
        return _FittedSimple(
            train=series,
            residuals=resid,
            sigma2=sigma2,
            n_params=1,
            point_fn=lambda h: np.full(h, level),
            std_fn=lambda h: np.sqrt(sigma2 * (1.0 + np.arange(h) / w)),
            name=f"MovingAverage({w})",
        )
