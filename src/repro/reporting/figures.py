"""Figure-data export: the series behind the paper's charts, as CSV/dicts.

The benches run headless, so instead of rendering PNGs they emit the exact
data series each paper figure plots (training window, prediction line,
error bars, per-metric traces) in a structured form — a dict of aligned
columns — plus a CSV writer, so any plotting tool can reproduce the charts.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

import numpy as np

from ..core.timeseries import TimeSeries
from ..exceptions import DataError
from ..models.base import Forecast

__all__ = ["FigureData", "prediction_chart", "workload_chart"]


@dataclass
class FigureData:
    """Aligned named columns for one chart panel."""

    name: str
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, label: str, values: np.ndarray) -> None:
        arr = np.asarray(values, dtype=float)
        if self.columns:
            n = len(next(iter(self.columns.values())))
            if arr.size != n:
                raise DataError(
                    f"column {label!r} has {arr.size} values, figure has {n}"
                )
        self.columns[label] = arr

    def to_csv(self) -> str:
        if not self.columns:
            raise DataError("figure has no columns")
        buf = io.StringIO()
        writer = csv.writer(buf)
        labels = list(self.columns)
        writer.writerow(labels)
        for row in zip(*(self.columns[label] for label in labels)):
            writer.writerow([f"{v:.6g}" if v == v else "" for v in row])
        return buf.getvalue()

    def save(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            fh.write(self.to_csv())

    def summary(self) -> dict[str, tuple[float, float]]:
        """(min, max) per column — a quick shape check without plotting."""
        out = {}
        for label, values in self.columns.items():
            finite = values[np.isfinite(values)]
            if finite.size:
                out[label] = (float(finite.min()), float(finite.max()))
        return out


def prediction_chart(
    name: str, history: TimeSeries, actual: TimeSeries, forecast: Forecast
) -> FigureData:
    """The data behind a Figure 6/7-style panel.

    Columns: timestamp, the training history (blue region), the held-out
    actuals and the prediction with its error bars (yellow region), all
    aligned on one time axis with NaN padding.
    """
    n_hist = len(history)
    n_fc = forecast.horizon
    total = n_hist + n_fc
    pad = np.full(total, np.nan)

    fig = FigureData(name=name)
    timestamps = np.concatenate([history.timestamps, forecast.mean.timestamps])
    fig.add("timestamp", timestamps)

    hist_col = pad.copy()
    hist_col[:n_hist] = history.values
    fig.add("history", hist_col)

    actual_col = pad.copy()
    actual_col[n_hist : n_hist + min(len(actual), n_fc)] = actual.values[:n_fc]
    fig.add("actual", actual_col)

    for label, series in (
        ("prediction", forecast.mean),
        ("lower", forecast.lower),
        ("upper", forecast.upper),
    ):
        col = pad.copy()
        col[n_hist:] = series.values
        fig.add(label, col)
    return fig


def workload_chart(name: str, metrics: dict[str, TimeSeries]) -> FigureData:
    """The data behind a Figure 2/3-style workload-description panel."""
    if not metrics:
        raise DataError("no metric series supplied")
    first = next(iter(metrics.values()))
    fig = FigureData(name=name)
    fig.add("timestamp", first.timestamps)
    for label, series in metrics.items():
        if len(series) != len(first):
            raise DataError("all metric series must share one grid")
        fig.add(label, series.values)
    return fig
