"""Control-plane mechanics: process workers, rebalance, error handling."""

import numpy as np
import pytest

from repro.agent import AgentSample
from repro.exceptions import DataError
from repro.shard import ShardedRuntime
from repro.stream import StreamConfig

STEP = 900.0


def polls(n_hours, value, start_hour=0, instance="db1", metric="cpu"):
    return [
        AgentSample(
            instance=instance,
            metric=metric,
            timestamp=(start_hour * 4 + i) * STEP,
            value=float(value + 8 * np.sin(i / 4)),
        )
        for i in range(int(n_hours * 4))
    ]


def stream(keys=("db1", "db2", "db3", "db4"), hours=30):
    out = []
    for k, inst in enumerate(keys):
        out += polls(hours, 40 + 5 * k, instance=inst)
    out.sort(key=lambda s: s.timestamp)
    return out


CONFIG = StreamConfig(
    thresholds={"cpu": 100.0},
    batch_polls=64,
    min_observations=24,
    seed=7,
)


class TestLifecycle:
    def test_validation(self):
        with pytest.raises(DataError):
            ShardedRuntime(0, processes=False)
        with pytest.raises(DataError):
            ShardedRuntime(2, processes=False, pipeline_depth=0)
        rt = ShardedRuntime(2, processes=False)
        with pytest.raises(DataError):
            rt.run([])
        rt.close()

    def test_close_is_idempotent(self):
        rt = ShardedRuntime(2, config=CONFIG, processes=False)
        rt.run(stream())
        rt.close()
        rt.close()

    def test_context_manager(self):
        with ShardedRuntime(2, config=CONFIG, processes=False) as rt:
            ticks = rt.run(stream())
            assert ticks


class TestProcessWorkers:
    def test_process_mode_runs_and_merges(self):
        with ShardedRuntime(2, config=CONFIG, processes=True) as rt:
            ticks = rt.run(stream())
            rt.finish()
            stats = rt.shard_stats()
            assert [s["shard"] for s in stats] == [0, 1]
            assert sum(s["counters"].get("windows_closed", 0) for s in stats) > 0
            assert all(s["process_cpu_seconds"] > 0 for s in stats)
            assert ticks

    def test_resync_counts_across_shards(self):
        with ShardedRuntime(2, config=CONFIG, processes=True) as rt:
            rt.run(stream())
            rt.finish()
            result = rt.resync()
            # too few observations for the real grid: every key lands in
            # `failed`, but the per-shard counts must still sum to the
            # whole estate
            assert result["modelled"] + result["failed"] == 4

    def test_per_shard_repository_partitions(self, tmp_path):
        url = f"sqlite://{tmp_path}/part{{shard}}.db"
        with ShardedRuntime(2, config=CONFIG, processes=True, repo_url=url) as rt:
            rt.run(stream())
            rt.finish()
            persisted = rt.telemetry().counters.get("repository_windows_persisted", 0)
            assert persisted > 0
        assert (tmp_path / "part0.db").exists()
        assert (tmp_path / "part1.db").exists()

    def test_worker_command_error_propagates_with_shard_id(self):
        rt = ShardedRuntime(2, config=CONFIG, processes=True)
        try:
            seq = rt._next_seq()
            for shard in rt._shards:
                shard.send(seq, "no-such-op", None)
            with pytest.raises(RuntimeError, match="shard 0"):
                rt._collect(seq)
        finally:
            rt.close()


class TestRebalance:
    def test_grow_preserves_window_stream(self):
        """Growing mid-stream loses no windows: the migrated keys carry
        their open buffers and grid anchors to their new shards."""
        data = stream(hours=48)
        half = len(data) // 2
        with ShardedRuntime(2, config=CONFIG, processes=False) as rt:
            rt.run(data[:half])
            info = rt.rebalance(4)
            assert rt.n_shards == 4
            rt.run(data[half:])
            rt.finish()
            total = rt.telemetry().counters.get("windows_closed", 0)
        with ShardedRuntime(1, config=CONFIG, processes=False) as ref:
            ref.run(data)
            ref.finish()
            expected = ref.telemetry().counters.get("windows_closed", 0)
        assert total == expected
        assert info["n_shards"] == 4

    def test_shrink_stops_surplus_workers(self):
        data = stream(hours=48)
        half = len(data) // 2
        with ShardedRuntime(4, config=CONFIG, processes=True) as rt:
            rt.run(data[:half])
            info = rt.rebalance(2)
            assert rt.n_shards == 2
            assert info["moved"] >= 1
            rt.run(data[half:])
            rt.finish()
            assert len(rt.shard_stats()) == 2

    def test_noop_rebalance(self):
        with ShardedRuntime(2, config=CONFIG, processes=False) as rt:
            rt.run(stream())
            assert rt.rebalance(2) == {"moved": 0, "n_shards": 2}

    def test_rebalance_validation(self):
        with ShardedRuntime(2, config=CONFIG, processes=False) as rt:
            with pytest.raises(DataError):
                rt.rebalance(0)
