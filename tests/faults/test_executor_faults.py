"""Executor fault injection and the ExecutionPolicy's bounded task retry."""

import pytest

from repro.engine.executor import (
    ExecutionPolicy,
    PoolExecutor,
    SerialExecutor,
)
from repro.exceptions import DataError
from repro.faults.plan import FaultInjector, FaultKind, FaultPlan, FaultRule


def square(x):
    return x * x


def injector_for(kind, **kw):
    rule = FaultRule(site="executor.submit", kind=kind, **kw)
    return FaultInjector(FaultPlan(rules=(rule,)))


class TestExecutionPolicy:
    def test_defaults_preserve_historical_behaviour(self):
        policy = ExecutionPolicy()
        assert policy.task_retries == 0
        assert not policy.retry_timed_out
        assert policy.rebuild_broken_pool

    def test_negative_retries_rejected(self):
        with pytest.raises(DataError, match="task_retries"):
            ExecutionPolicy(task_retries=-1)

    def test_pool_rebuild_knob_reaches_the_pool(self):
        keep = PoolExecutor(max_workers=2)
        crash = PoolExecutor(
            max_workers=2, policy=ExecutionPolicy(rebuild_broken_pool=False)
        )
        assert keep._rebuild_broken
        assert not crash._rebuild_broken
        keep.close()
        crash.close()


class TestInjection:
    def test_injected_errors_become_chaos_reports(self):
        executor = SerialExecutor(
            injector=injector_for(FaultKind.TRANSIENT_ERROR, every=1, limit=2)
        )
        reports = executor.run(square, [1, 2, 3, 4])
        assert [r.index for r in reports] == [0, 1, 2, 3]
        assert [r.ok for r in reports] == [False, False, True, True]
        assert reports[0].worker == "chaos"
        assert "InjectedFault" in reports[0].error
        assert [r.value for r in reports[2:]] == [9, 16]

    def test_injected_crash_and_slow_shapes(self):
        rules = (
            FaultRule(site="executor.submit", kind=FaultKind.WORKER_CRASH, every=1, limit=1),
            FaultRule(
                site="executor.submit", kind=FaultKind.SLOW_CALL, every=1, start=1, limit=1
            ),
        )
        executor = SerialExecutor(injector=FaultInjector(FaultPlan(rules=rules)))
        crash, slow, ok = executor.run(square, [1, 2, 3])
        assert "worker died" in crash.error and not crash.timed_out
        assert slow.timed_out
        assert ok.value == 9

    def test_empty_injector_is_bit_for_bit_noop(self):
        plain = SerialExecutor().run(square, [1, 2, 3])
        hooked = SerialExecutor(
            policy=ExecutionPolicy(task_retries=3), injector=FaultInjector()
        ).run(square, [1, 2, 3])
        assert [(r.index, r.value, r.error, r.timed_out) for r in plain] == [
            (r.index, r.value, r.error, r.timed_out) for r in hooked
        ]


class TestTaskRetry:
    def test_retry_recovers_injected_transient_errors(self):
        executor = SerialExecutor(
            policy=ExecutionPolicy(task_retries=1),
            injector=injector_for(FaultKind.TRANSIENT_ERROR, every=1, limit=2),
        )
        reports = executor.run(square, [1, 2, 3])
        assert all(r.ok for r in reports)
        assert [r.value for r in reports] == [1, 4, 9]
        assert executor.fault_counters["tasks_retried"] == 2
        assert executor.fault_counters["tasks_recovered"] == 2
        assert "task_retries_exhausted" not in executor.fault_counters

    def test_no_policy_keeps_fail_fast(self):
        executor = SerialExecutor(
            injector=injector_for(FaultKind.TRANSIENT_ERROR, every=1, limit=1)
        )
        reports = executor.run(square, [1, 2])
        assert not reports[0].ok
        assert executor.fault_counters == {}

    def test_retries_exhaust_on_persistent_failure(self):
        def always_fails(x):
            raise RuntimeError("hard down")

        executor = SerialExecutor(policy=ExecutionPolicy(task_retries=2))
        reports = executor.run(always_fails, [1, 2])
        assert all(not r.ok for r in reports)
        assert executor.fault_counters["tasks_retried"] == 4  # 2 tasks × 2 rounds
        assert executor.fault_counters["task_retries_exhausted"] == 2

    def test_timed_out_tasks_not_retried_by_default(self):
        executor = SerialExecutor(
            policy=ExecutionPolicy(task_retries=2),
            injector=injector_for(FaultKind.SLOW_CALL, every=1, limit=1),
        )
        reports = executor.run(square, [1, 2])
        assert reports[0].timed_out
        assert "tasks_retried" not in executor.fault_counters

    def test_retry_timed_out_opt_in(self):
        executor = SerialExecutor(
            policy=ExecutionPolicy(task_retries=1, retry_timed_out=True),
            injector=injector_for(FaultKind.SLOW_CALL, every=1, limit=1),
        )
        reports = executor.run(square, [1, 2])
        assert all(r.ok for r in reports)
        assert executor.fault_counters["tasks_recovered"] == 1

    def test_real_failures_also_retry(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first call loses")
            return x * x

        executor = SerialExecutor(policy=ExecutionPolicy(task_retries=1))
        reports = executor.run(flaky, [3])
        assert reports[0].ok and reports[0].value == 9
        assert executor.fault_counters["tasks_recovered"] == 1
