"""Engine scaling: grid evaluation wall time across worker counts.

Section 6.3's scaling worry is concrete — four nodes would mean "nearly
24000" models — and the engine's answer is a reusable worker pool shared
across selections. This bench times the same SARIMAX candidate sweep on
the serial executor and on process pools of 2 and 4 workers, reusing each
pool across a warm-up and a measured run (so pool spawn cost, which the
engine pays once per process, is excluded).

The table reports wall time and speedup per worker count. On a single-CPU
host pools cannot win — the assertion is therefore *correctness*, not
speed: every executor must produce the identical leaderboard.
"""

import time

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.engine import PoolExecutor, SerialExecutor
from repro.reporting import Table
from repro.selection import evaluate_grid, sarimax_grid

N_WORKERS = (1, 2, 4)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    t = np.arange(1100)
    values = 50 + 0.02 * t + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 1100)
    series = TimeSeries(values, Frequency.HOURLY, name="cpu")
    train, test = series.train_test_split()
    # A 1-in-12 stratified sample of the 660 grid keeps every (d, D) shape
    # while the bench stays minutes-scale even at one worker.
    specs = sarimax_grid(24)[::12]
    return train, test, specs


def _timed_run(executor, train, test, specs):
    t0 = time.perf_counter()
    results = evaluate_grid(specs, train, test, executor=executor)
    return results, time.perf_counter() - t0


def test_engine_scaling(benchmark, workload):
    train, test, specs = workload
    benchmark(lambda: evaluate_grid(specs[:4], train, test))

    runs = {}
    for n in N_WORKERS:
        if n == 1:
            executor = SerialExecutor()
            runs[n] = _timed_run(executor, train, test, specs)
        else:
            with PoolExecutor(max_workers=n) as pool:
                evaluate_grid(specs[:2], train, test, executor=pool)  # warm the pool
                runs[n] = _timed_run(pool, train, test, specs)
                assert pool.pools_created == 1  # warm-up and run shared one pool

    serial_time = runs[1][1]
    table = Table(
        ["Workers", "Candidates", "Wall time (s)", "Speedup"],
        title="Engine scaling: SARIMAX grid evaluation",
    )
    for n in N_WORKERS:
        __, seconds = runs[n]
        table.add_row([str(n), str(len(specs)), seconds, f"{serial_time / seconds:.2f}x"])
    print()
    table.print()

    baseline = runs[1][0]
    for n in N_WORKERS[1:]:
        results, __ = runs[n]
        assert [r.spec for r in results] == [r.spec for r in baseline]
        assert np.allclose(
            [r.rmse for r in results if np.isfinite(r.rmse)],
            [r.rmse for r in baseline if np.isfinite(r.rmse)],
            rtol=1e-10,
        )
