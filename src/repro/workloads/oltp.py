"""Experiment Two: the complicated OLTP workload (paper Section 7.2).

Parameters straight from the paper — all four challenges in one scenario:

* OLTP users (TPC-E-like) connecting to the two-node cluster;
* **trend** (C2): the user base grows by 50 users per day;
* **multiple seasonality** (C1 + C3): the daily connection cycle plus two
  login surges — 1000 users at 07:00 for 4 hours and another 1000 users at
  09:00 for 1 hour;
* **shocks** (C4): a Recovery Manager backup every 6 hours, producing the
  large spikes in logical IOPS of Figure 3(c) and the paper's "4 exogenous
  variables";
* 30 days of activity, metrics captured every 15 minutes and aggregated
  hourly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import BackupPolicy, ClusterRun, ClusteredDatabase, ConnectionBalancer
from .database import OLTP_PROFILE, DatabaseInstance
from .sessions import LoginSurge, UserPopulation

__all__ = ["OltpExperiment", "oltp_cluster", "generate_oltp_run"]

INSTANCE_NAMES = ("cdbm011", "cdbm012")


@dataclass(frozen=True)
class OltpExperiment:
    """Configuration of Experiment Two, with paper defaults."""

    base_users: int = 2000
    growth_per_day: float = 50.0
    days: float = 43.0
    backup_every_hours: float = 6.0
    backup_duration_hours: float = 0.75
    seed: int = 2021

    def build(self) -> ClusteredDatabase:
        population = UserPopulation(
            base_users=float(self.base_users),
            growth_per_day=self.growth_per_day,
            surges=(
                LoginSurge(users=1000, start_hour=7.0, duration_hours=4.0),
                LoginSurge(users=1000, start_hour=9.0, duration_hours=1.0),
            ),
            diurnal_fraction=0.4,
            peak_hour=13.0,
            connection_noise_cv=0.02,
        )
        nodes = [
            DatabaseInstance(
                name=INSTANCE_NAMES[0],
                profile=OLTP_PROFILE,
                backup_iops=450_000.0,
                backup_cpu=10.0,
            ),
            DatabaseInstance(
                name=INSTANCE_NAMES[1],
                profile=OLTP_PROFILE,
                backup_iops=450_000.0,
                backup_cpu=10.0,
            ),
        ]
        backups = [
            BackupPolicy(
                every_hours=self.backup_every_hours,
                at_hour=0.0,
                duration_hours=self.backup_duration_hours,
                node_index=0,
            )
        ]
        return ClusteredDatabase(
            nodes=nodes,
            population=population,
            balancer=ConnectionBalancer(n_nodes=2, imbalance_cv=0.03),
            backups=backups,
        )


def oltp_cluster(config: OltpExperiment | None = None) -> ClusteredDatabase:
    """The Experiment Two cluster with paper-default parameters."""
    return (config or OltpExperiment()).build()


def generate_oltp_run(
    config: OltpExperiment | None = None, hourly: bool = True
) -> ClusterRun:
    """Simulate Experiment Two and return the metric traces."""
    config = config or OltpExperiment()
    run = config.build().run(days=config.days, step_minutes=15, seed=config.seed)
    return run.hourly() if hourly else run
