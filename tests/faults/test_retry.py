"""Tests for the retry/backoff policy and its clock-routed runner."""

import pytest

from repro.exceptions import DataError
from repro.faults.retry import RetryPolicy, RetryRunner
from repro.stream.clock import ManualClock


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(DataError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(DataError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(DataError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(DataError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_delay_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, seed=9)
        assert list(policy.delays()) == list(policy.delays())

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.5,
            multiplier=2.0,
            max_delay=2.0,
            jitter=0.0,
            budget=100.0,
        )
        assert list(policy.delays()) == [0.5, 1.0, 2.0, 2.0, 2.0]

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.25
        )
        for delay in policy.delays():
            assert 1.0 <= delay <= 1.25

    def test_budget_caps_total_backoff(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=1.0, jitter=0.0, budget=2.5
        )
        delays = list(policy.delays())
        assert delays == [1.0, 1.0]  # a third delay would blow the budget
        assert sum(delays) <= policy.budget

    def test_single_attempt_never_waits(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []


class TestRetryRunner:
    def flaky(self, fail_times, exc=ValueError):
        state = {"left": fail_times, "calls": 0}

        def fn():
            state["calls"] += 1
            if state["left"] > 0:
                state["left"] -= 1
                raise exc("transient")
            return "ok"

        return fn, state

    def test_recovers_and_counts(self):
        fn, state = self.flaky(2)
        runner = RetryRunner(
            policy=RetryPolicy(max_attempts=5, jitter=0.0), name="probe"
        )
        assert runner.call(fn, retry_on=(ValueError,)) == "ok"
        assert state["calls"] == 3
        assert runner.counters["probe_retries"] == 2
        assert runner.counters["probe_recoveries"] == 1
        assert "probe_exhausted" not in runner.counters

    def test_backoff_advances_manual_clock(self):
        fn, __ = self.flaky(2)
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=10.0,
            jitter=0.0, budget=100.0,
        )
        runner = RetryRunner(policy=policy, clock=clock, name="probe")
        runner.call(fn, retry_on=(ValueError,))
        assert clock.now() == pytest.approx(3.0)  # 1s + 2s, no sleeping
        assert runner.counters["probe_wait_ms"] == 3000

    def test_waiter_takes_precedence_over_clock(self):
        fn, __ = self.flaky(1)
        clock = ManualClock()
        waited = []
        runner = RetryRunner(
            policy=RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0),
            clock=clock,
            waiter=waited.append,
            name="probe",
        )
        runner.call(fn, retry_on=(ValueError,))
        assert waited == [0.5]
        assert clock.now() == 0.0

    def test_exhaustion_reraises_final_error(self):
        fn, state = self.flaky(99)
        runner = RetryRunner(policy=RetryPolicy(max_attempts=3, jitter=0.0), name="probe")
        with pytest.raises(ValueError, match="transient"):
            runner.call(fn, retry_on=(ValueError,))
        assert state["calls"] == 3
        assert runner.counters["probe_retries"] == 2
        assert runner.counters["probe_exhausted"] == 1

    def test_non_matching_exception_propagates_immediately(self):
        fn, state = self.flaky(1, exc=KeyError)
        runner = RetryRunner(name="probe")
        with pytest.raises(KeyError):
            runner.call(fn, retry_on=(ValueError,))
        assert state["calls"] == 1
        assert runner.counters == {}

    def test_on_retry_callback_sees_each_failure(self):
        fn, __ = self.flaky(2)
        seen = []
        runner = RetryRunner(policy=RetryPolicy(max_attempts=5, jitter=0.0))
        runner.call(
            fn,
            retry_on=(ValueError,),
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "transient"), (2, "transient")]
