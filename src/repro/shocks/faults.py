"""Fault handling: discard crashes so forecasts reflect the stable system.

From the paper's conclusion: "if a system crashes we discard it, however
if the system continually crashes the learning engine will see it as a
behaviour … manual override is needed to accommodate systems that are
*in-fault* as we suggest that forecasting will not be a true reflection of
the system when stable."

This module implements that policy:

* :func:`detect_faults` finds *collapse* episodes — runs of samples far
  below the local baseline (crashes, fail-overs) that do **not** recur
  often enough to be behaviour (> ``min_occurrences`` per the shocks
  module would promote them);
* :func:`discard_faults` masks those samples and repairs them by linear
  interpolation, producing the "stable system" series the models should
  learn from;
* :class:`FaultPolicy` bundles the knobs, including the manual
  ``in_fault`` override: an operator who knows the system is mid-incident
  can disable discarding (so nothing is hidden) or disable forecasting
  altogether.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..core.preprocessing import interpolate_missing
from ..core.timeseries import TimeSeries
from ..exceptions import DataError
from .detector import ShockEvent, detect_shocks, group_recurring

__all__ = ["FaultEpisode", "FaultPolicy", "FaultVerdict", "detect_faults", "discard_faults"]


@dataclass(frozen=True)
class FaultEpisode:
    """A contiguous run of crash/collapse samples."""

    start_index: int
    length: int
    mean_magnitude: float  # negative: how far below baseline

    @property
    def end_index(self) -> int:
        return self.start_index + self.length


class FaultVerdict(enum.Enum):
    """What the fault analysis concluded about the system."""

    STABLE = "stable"
    OCCASIONAL_FAULTS = "occasional faults discarded"
    IN_FAULT = "system in fault; forecasting inadvisable"


@dataclass(frozen=True)
class FaultPolicy:
    """Operator policy for fault handling.

    Attributes
    ----------
    z_threshold:
        Collapse detection sensitivity (robust z-score units below the
        baseline).
    in_fault_episode_limit:
        More episodes than this in one window ⇒ the system is *in fault*
        and the verdict recommends not forecasting at all.
    manual_override:
        ``None`` for automatic handling; ``"keep"`` forces crashes to stay
        in the data (operator wants the model to see them); ``"discard"``
        forces discarding even for an in-fault system.
    """

    z_threshold: float = 3.5
    in_fault_episode_limit: int = 3
    manual_override: str | None = None
    min_drop_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.manual_override not in (None, "keep", "discard"):
            raise DataError("manual_override must be None, 'keep' or 'discard'")
        if self.in_fault_episode_limit < 1:
            raise DataError("in_fault_episode_limit must be >= 1")
        if not 0.0 <= self.min_drop_fraction < 1.0:
            raise DataError("min_drop_fraction must be in [0, 1)")


def _collapse_events(
    series: TimeSeries, period: int | None, z_threshold: float
) -> list[ShockEvent]:
    """Negative-only shock events (collapses below baseline)."""
    events = detect_shocks(series, period=period, z_threshold=z_threshold)
    return [e for e in events if e.magnitude < 0]


def detect_faults(
    series: TimeSeries,
    period: int | None = 24,
    policy: FaultPolicy | None = None,
    candidate_periods: tuple[int, ...] = (24, 168),
) -> list[FaultEpisode]:
    """Find non-recurring collapse episodes (crashes/fail-overs).

    Collapses that recur on a schedule (e.g. a nightly maintenance stop)
    are behaviour, not faults — they are excluded here exactly as the
    shocks module would promote them to exogenous variables.
    """
    policy = policy or FaultPolicy()
    events = _collapse_events(series, period, policy.z_threshold)
    if not events:
        return []
    # Remove events explained by a recurring schedule.
    recurring = group_recurring(
        events,
        n_samples=len(series),
        candidate_periods=candidate_periods,
        tolerance=1,
    )
    scheduled: set[int] = set()
    for shock in recurring:
        for e in events:
            offset = (e.index - shock.phase) % shock.period
            if min(offset, shock.period - offset) <= 1:
                scheduled.add(e.index)
    residual = sorted(e.index for e in events if e.index not in scheduled)
    magnitudes = {e.index: e.magnitude for e in events}
    z_scores = {e.index: e.z_score for e in events}

    # A crash must lose a meaningful fraction of the signal range; a lone
    # 3.9-sigma noise excursion below the baseline is not a fault.
    finite = series.values[np.isfinite(series.values)]
    p5, p95 = np.percentile(finite, [5.0, 95.0])
    min_drop = policy.min_drop_fraction * max(float(p95 - p5), 1e-12)

    episodes: list[FaultEpisode] = []
    i = 0
    while i < len(residual):
        start = residual[i]
        j = i
        while j + 1 < len(residual) and residual[j + 1] == residual[j] + 1:
            j += 1
        indices = residual[i : j + 1]
        mean_mag = float(np.mean([magnitudes[k] for k in indices]))
        mean_z = float(np.mean([z_scores[k] for k in indices]))
        # Both criteria: large relative to the signal's range AND an
        # extreme outlier in noise units — a flat noisy series can meet
        # the first by accident but never the second.
        if abs(mean_mag) >= min_drop and abs(mean_z) >= 2.0 * policy.z_threshold:
            episodes.append(
                FaultEpisode(
                    start_index=int(start),
                    length=len(indices),
                    mean_magnitude=mean_mag,
                )
            )
        i = j + 1
    return episodes


@dataclass(frozen=True)
class FaultAnalysis:
    """Result of :func:`discard_faults`."""

    series: TimeSeries
    episodes: tuple[FaultEpisode, ...]
    verdict: FaultVerdict
    discarded_samples: int

    def describe(self) -> str:
        return (
            f"{self.verdict.value}: {len(self.episodes)} episode(s), "
            f"{self.discarded_samples} sample(s) discarded"
        )


def discard_faults(
    series: TimeSeries,
    period: int | None = 24,
    policy: FaultPolicy | None = None,
) -> FaultAnalysis:
    """Apply the paper's crash-discarding rule to a metric series.

    Returns the repaired series (crash samples interpolated away), the
    episodes found, and a verdict. Under ``manual_override="keep"`` the
    series is returned untouched; an in-fault system (more episodes than
    the policy limit) is also returned untouched unless the operator
    forces ``"discard"`` — forecasting it would not reflect the stable
    system either way, and the verdict says so.
    """
    policy = policy or FaultPolicy()
    episodes = tuple(detect_faults(series, period=period, policy=policy))
    if not episodes:
        return FaultAnalysis(series, episodes, FaultVerdict.STABLE, 0)

    in_fault = len(episodes) > policy.in_fault_episode_limit
    verdict = FaultVerdict.IN_FAULT if in_fault else FaultVerdict.OCCASIONAL_FAULTS

    keep = policy.manual_override == "keep" or (
        in_fault and policy.manual_override != "discard"
    )
    if keep:
        return FaultAnalysis(series, episodes, verdict, 0)

    values = series.values.copy()
    discarded = 0
    for episode in episodes:
        values[episode.start_index : episode.end_index] = np.nan
        discarded += episode.length
    repaired = interpolate_missing(series.with_values(values))
    return FaultAnalysis(repaired, episodes, verdict, discarded)
