"""Tests for the Figure 4 auto-selection pipeline."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries, rmse
from repro.exceptions import SelectionError
from repro.selection import AutoConfig, auto_forecast, auto_select


@pytest.fixture(scope="module")
def shocked_long():
    """1100 hourly points: daily cycle + trend + nightly shock."""
    rng = np.random.default_rng(7)
    t = np.arange(1100)
    y = (
        100.0
        + 0.05 * t
        + 12.0 * np.sin(2 * np.pi * t / 24)
        + rng.normal(0, 2.0, 1100)
    )
    y[(t % 24) == 5] += 45.0
    return TimeSeries(y, Frequency.HOURLY, name="cpu")


class TestAutoConfig:
    def test_technique_validated(self):
        with pytest.raises(SelectionError):
            AutoConfig(technique="magic")


class TestAutoSelect:
    def test_full_pipeline(self, shocked_long):
        outcome = auto_select(shocked_long, config=AutoConfig())
        assert outcome.test_rmse < 5.0
        assert outcome.n_evaluated > 10
        assert outcome.seasonality is not None
        assert 24 in outcome.seasonality.periods

    def test_shock_learned(self, shocked_long):
        outcome = auto_select(shocked_long, config=AutoConfig())
        assert outcome.shock_calendar is not None
        assert outcome.shock_calendar.n_columns >= 1
        assert outcome.shock_calendar.shocks[0].period == 24

    def test_hes_branch(self, shocked_long):
        outcome = auto_select(shocked_long, config=AutoConfig(technique="hes"))
        assert outcome.technique == "hes"
        assert outcome.model.label() == "HES"
        assert outcome.best_spec is None

    def test_sarimax_branch(self, shocked_long):
        outcome = auto_select(shocked_long, config=AutoConfig(technique="sarimax"))
        assert outcome.technique == "sarimax"
        assert outcome.best_spec is not None

    def test_auto_prefers_better_branch(self, shocked_long):
        outcome = auto_select(shocked_long, config=AutoConfig(technique="auto"))
        assert outcome.hes_rmse is not None
        if outcome.technique == "sarimax":
            assert outcome.test_rmse <= outcome.hes_rmse

    def test_missing_values_repaired(self, shocked_long):
        values = shocked_long.values.copy()
        values[50:55] = np.nan
        gappy = shocked_long.with_values(values)
        outcome = auto_select(gappy, config=AutoConfig(technique="hes"))
        assert np.isfinite(outcome.test_rmse)

    def test_explicit_split_honoured(self, shocked_long):
        train, test = shocked_long.split(1000)
        outcome = auto_select(shocked_long, config=AutoConfig(), train=train, test=test)
        assert np.isfinite(outcome.test_rmse)

    def test_short_series_fallback_split(self):
        rng = np.random.default_rng(8)
        t = np.arange(400)  # below the 1008 Table 1 budget
        y = 50 + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 400)
        outcome = auto_select(TimeSeries(y, Frequency.HOURLY), config=AutoConfig())
        assert outcome.test_rmse < 3.0

    def test_leaderboard_sorted(self, shocked_long):
        outcome = auto_select(shocked_long, config=AutoConfig(technique="sarimax"))
        rmses = [r.rmse for r in outcome.leaderboard if not r.failed]
        assert rmses == sorted(rmses)

    def test_refit_on_full_extends_training(self, shocked_long):
        outcome = auto_select(
            shocked_long, config=AutoConfig(technique="sarimax", refit_on_full=True)
        )
        assert len(outcome.model.train) == len(shocked_long)

    def test_no_refit_keeps_train_window(self, shocked_long):
        outcome = auto_select(
            shocked_long, config=AutoConfig(technique="sarimax", refit_on_full=False)
        )
        assert len(outcome.model.train) == 984


class TestAutoForecast:
    def test_default_horizon_from_table1(self, shocked_long):
        forecast, outcome = auto_forecast(shocked_long, config=AutoConfig())
        assert forecast.horizon == 24

    def test_forecast_accuracy_vs_future(self):
        rng = np.random.default_rng(9)
        t = np.arange(1100 + 24)
        y = 100 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.5, t.size)
        series = TimeSeries(y[:1100], Frequency.HOURLY)
        forecast, __ = auto_forecast(series, config=AutoConfig())
        assert rmse(y[1100:1124], forecast.mean.values) < 4.0

    def test_custom_horizon(self, shocked_long):
        forecast, __ = auto_forecast(shocked_long, horizon=48, config=AutoConfig())
        assert forecast.horizon == 48

    def test_shock_continued_into_future(self, shocked_long):
        forecast, outcome = auto_forecast(shocked_long, horizon=48, config=AutoConfig())
        if outcome.best_spec is not None and outcome.best_spec.exog_columns:
            # Shock fires at phase 5 of each day; forecast must spike there.
            phases = (1100 + np.arange(48)) % 24
            spike_hours = forecast.mean.values[phases == 5]
            quiet_hours = forecast.mean.values[phases == 7]
            assert spike_hours.mean() > quiet_hours.mean() + 10
