"""Tests for Fourier regressors, the periodogram and seasonality detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TimeSeries, detect_seasonalities, fourier_terms, periodogram
from repro.exceptions import DataError


class TestFourierTerms:
    def test_shape(self):
        X = fourier_terms(100, [24, 168], [3, 2])
        assert X.shape == (100, 2 * (3 + 2))

    def test_columns_bounded(self):
        X = fourier_terms(500, [24], [3])
        assert np.all(np.abs(X) <= 1.0 + 1e-12)

    def test_periodicity(self):
        X = fourier_terms(96, [24], [2])
        assert np.allclose(X[:24], X[24:48])

    def test_start_continues_phase(self):
        full = fourier_terms(200, [24], [2])
        tail = fourier_terms(50, [24], [2], start=150)
        assert np.allclose(full[150:], tail)

    def test_orthogonality_over_full_periods(self):
        X = fourier_terms(240, [24], [3])
        gram = X.T @ X
        off_diag = gram - np.diag(np.diag(gram))
        assert np.all(np.abs(off_diag) < 1e-8)

    def test_validation(self):
        with pytest.raises(DataError):
            fourier_terms(10, [24], [3, 2])
        with pytest.raises(DataError):
            fourier_terms(0, [24], [1])
        with pytest.raises(DataError):
            fourier_terms(10, [1], [1])
        with pytest.raises(DataError):
            fourier_terms(10, [24], [0])
        with pytest.raises(DataError):
            fourier_terms(10, [4], [3])  # 2K > P


class TestPeriodogram:
    def test_finds_dominant_period(self):
        t = np.arange(480)
        y = np.sin(2 * np.pi * t / 24)
        periods, power = periodogram(y)
        assert periods[0] == pytest.approx(24.0, rel=0.05)

    def test_detrending_removes_trend_peak(self):
        t = np.arange(480.0)
        y = 0.5 * t + np.sin(2 * np.pi * t / 24)
        periods, __ = periodogram(y, detrend=True)
        assert periods[0] == pytest.approx(24.0, rel=0.05)

    def test_power_sorted_descending(self):
        rng = np.random.default_rng(0)
        __, power = periodogram(rng.normal(size=128))
        assert np.all(np.diff(power) <= 1e-12)

    def test_too_short(self):
        with pytest.raises(DataError):
            periodogram(np.arange(5.0))


class TestDetectSeasonalities:
    def test_single_daily(self, daily_series):
        report = detect_seasonalities(daily_series, candidates=[24, 168])
        assert report.periods == [24]
        assert not report.multiple
        assert report.primary == 24

    def test_daily_plus_weekly(self, multiseasonal_series):
        report = detect_seasonalities(multiseasonal_series, candidates=[24, 168])
        assert report.periods == [24, 168]
        assert report.multiple

    def test_white_noise_none(self, white_noise):
        report = detect_seasonalities(white_noise, candidates=[24])
        assert report.periods == []
        assert report.primary is None

    def test_discovers_unlisted_period(self):
        rng = np.random.default_rng(5)
        t = np.arange(600)
        y = 10 * np.sin(2 * np.pi * t / 37) + rng.normal(0, 0.5, 600)
        report = detect_seasonalities(TimeSeries(y))
        # Periodogram resolution near 37 is ~1 sample at this length.
        assert any(abs(p - 37) <= 1 for p in report.periods)

    def test_spike_train_attributed_to_daily(self):
        # 6-hourly backups are 24-periodic; the detector must not invent
        # spurious short periods for them once 24 is confirmed.
        rng = np.random.default_rng(6)
        t = np.arange(720)
        y = 100 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 720)
        y[(t % 6) == 0] += 50
        report = detect_seasonalities(TimeSeries(y), candidates=[24, 168])
        assert 24 in report.periods
        assert 168 not in report.periods

    def test_strengths_aligned_with_periods(self, multiseasonal_series):
        report = detect_seasonalities(multiseasonal_series, candidates=[24, 168])
        assert len(report.strengths) == len(report.periods)
        assert all(0.0 <= s <= 1.0 for s in report.strengths)

    def test_max_periods_respected(self, multiseasonal_series):
        report = detect_seasonalities(
            multiseasonal_series, candidates=[24, 168], max_periods=1
        )
        assert len(report.periods) == 1


class TestFourierProperties:
    @given(
        st.integers(min_value=2, max_value=50),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_design_matrix_shape_invariant(self, period, order):
        if 2 * order > period:
            order = max(1, period // 2)
        X = fourier_terms(3 * period, [period], [order])
        assert X.shape == (3 * period, 2 * order)
        # One full period later the regressors repeat.
        Y = fourier_terms(3 * period, [period], [order], start=period)
        assert np.allclose(X[period : 2 * period], Y[: period])
