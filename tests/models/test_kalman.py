"""Tests for the exact-likelihood Kalman machinery and Arima(method='mle')."""

import numpy as np
import pytest

from repro.core import TimeSeries
from repro.exceptions import ModelError
from repro.models import Arima
from repro.models.kalman import (
    arma_state_space,
    fit_arma_mle,
    kalman_loglike,
    stationary_initialisation,
)


def simulate_arma(phi=(), theta=(), n=400, seed=0):
    rng = np.random.default_rng(seed)
    p, q = len(phi), len(theta)
    burn = 200
    e = rng.normal(0, 1, n + burn)
    x = np.zeros(n + burn)
    for t in range(max(p, q), n + burn):
        x[t] = (
            sum(phi[i] * x[t - 1 - i] for i in range(p))
            + e[t]
            + sum(theta[j] * e[t - 1 - j] for j in range(q))
        )
    return x[burn:]


class TestStateSpace:
    def test_dimensions(self):
        T, R, Z = arma_state_space(np.array([0.5, 0.2]), np.array([0.3]))
        assert T.shape == (2, 2)
        assert R.shape == (2,)
        assert Z.shape == (2,)
        T, R, Z = arma_state_space(np.array([0.5]), np.array([0.3, 0.1]))
        assert T.shape == (3, 3)  # m = max(1, 2+1)

    def test_ar1_transition(self):
        T, R, Z = arma_state_space(np.array([0.7]), np.empty(0))
        assert T[0, 0] == 0.7
        assert R[0] == 1.0

    def test_stationary_covariance_ar1(self):
        # Var of AR(1) with unit innovations: 1 / (1 - phi^2).
        phi = 0.6
        T, R, __ = arma_state_space(np.array([phi]), np.empty(0))
        P0 = stationary_initialisation(T, R)
        assert P0[0, 0] == pytest.approx(1.0 / (1.0 - phi**2))

    def test_stationary_covariance_ma1(self):
        # Var of MA(1): 1 + theta^2.
        theta = 0.4
        T, R, __ = arma_state_space(np.empty(0), np.array([theta]))
        P0 = stationary_initialisation(T, R)
        # y_t = alpha_t[0]; Var(alpha[0]) = 1 + theta^2.
        assert P0[0, 0] == pytest.approx(1.0 + theta**2)


class TestLoglike:
    def test_white_noise_matches_closed_form(self):
        rng = np.random.default_rng(1)
        y = rng.normal(0, 2.0, 300)
        ll, sigma2 = kalman_loglike(y, np.empty(0), np.empty(0))
        sigma2_hat = float(y @ y) / y.size
        expected = -0.5 * y.size * (np.log(2 * np.pi) + 1 + np.log(sigma2_hat))
        assert sigma2 == pytest.approx(sigma2_hat)
        assert ll == pytest.approx(expected)

    def test_true_params_beat_wrong_params(self):
        y = simulate_arma(phi=(0.7,), seed=2)
        ll_true, __ = kalman_loglike(y, np.array([0.7]), np.empty(0))
        ll_wrong, __ = kalman_loglike(y, np.array([0.1]), np.empty(0))
        assert ll_true > ll_wrong

    def test_nonstationary_rejected(self):
        y = simulate_arma(phi=(0.5,), seed=3)
        ll, sigma2 = kalman_loglike(y, np.array([1.05]), np.empty(0))
        assert ll == -np.inf

    def test_noninvertible_rejected(self):
        y = simulate_arma(theta=(0.5,), seed=4)
        ll, __ = kalman_loglike(y, np.empty(0), np.array([1.2]))
        assert ll == -np.inf

    def test_sigma2_recovered(self):
        y = simulate_arma(phi=(0.5,), n=2000, seed=5)
        ll, sigma2 = kalman_loglike(y, np.array([0.5]), np.empty(0))
        assert sigma2 == pytest.approx(1.0, abs=0.1)


class TestMle:
    def test_ar1_recovery(self):
        y = simulate_arma(phi=(0.6,), n=600, seed=6)
        result = fit_arma_mle(y, 1, 0)
        assert result.phi[0] == pytest.approx(0.6, abs=0.08)
        assert np.isfinite(result.loglike)

    def test_ma1_recovery_short_series(self):
        # Exact MLE shines on short series with MA structure.
        y = simulate_arma(theta=(0.5,), n=120, seed=7)
        result = fit_arma_mle(y, 0, 1)
        assert result.theta[0] == pytest.approx(0.5, abs=0.2)

    def test_warm_start_used(self):
        y = simulate_arma(phi=(0.6,), theta=(0.3,), n=500, seed=8)
        result = fit_arma_mle(
            y, 1, 1, start_phi=np.array([0.55]), start_theta=np.array([0.25])
        )
        assert result.phi[0] == pytest.approx(0.6, abs=0.12)
        assert result.theta[0] == pytest.approx(0.3, abs=0.15)

    def test_zero_order(self):
        y = simulate_arma(n=100, seed=9)
        result = fit_arma_mle(y, 0, 0)
        assert result.converged
        assert result.sigma2 == pytest.approx(float(y @ y) / y.size)

    def test_bad_start_shapes_rejected(self):
        with pytest.raises(ModelError):
            fit_arma_mle(np.arange(50.0), 2, 0, start_phi=np.array([0.5]))


class TestArimaMleIntegration:
    def test_mle_close_to_css_on_long_series(self):
        y = simulate_arma(phi=(0.6,), theta=(0.3,), n=1500, seed=10)
        ts = TimeSeries(y)
        css = Arima((1, 0, 1), method="css").fit(ts)
        mle = Arima((1, 0, 1), method="mle").fit(ts)
        assert np.allclose(css.coeffs, mle.coeffs, atol=0.08)

    def test_mle_forecast_works(self):
        y = simulate_arma(phi=(0.7,), n=300, seed=11)
        fit = Arima((1, 0, 0), method="mle").fit(TimeSeries(y + 20))
        fc = fit.forecast(10)
        assert np.isfinite(fc.mean.values).all()
        assert fc.mean.values[-1] == pytest.approx(20.0, abs=1.5)

    def test_mle_with_differencing(self):
        y = np.cumsum(simulate_arma(phi=(0.4,), n=500, seed=12))
        fit = Arima((1, 1, 0), method="mle").fit(TimeSeries(y))
        assert fit.coeffs[0] == pytest.approx(0.4, abs=0.1)

    def test_seasonal_mle_rejected(self):
        with pytest.raises(ModelError):
            Arima((1, 0, 0), seasonal=(1, 0, 0, 24), method="mle")

    def test_unknown_method_rejected(self):
        with pytest.raises(ModelError):
            Arima((1, 0, 0), method="exactly")
