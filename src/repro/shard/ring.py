"""Consistent-hash ring with virtual nodes for stable key→shard placement.

Plain ``hash(key) % N`` remaps nearly every key when N changes — a
resize would tear down every shard's histories, roll chains and alert
streaks at once. The classic consistent-hashing construction bounds
that: each shard owns ``vnodes`` pseudo-random points on a 64-bit ring,
a key belongs to the first shard point at or after its own hash
(wrapping), and adding the (N+1)-th shard therefore steals only the
arcs its new points land on — about 1/(N+1) of all keys, property-tested
in ``tests/shard/test_ring.py``.

Hashes are :func:`hashlib.blake2b` (8-byte digests), keyed by strings,
so placement is stable across processes and Python runs — no
``PYTHONHASHSEED`` dependence — which the multiprocessing control plane
relies on: router and workers can both compute placements and always
agree.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b

from ..exceptions import DataError

__all__ = ["HashRing"]


def _position(token: str) -> int:
    """A stable 64-bit ring position for a token."""
    return int.from_bytes(blake2b(token.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Immutable consistent-hash ring over ``n_shards`` shards.

    Parameters
    ----------
    n_shards:
        How many shards own points on the ring.
    vnodes:
        Virtual nodes per shard. More points smooth the load split and
        shrink the variance of how many keys a resize moves; 64 keeps
        the max/min shard load ratio tight at a few thousand keys while
        the ring stays small enough to rebuild instantly.
    """

    def __init__(self, n_shards: int, vnodes: int = 64) -> None:
        if n_shards < 1:
            raise DataError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise DataError(f"vnodes must be >= 1, got {vnodes}")
        self.n_shards = int(n_shards)
        self.vnodes = int(vnodes)
        points = [
            (_position(f"shard:{shard}:vnode:{v}"), shard)
            for shard in range(self.n_shards)
            for v in range(self.vnodes)
        ]
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, instance: str, metric: str) -> int:
        """The shard owning an (instance, metric) key."""
        if self.n_shards == 1:
            return 0
        pos = _position(f"{instance}\x00{metric}")
        idx = bisect.bisect_right(self._positions, pos)
        if idx == len(self._positions):
            idx = 0  # wrap past the highest point
        return self._owners[idx]

    def resized(self, n_shards: int) -> "HashRing":
        """A ring for a different shard count, same vnode density."""
        return HashRing(n_shards, vnodes=self.vnodes)
