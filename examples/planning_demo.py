#!/usr/bin/env python
"""Forecast-driven provisioning planning, end to end.

The paper's deliverable is not a forecast — it is a *decision*: "what
resource capacity do I need?". This example walks the planner subsystem
over a small synthetic estate:

1. build per-instance forecast demands (one hot instance climbing
   through its threshold, one comfortable, two lightly-loaded replicas
   sharing a rack);
2. enumerate and score the candidate blueprints for the hot instance,
   showing the composite trade-off between breach probability, cost and
   over-provisioning;
3. run the deterministic estate beam (`plan_estate`) and print the
   chosen plan — including the rack pair consolidating onto one box;
4. replay a breaching poll stream through `StreamRuntime` with
   `planning=True`, showing a sustained forecast breach escalating into
   a `PlanProposal` on the alert channel.

Everything is seeded and clock-free: re-running prints identical bytes.

Run:  python examples/planning_demo.py
"""

import numpy as np

from repro.agent import AgentSample
from repro.planner import (
    DEFAULT_CATALOG,
    ForecastBand,
    InstanceDemand,
    enumerate_blueprints,
    plan_estate,
    rank_blueprints,
)
from repro.selection import AutoConfig
from repro.service import EstatePlanner
from repro.stream import StreamConfig, StreamRuntime

SMALL = DEFAULT_CATALOG[0]
HORIZON = 24


def band(level, slope=0.0, spread=2.0):
    steps = np.arange(HORIZON, dtype=float)
    mean = level + slope * steps + 1.5 * np.sin(steps / 4.0)
    return ForecastBand(mean=mean, upper=mean + spread)


def demand(instance, level, slope=0.0, group=None):
    return InstanceDemand(
        instance=instance,
        tier=SMALL,
        bands={"cpu": band(level, slope)},
        capacities={"cpu": 26.0},
        group=group,
    )


# ---------------------------------------------------------------- estate
estate = [
    demand("oltp-primary", level=24.0, slope=0.4),  # climbing through 26
    demand("olap-reporting", level=14.0),  # comfortable where it is
    demand("batch-a", level=4.0, group="rack7"),  # two idle rack-mates
    demand("batch-b", level=5.0, group="rack7"),
]

print("=== Candidate blueprints for the hot instance ===")
candidates = enumerate_blueprints("oltp-primary", SMALL)
for blueprint, score in rank_blueprints(candidates, [estate[0]]):
    print(f"  {blueprint.describe():42s} {score.describe()}")

print()
print("=== Estate plan (deterministic beam, seed 0) ===")
plan = plan_estate(estate, beam_width=4, seed=0)
for line in plan.describe_lines():
    print(f"  {line}")

# ------------------------------------------------------- live escalation
print()
print("=== Alert → plan escalation in the streaming runtime ===")
STEP = 900.0
samples = [
    AgentSample(
        instance="oltp-primary",
        metric="cpu",
        timestamp=i * STEP,
        value=30.0 + 0.02 * i,  # observed load already past the threshold
    )
    for i in range(48 * 4)
]

runtime = StreamRuntime(
    planner=EstatePlanner(config=AutoConfig(technique="hes", n_jobs=1)),
    config=StreamConfig(
        thresholds={"cpu": 26.0},
        jitter_seconds=0.0,
        duplicate_rate=0.0,
        min_observations=24,
        seed=7,
        planning=True,
        plan_sustained_ticks=2,
    ),
)
runtime.run(samples)
runtime.finish()

for proposal in runtime.proposals:
    print(f"  {proposal.describe()}")
for line in runtime.summary_lines():
    if line.startswith("plans:"):
        print(f"  {line}")
