"""Classical seasonal decomposition (the paper's Figure 1(b)).

The pipeline "discovers the seasonality of the data by decomposing it"
(Section 4.1, using ``statsmodels.tsa.seasonal`` in the original system).
This module provides the equivalent from scratch: a centred moving-average
trend estimate, seasonal component from period-wise averages of the
detrended series, and the residual remainder, in both additive and
multiplicative flavours.

It also provides the Wang–Smith–Hyndman *strength* measures used by the
``ndiffs``/``nsdiffs`` heuristics and by workload characterisation:

* trend strength     ``F_t = max(0, 1 - Var(R) / Var(T + R))``
* seasonal strength  ``F_s = max(0, 1 - Var(R) / Var(S + R))``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from .timeseries import TimeSeries

__all__ = [
    "Decomposition",
    "decompose",
    "seasonal_strength",
    "trend_strength",
]


def _values(series) -> np.ndarray:
    x = series.values if isinstance(series, TimeSeries) else np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise DataError("expected a one-dimensional series")
    if not np.isfinite(x).all():
        raise DataError("series contains NaN/inf; interpolate gaps first")
    return x


@dataclass(frozen=True)
class Decomposition:
    """Trend / seasonal / residual split of a series.

    The trend is ``NaN`` at the edges where the centred moving average is
    undefined (half a period at each end), exactly as in the classical
    method; ``seasonal`` repeats one full period of seasonal effects.
    """

    observed: np.ndarray
    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    period: int
    model: str

    @property
    def seasonal_profile(self) -> np.ndarray:
        """One period of seasonal effects, starting at phase 0."""
        return self.seasonal[: self.period].copy()

    def seasonal_strength(self) -> float:
        """Wang–Smith–Hyndman seasonal strength of this decomposition."""
        return _strength(self.seasonal, self.residual)

    def trend_strength(self) -> float:
        """Wang–Smith–Hyndman trend strength of this decomposition."""
        return _strength(self.trend, self.residual)


def _centred_moving_average(x: np.ndarray, period: int) -> np.ndarray:
    """Centred MA of window ``period``; NaN where the window is incomplete."""
    n = x.size
    out = np.full(n, np.nan)
    if period % 2 == 1:
        half = period // 2
        kernel = np.ones(period) / period
        smoothed = np.convolve(x, kernel, mode="valid")
        out[half : half + smoothed.size] = smoothed
    else:
        # 2 x period MA: average of two adjacent period-windows.
        kernel = np.ones(period + 1)
        kernel[0] = kernel[-1] = 0.5
        kernel /= period
        half = period // 2
        smoothed = np.convolve(x, kernel, mode="valid")
        out[half : half + smoothed.size] = smoothed
    return out


def decompose(series, period: int, model: str = "additive") -> Decomposition:
    """Classical decomposition of ``series`` with seasonal ``period``.

    Parameters
    ----------
    model:
        ``"additive"`` (observed = T + S + R) or ``"multiplicative"``
        (observed = T * S * R; requires strictly positive data).
    """
    x = _values(series)
    if period < 2:
        raise DataError(f"decomposition period must be >= 2, got {period}")
    if x.size < 2 * period:
        raise DataError(
            f"need at least two full periods ({2 * period} points) to decompose, got {x.size}"
        )
    if model not in ("additive", "multiplicative"):
        raise DataError(f"model must be additive or multiplicative, got {model!r}")
    if model == "multiplicative" and np.any(x <= 0):
        raise DataError("multiplicative decomposition requires strictly positive data")

    trend = _centred_moving_average(x, period)
    with np.errstate(invalid="ignore", divide="ignore"):
        detrended = x - trend if model == "additive" else x / trend

    # Period-phase means of the detrended series give the seasonal profile.
    profile = np.empty(period)
    for phase in range(period):
        vals = detrended[phase::period]
        vals = vals[np.isfinite(vals)]
        profile[phase] = vals.mean() if vals.size else (0.0 if model == "additive" else 1.0)
    # Normalise so seasonal effects sum to 0 (add.) / average to 1 (mult.).
    if model == "additive":
        profile -= profile.mean()
    else:
        mean = profile.mean()
        if mean != 0:
            profile /= mean

    reps = int(np.ceil(x.size / period))
    seasonal = np.tile(profile, reps)[: x.size]
    with np.errstate(invalid="ignore", divide="ignore"):
        if model == "additive":
            residual = x - trend - seasonal
        else:
            residual = x / (trend * seasonal)
    return Decomposition(
        observed=x,
        trend=trend,
        seasonal=seasonal,
        residual=residual,
        period=period,
        model=model,
    )


def _strength(component: np.ndarray, residual: np.ndarray) -> float:
    mask = np.isfinite(component) & np.isfinite(residual)
    if mask.sum() < 3:
        return 0.0
    var_r = float(np.var(residual[mask]))
    var_cr = float(np.var(component[mask] + residual[mask]))
    if var_cr <= 1e-300:
        return 0.0
    return max(0.0, 1.0 - var_r / var_cr)


def seasonal_strength(series, period: int) -> float:
    """Seasonal strength ``F_s`` in [0, 1]; high values ⇒ strong seasonality.

    Returns 0 for series too short to decompose, so callers can use it as a
    soft signal without pre-checking lengths.
    """
    x = _values(series)
    if period < 2 or x.size < 2 * period:
        return 0.0
    if np.allclose(x, x[0]):
        return 0.0
    return decompose(x, period).seasonal_strength()


def trend_strength(series, period: int | None = None) -> float:
    """Trend strength ``F_t`` in [0, 1]; high values ⇒ pronounced trend.

    When ``period`` is omitted (non-seasonal data) the trend is estimated
    with a loess-like moving average of about a tenth of the series length.
    """
    x = _values(series)
    if np.allclose(x, x[0]):
        return 0.0
    if period is not None and period >= 2 and x.size >= 2 * period:
        return decompose(x, period).trend_strength()
    window = max(3, min(x.size // 3, max(5, x.size // 10)))
    if window % 2 == 0:
        window += 1
    if x.size < window + 2:
        return 0.0
    kernel = np.ones(window) / window
    trend = np.convolve(x, kernel, mode="valid")
    half = window // 2
    aligned = x[half : half + trend.size]
    residual = aligned - trend
    return _strength(trend, residual)
