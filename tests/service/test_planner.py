"""Integration tests for the CapacityPlanner facade."""

import numpy as np
import pytest

from repro.agent import AgentSample, MetricsRepository
from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.selection import AutoConfig
from repro.service import BreachSeverity, CapacityPlanner


def synthetic_metric(n=1100, seed=3, level=50.0, trend=0.03):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = (
        level + trend * t + 9.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.2, n)
    )
    return TimeSeries(values, Frequency.HOURLY, name="cpu")


@pytest.fixture(scope="module")
def planner():
    p = CapacityPlanner(config=AutoConfig(n_jobs=0, detect_shock_calendar=False))
    p.ingest_series("db1", "cpu", synthetic_metric())
    return p


class TestIngest:
    def test_series_roundtrip(self, planner):
        stored = planner.series("db1", "cpu")
        assert len(stored) == 1100
        assert stored.frequency is Frequency.HOURLY

    def test_ingest_raw_samples(self):
        p = CapacityPlanner()
        samples = [
            AgentSample("db2", "cpu", i * 900.0, float(i)) for i in range(96)
        ]
        assert p.ingest(samples) == 96
        assert len(p.series("db2", "cpu")) == 24  # hourly aggregation

    def test_ingest_series_rejects_empty(self):
        p = CapacityPlanner()
        with pytest.raises(DataError):
            p.ingest_series("x", "cpu", TimeSeries([np.nan, np.nan]))


class TestModelLifecycle:
    def test_select_model(self, planner):
        outcome = planner.select_model("db1", "cpu")
        assert np.isfinite(outcome.test_rmse)
        # The selection is persisted in the repository.
        record = planner.repository.load_model("db1", "cpu")
        assert record is not None
        assert record.rmse == outcome.test_rmse

    def test_model_cached(self, planner):
        first = planner.select_model("db1", "cpu")
        second = planner.select_model("db1", "cpu")
        assert first is second

    def test_force_retrains(self, planner):
        first = planner.select_model("db1", "cpu")
        second = planner.select_model("db1", "cpu", force=True)
        assert first is not second

    def test_observe_before_select_rejected(self, planner):
        with pytest.raises(DataError):
            planner.observe("db1", "memory", [1.0])

    def test_bad_observations_mark_stale(self, planner):
        planner.select_model("db1", "cpu", force=True)
        verdict = planner.observe("db1", "cpu", np.full(10, 10_000.0))
        assert verdict.stale

    def test_telemetry_exposed(self, planner):
        planner.select_model("db1", "cpu")
        trace = planner.telemetry("db1", "cpu")
        assert trace is not None
        assert "score" in trace.stage_seconds()
        assert trace.counters["candidates_fitted"] >= 1

    def test_telemetry_unknown_key_is_none(self, planner):
        assert planner.telemetry("nope", "cpu") is None

    def test_telemetry_merges_across_workloads(self, planner):
        planner.select_model("db1", "cpu")
        merged = planner.telemetry()
        per_key = planner.telemetry("db1", "cpu")
        assert merged is not None
        assert merged.counters["candidates_fitted"] >= per_key.counters["candidates_fitted"]

    def test_telemetry_rejects_half_a_key(self, planner):
        with pytest.raises(DataError):
            planner.telemetry(instance="db1")
        with pytest.raises(DataError):
            planner.telemetry(metric="cpu")

    def test_merged_telemetry_empty_planner_is_none(self):
        assert CapacityPlanner().telemetry() is None

    def test_selection_runs_on_planner_executor(self):
        from repro.engine import SerialExecutor

        class CountingExecutor(SerialExecutor):
            calls = 0

            def run(self, fn, tasks):
                type(self).calls += 1
                return super().run(fn, tasks)

        p = CapacityPlanner(
            config=AutoConfig(detect_shock_calendar=False),
            executor=CountingExecutor(),
        )
        p.ingest_series("db1", "cpu", synthetic_metric())
        p.select_model("db1", "cpu")
        assert CountingExecutor.calls >= 1


class TestForecastPlane:
    def test_forecast_default_horizon(self, planner):
        fc = planner.forecast("db1", "cpu")
        assert fc.horizon == 24
        assert np.all(fc.mean.values >= 0.0)  # clipped at the floor

    def test_threshold_advisory(self, planner):
        safe = planner.threshold_advisory("db1", "cpu", threshold=10_000.0)
        assert safe.severity is BreachSeverity.NONE
        doomed = planner.threshold_advisory("db1", "cpu", threshold=1.0)
        assert doomed.severity is not BreachSeverity.NONE

    def test_capacity_recommendation(self, planner):
        rec = planner.capacity_recommendation("db1", "cpu", unit=4.0)
        assert rec.recommended % 4.0 == 0.0
        assert rec.recommended >= rec.required


class TestRestore:
    def _stocked_repo(self, tmp_path, n=1100):
        from repro.agent import MetricsRepository

        path = str(tmp_path / "estate.db")
        repo = MetricsRepository(path)
        p = CapacityPlanner(
            repository=repo, config=AutoConfig(n_jobs=0, detect_shock_calendar=False)
        )
        p.ingest_series("db1", "cpu", synthetic_metric(n=n))
        return path, p

    def test_restore_roundtrip(self, tmp_path):
        from repro.agent import MetricsRepository

        path, p = self._stocked_repo(tmp_path)
        original = p.select_model("db1", "cpu")
        p.repository.close()

        fresh = CapacityPlanner(
            repository=MetricsRepository(path),
            config=AutoConfig(n_jobs=0, detect_shock_calendar=False),
        )
        restored = fresh.restore_model("db1", "cpu")
        assert restored is not None
        assert restored.best_spec == original.best_spec
        assert restored.test_rmse == original.test_rmse
        assert restored.n_evaluated == 0  # no grid search happened
        # And forecasting uses the restored model without re-selecting.
        fc = fresh.forecast("db1", "cpu")
        assert np.isfinite(fc.mean.values).all()

    def test_restore_nothing_stored(self, tmp_path):
        from repro.agent import MetricsRepository

        path = str(tmp_path / "empty.db")
        p = CapacityPlanner(repository=MetricsRepository(path))
        p.ingest_series("db1", "cpu", synthetic_metric())
        assert p.restore_model("db1", "cpu") is None

    def test_restore_expired_record_returns_none(self, tmp_path):
        from repro.agent import MetricsRepository

        path, p = self._stocked_repo(tmp_path)
        p.select_model("db1", "cpu")
        # Backdate the stored record beyond the weekly rule.
        record = p.repository.load_model("db1", "cpu")
        p.repository.store_model(
            "db1", "cpu",
            fitted_at=record.fitted_at - 9 * 24 * 3600,
            label=record.label, spec=record.spec, rmse=record.rmse,
        )
        assert p.restore_model("db1", "cpu") is None
