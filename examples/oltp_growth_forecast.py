#!/usr/bin/env python
"""Experiment Two: forecasting a growing OLTP workload with shocks.

The paper's hardest scenario — trend (+50 users/day), multiple seasonality
(daily cycle + 07:00/09:00 login surges) and 6-hourly backup shocks — and
the paper's answer to it: SARIMAX with exogenous variables and Fourier
terms. This example compares that model against plain ARIMA and HES on the
logical-IOPS metric (the one whose Figure 3(c)/7(c) panels the paper
highlights) and shows the learned shock calendar.

Run:  python examples/oltp_growth_forecast.py
"""

from repro import Arima, HoltWinters, Sarimax, accuracy_report
from repro.core import interpolate_missing
from repro.reporting import Table
from repro.shocks import build_shock_calendar
from repro.workloads import generate_oltp_run

# --- 1. The Experiment Two workload, aggregated hourly --------------------
run = generate_oltp_run()
iops = interpolate_missing(run.instances["cdbm011"].logical_iops)
train, test = iops.train_test_split()
horizon = len(test)
print(f"training on {len(train)} hourly points, testing on {horizon}")

# --- 2. Learn the shock calendar (the 6-hourly backups) --------------------
calendar = build_shock_calendar(train, period=24)
print("shock calendar:")
for line in calendar.describe():
    print("  •", line)
exog = calendar.train_matrix()
exog_future = calendar.future_matrix(horizon)

# --- 3. Fit the three techniques the paper compares ------------------------
results = []

arima = Arima((2, 1, 1)).fit(train)
results.append(("ARIMA (2,1,1)", arima.forecast(horizon)))

sarimax = Sarimax((2, 1, 1), seasonal=(1, 1, 1, 24)).fit(train)
results.append(("SARIMAX (2,1,1)(1,1,1,24)", sarimax.forecast(horizon)))

full = Sarimax(
    (2, 1, 1),
    seasonal=(1, 1, 1, 24),
    fourier_periods=[168],
    fourier_orders=[2],
).fit(train, exog=exog)
results.append(
    ("SARIMAX FFT Exogenous", full.forecast(horizon, exog_future=exog_future))
)

hes = HoltWinters(period=24, seasonal="add").fit(train)
results.append(("HES (Holt-Winters)", hes.forecast(horizon)))

# --- 4. Score -----------------------------------------------------------------
table = Table(
    ["Model", "RMSE", "MAPE %", "MAPA %"],
    title="Experiment Two, logical IOPS, cdbm011 — 24 h ahead",
)
for label, forecast in results:
    report = accuracy_report(test, forecast.mean)
    table.add_row([label, report.rmse, report.mape, report.mapa])
table.print()

best = min(results, key=lambda r: accuracy_report(test, r[1].mean).rmse)
print(f"\nwinner: {best[0]} — the paper's Table 2(b) ordering reproduced"
      if best[0].startswith("SARIMAX") else f"\nwinner: {best[0]}")
