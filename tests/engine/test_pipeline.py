"""Tests for the staged Figure 4 pipeline, stage by stage."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.engine import (
    PIPELINE_STAGES,
    PoolExecutor,
    SelectionContext,
    SerialExecutor,
    run_pipeline,
    stage_augment,
    stage_branch_choose,
    stage_characterise,
    stage_enumerate,
    stage_refit,
    stage_repair,
    stage_score,
    stage_split,
)
from repro.exceptions import SelectionError
from repro.selection import AutoConfig, CandidateSpec, GridResult, auto_select
from repro.selection.auto import _fit_hes


def hourly_series(n=400, seed=0, trend=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    y = 50 + trend * t + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, n)
    return TimeSeries(y, Frequency.HOURLY, name="cpu")


def make_ctx(series=None, config=None, **kwargs):
    return SelectionContext(
        series=series if series is not None else hourly_series(),
        config=config or AutoConfig(),
        executor=SerialExecutor(),
        **kwargs,
    )


def run_stages(ctx, *stages):
    for stage in stages:
        stage(ctx)
    return ctx


class TestStageRepair:
    def test_missing_values_interpolated(self):
        series = hourly_series()
        values = series.values.copy()
        values[100:105] = np.nan
        ctx = make_ctx(series.with_values(values))
        stage_repair(ctx)
        assert np.all(np.isfinite(ctx.series.values))
        assert len(ctx.series) == len(series)


class TestStageSplit:
    def test_short_series_fallback(self):
        ctx = run_stages(make_ctx(), stage_repair, stage_split)
        # 400 hourly points are below the Table 1 budget of 1008: hold out
        # max(horizon, 10%) = 40 points.
        assert len(ctx.test) == 40
        assert len(ctx.train) == 360

    def test_table1_split_when_long_enough(self):
        ctx = run_stages(make_ctx(hourly_series(n=1100)), stage_repair, stage_split)
        assert len(ctx.train) == 984
        assert len(ctx.test) == 24

    def test_explicit_split_honoured(self):
        series = hourly_series()
        train, test = series.split(390)
        ctx = make_ctx(series, train=train, test=test)
        stage_split(ctx)
        assert len(ctx.train) == 390
        assert len(ctx.test) == 10


class TestStageCharacterise:
    def test_periods_and_seasonality(self):
        ctx = run_stages(make_ctx(), stage_repair, stage_split, stage_characterise)
        assert ctx.primary == 24
        assert 24 in ctx.seasonality.periods

    def test_unsupportable_period_dropped(self):
        # 92 weekly points cannot carry the 52-week cycle.
        rng = np.random.default_rng(3)
        series = TimeSeries(100 + rng.normal(0, 1, 92), Frequency.WEEKLY)
        ctx = run_stages(make_ctx(series), stage_repair, stage_split, stage_characterise)
        assert ctx.primary is None

    def test_hes_fitted_in_auto_mode(self):
        ctx = run_stages(make_ctx(), stage_repair, stage_split, stage_characterise)
        assert ctx.hes_model is not None
        assert np.isfinite(ctx.hes_rmse)
        assert ctx.trace.counters.get("hes_candidates") == 2

    def test_hes_skipped_for_sarimax_technique(self):
        ctx = make_ctx(config=AutoConfig(technique="sarimax"))
        run_stages(ctx, stage_repair, stage_split, stage_characterise)
        assert ctx.hes_model is None

    def test_shock_calendar_only_for_grid_runs(self):
        hes_ctx = make_ctx(config=AutoConfig(technique="hes"))
        run_stages(hes_ctx, stage_repair, stage_split, stage_characterise)
        assert hes_ctx.shock_calendar is None
        grid_ctx = make_ctx(config=AutoConfig(technique="sarimax"))
        run_stages(grid_ctx, stage_repair, stage_split, stage_characterise)
        assert grid_ctx.shock_calendar is not None


class TestStageEnumerate:
    def test_skipped_for_hes(self):
        ctx = make_ctx(config=AutoConfig(technique="hes"))
        run_stages(ctx, stage_repair, stage_split, stage_characterise, stage_enumerate)
        assert ctx.specs == []

    def test_exhaustive_sarimax_is_660(self):
        ctx = make_ctx(config=AutoConfig(technique="sarimax", exhaustive=True))
        run_stages(ctx, stage_repair, stage_split, stage_characterise, stage_enumerate)
        assert len(ctx.specs) == 660
        assert ctx.trace.counters["candidates_enumerated"] == 660
        assert ctx.trace.counters["candidates_pruned"] == 0

    def test_pruned_grid_counts_pruning(self):
        ctx = make_ctx(config=AutoConfig(technique="sarimax"))
        run_stages(ctx, stage_repair, stage_split, stage_characterise, stage_enumerate)
        assert 0 < len(ctx.specs) < 660
        assert ctx.trace.counters["candidates_pruned"] == 660 - len(ctx.specs)

    def test_no_period_degrades_to_arima(self):
        rng = np.random.default_rng(4)
        series = TimeSeries(100 + np.arange(92) * 0.5 + rng.normal(0, 1, 92), Frequency.WEEKLY)
        ctx = make_ctx(series, config=AutoConfig(technique="sarimax"))
        run_stages(ctx, stage_repair, stage_split, stage_characterise, stage_enumerate)
        assert ctx.specs
        assert all(s.seasonal is None for s in ctx.specs)


class TestStageScore:
    def _scored_ctx(self, specs):
        ctx = make_ctx(config=AutoConfig(technique="sarimax", detect_shock_calendar=False))
        run_stages(ctx, stage_repair, stage_split, stage_characterise)
        ctx.specs = specs
        stage_score(ctx)
        return ctx

    def test_best_is_first_viable(self):
        ctx = self._scored_ctx(
            [CandidateSpec(order=(1, 0, 0)), CandidateSpec(order=(1, 0, 1), seasonal=(0, 1, 1, 24))]
        )
        assert ctx.best is ctx.results[0]
        assert not ctx.best.failed
        assert ctx.trace.counters["candidates_fitted"] == 2

    def test_failures_counted(self):
        # The exogenous candidate has no shock matrix: it must fail.
        ctx = self._scored_ctx(
            [
                CandidateSpec(order=(1, 0, 0)),
                CandidateSpec(order=(1, 0, 0), seasonal=(0, 0, 1, 24), exog_columns=2),
            ]
        )
        assert ctx.trace.counters["candidates_failed"] == 1
        assert ctx.trace.counters["candidates_fitted"] == 1

    def test_all_failed_raises(self):
        with pytest.raises(SelectionError):
            self._scored_ctx(
                [CandidateSpec(order=(1, 0, 0), seasonal=(0, 0, 1, 24), exog_columns=2)]
            )

    def test_worker_utilisation_recorded(self):
        ctx = self._scored_ctx([CandidateSpec(order=(1, 0, 0))])
        assert ctx.trace.worker_tasks == {"serial": 1}


class TestStageAugment:
    def test_noop_without_seasonal_winner(self):
        ctx = make_ctx(config=AutoConfig(technique="sarimax", detect_shock_calendar=False))
        run_stages(ctx, stage_repair, stage_split, stage_characterise)
        ctx.specs = [CandidateSpec(order=(1, 0, 0))]
        stage_score(ctx)
        before = list(ctx.results)
        stage_augment(ctx)
        assert ctx.results == before
        assert "candidates_augmented" not in ctx.trace.counters

    def test_augments_seasonal_winner(self):
        ctx = make_ctx(config=AutoConfig(technique="sarimax"))
        run_stages(ctx, stage_repair, stage_split, stage_characterise)
        ctx.specs = [CandidateSpec(order=(1, 0, 1), seasonal=(0, 1, 1, 24))]
        stage_score(ctx)
        stage_augment(ctx)
        if ctx.trace.counters.get("candidates_augmented"):
            assert len(ctx.results) > 1
            rmses = [r.rmse for r in ctx.results if not r.failed]
            assert rmses == sorted(rmses)

    def test_winner_identical_specs_never_refitted(self):
        # Without shock columns, the exogenous augmentations collapse to
        # an exact clone of the winner; the stage must not refit it.
        ctx = make_ctx(config=AutoConfig(technique="sarimax", detect_shock_calendar=False))
        run_stages(ctx, stage_repair, stage_split, stage_characterise)
        ctx.specs = [CandidateSpec(order=(1, 0, 1), seasonal=(0, 1, 1, 24))]
        stage_score(ctx)
        winner = ctx.best.spec
        stage_augment(ctx)
        assert sum(1 for r in ctx.results if r.spec == winner) == 1


class TestStageBranchChoose:
    def _ctx_with_scores(self, hes_rmse, grid_rmse, technique="auto"):
        ctx = make_ctx(config=AutoConfig(technique=technique))
        ctx.hes_model = object() if hes_rmse is not None else None
        ctx.hes_rmse = hes_rmse
        ctx.best = GridResult(
            spec=CandidateSpec(order=(1, 0, 1), seasonal=(0, 1, 1, 24)),
            rmse=grid_rmse,
            accuracy=None,
        )
        return ctx

    def test_auto_prefers_lower_rmse(self):
        ctx = self._ctx_with_scores(hes_rmse=1.0, grid_rmse=2.0)
        stage_branch_choose(ctx)
        assert ctx.winner == "hes"
        ctx = self._ctx_with_scores(hes_rmse=3.0, grid_rmse=2.0)
        stage_branch_choose(ctx)
        assert ctx.winner == "sarimax"

    def test_sarimax_technique_never_picks_hes(self):
        ctx = self._ctx_with_scores(hes_rmse=None, grid_rmse=2.0, technique="sarimax")
        stage_branch_choose(ctx)
        assert ctx.winner == "sarimax"

    def test_lineage_recorded(self):
        ctx = self._ctx_with_scores(hes_rmse=9.0, grid_rmse=2.0)
        stage_branch_choose(ctx)
        assert any("grid beats hes" in note for note in ctx.trace.lineage)


class TestStageRefitHesRegression:
    """The auto-mode HES refit must rebuild the *winning variant*.

    The old monolith hardcoded ``HoltWinters(primary, ...)``: when the HES
    branch had degraded to Holt or SES (no usable seasonal period,
    ``primary is None``) the refit crashed — or would have silently
    swapped the model family.
    """

    def _trending_weekly(self, n=92):
        rng = np.random.default_rng(5)
        values = 100 + 1.5 * np.arange(n) + rng.normal(0, 0.5, n)
        return TimeSeries(values, Frequency.WEEKLY)

    def _hes_winner_ctx(self, series):
        ctx = make_ctx(series, config=AutoConfig(technique="auto"))
        run_stages(ctx, stage_repair, stage_split, stage_characterise)
        assert ctx.primary is None  # the regression precondition
        ctx.winner = "hes"
        return ctx

    def test_holt_winner_refits_as_holt(self):
        series = self._trending_weekly()
        ctx = self._hes_winner_ctx(series)
        assert ctx.hes_model.label() in ("HLT", "SES")
        stage_refit(ctx)
        outcome = ctx.outcome
        assert outcome.technique == "hes"
        assert outcome.model.label() == ctx.hes_model.label()
        assert len(outcome.model.train) == len(series)  # refit on full window

    def test_multiplicative_seasonal_winner_preserved(self):
        # When the winner IS seasonal, the refit must keep its seasonal
        # flavour rather than resetting to additive.
        series = hourly_series(n=400, trend=0.1)
        train, test = series.split(360)
        hes_model, hes_rmse = _fit_hes(train, test, 24)
        ctx = make_ctx(series, config=AutoConfig(technique="auto"), train=train, test=test)
        ctx.hes_model, ctx.hes_rmse = hes_model, hes_rmse
        ctx.primary = 24
        ctx.winner = "hes"
        stage_refit(ctx)
        assert ctx.outcome.model.spec.seasonal == hes_model.spec.seasonal
        assert ctx.outcome.model.spec.period == hes_model.spec.period

    def test_end_to_end_auto_mode_with_holt_winner(self, monkeypatch):
        # Force the grid to lose so auto mode picks the (non-seasonal) HES
        # winner; before the fix this crashed inside the refit.
        import repro.engine.pipeline as pipeline_module

        def losing_grid(specs, *args, **kwargs):
            return [
                GridResult(spec=specs[0], rmse=1e9, accuracy=None)
            ]

        monkeypatch.setattr(pipeline_module, "evaluate_grid", losing_grid)
        series = self._trending_weekly()
        outcome = auto_select(series, config=AutoConfig(technique="auto"))
        assert outcome.technique == "hes"
        assert outcome.model.label() in ("HLT", "SES")
        assert len(outcome.model.train) == len(series)


class TestRunPipeline:
    def test_stage_order_and_trace(self):
        outcome = run_pipeline(hourly_series(), config=AutoConfig(detect_shock_calendar=False))
        names = [name for name, __ in PIPELINE_STAGES]
        assert [e.name for e in outcome.trace.events][: len(names)] == names
        assert outcome.trace.counters["candidates_fitted"] >= 1

    def test_matches_auto_select_facade(self):
        config = AutoConfig(technique="sarimax", detect_shock_calendar=False)
        direct = run_pipeline(hourly_series(), config=config)
        facade = auto_select(hourly_series(), config=config)
        assert facade.best_spec == direct.best_spec
        assert facade.test_rmse == pytest.approx(direct.test_rmse)

    def test_serial_and_pool_leaderboards_identical(self):
        config = AutoConfig(technique="sarimax", detect_shock_calendar=False)
        serial = run_pipeline(hourly_series(), config=config, executor=SerialExecutor())
        pool = PoolExecutor(max_workers=2)
        try:
            pooled = run_pipeline(hourly_series(), config=config, executor=pool)
            rerun = run_pipeline(hourly_series(), config=config, executor=pool)
            assert pool.pools_created == 1  # one pool served both selections
        finally:
            pool.close()
        for parallel in (pooled, rerun):
            assert [r.spec for r in parallel.leaderboard] == [
                r.spec for r in serial.leaderboard
            ]
            assert np.allclose(
                [r.rmse for r in parallel.leaderboard],
                [r.rmse for r in serial.leaderboard],
                rtol=1e-10,
            )
        assert pooled.best_spec == serial.best_spec
