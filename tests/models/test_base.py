"""Tests for the Forecast result type and shared model plumbing."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError, ModelError
from repro.models import Naive
from repro.models.base import Forecast, check_series


def _series(values, **kw):
    return TimeSeries(values, Frequency.HOURLY, **kw)


class TestForecast:
    def _make(self, mean, lower, upper, alpha=0.05):
        return Forecast(
            mean=_series(mean),
            lower=_series(lower),
            upper=_series(upper),
            alpha=alpha,
            model_label="test",
        )

    def test_horizon(self):
        fc = self._make([1.0, 2.0], [0.0, 1.0], [2.0, 3.0])
        assert fc.horizon == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            self._make([1.0, 2.0], [0.0], [2.0, 3.0])

    def test_alpha_validated(self):
        with pytest.raises(ModelError):
            self._make([1.0], [0.0], [2.0], alpha=1.5)

    def test_clipped(self):
        fc = self._make([-1.0, 2.0], [-3.0, 1.0], [0.5, 3.0])
        clipped = fc.clipped(0.0)
        assert clipped.mean.values.min() >= 0.0
        assert clipped.lower.values.min() >= 0.0
        assert clipped.mean.values[1] == 2.0  # untouched above the floor


class TestCheckSeries:
    def test_passes_clean(self):
        values = check_series(_series(np.arange(20.0)), min_obs=10)
        assert values.size == 20

    def test_rejects_non_timeseries(self):
        with pytest.raises(DataError):
            check_series(np.arange(20.0), min_obs=5)

    def test_rejects_missing(self):
        with pytest.raises(DataError):
            check_series(_series([1.0, np.nan, 3.0] * 5), min_obs=5)

    def test_rejects_short(self):
        with pytest.raises(DataError):
            check_series(_series(np.arange(5.0)), min_obs=10)


class TestFittedModelHelpers:
    def test_future_series_clock(self):
        ts = _series(np.arange(10.0), start=7200.0)
        fit = Naive().fit(ts)
        fc = fit.forecast(3)
        assert fc.mean.start == ts.end + 3600.0
        assert fc.mean.frequency is Frequency.HOURLY

    def test_aic_bic_available(self):
        rng = np.random.default_rng(0)
        fit = Naive().fit(_series(rng.normal(size=100)))
        assert np.isfinite(fit.aic)
        assert np.isfinite(fit.bic)


class TestSummary:
    def test_summary_contents(self):
        rng = np.random.default_rng(3)
        fit = Naive().fit(_series(50 + rng.normal(0, 1, 300)))
        text = fit.summary()
        assert "Model:        Naive" in text
        assert "Observations: 300" in text
        assert "AIC:" in text and "BIC:" in text
        assert "Ljung-Box:" in text
        assert "Residuals:" in text

    def test_summary_on_arima(self):
        from repro.models import Arima

        rng = np.random.default_rng(4)
        t = np.arange(400)
        y = 50 + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 400)
        fit = Arima((1, 0, 1), seasonal=(0, 1, 1, 24)).fit(_series(y))
        text = fit.summary()
        assert "SARIMAX (1,0,1)(0,1,1,24)" in text
        assert "white noise" in text
