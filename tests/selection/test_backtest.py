"""Tests for rolling-origin backtesting."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.models import Arima, Naive, SeasonalNaive
from repro.selection import BacktestResult, compare_backtests, rolling_backtest


@pytest.fixture(scope="module")
def seasonal_ts():
    rng = np.random.default_rng(0)
    t = np.arange(900)
    return TimeSeries(
        50 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 900),
        Frequency.HOURLY,
    )


class TestRollingBacktest:
    def test_origin_layout_nonoverlapping(self, seasonal_ts):
        result = rolling_backtest(Naive, seasonal_ts, horizon=24, n_origins=3)
        assert len(result.origins) == 3
        diffs = np.diff(result.origins)
        assert np.all(diffs == 24)
        assert result.origins[-1] == len(seasonal_ts) - 24

    def test_custom_step(self, seasonal_ts):
        result = rolling_backtest(Naive, seasonal_ts, horizon=24, n_origins=3, step=48)
        assert np.all(np.diff(result.origins) == 48)

    def test_per_lead_curve_shape(self, seasonal_ts):
        result = rolling_backtest(
            lambda: Arima((1, 0, 1), seasonal=(0, 1, 1, 24)),
            seasonal_ts,
            horizon=24,
            n_origins=4,
        )
        assert result.per_lead_rmse.size == 24
        assert np.isfinite(result.per_lead_rmse).all()
        # Longer leads are not systematically easier than 1-step.
        assert result.per_lead_rmse[-6:].mean() >= result.per_lead_rmse[:6].mean() * 0.5

    def test_mean_rmse_matches_origins(self, seasonal_ts):
        result = rolling_backtest(Naive, seasonal_ts, horizon=12, n_origins=4)
        finite = result.per_origin_rmse[np.isfinite(result.per_origin_rmse)]
        assert result.mean_rmse == pytest.approx(finite.mean())

    def test_failures_counted_not_raised(self, seasonal_ts):
        class Exploding(Naive):
            def fit(self, series, **kwargs):
                raise ValueError("boom")

        result = rolling_backtest(Exploding, seasonal_ts, horizon=12, n_origins=3)
        assert result.n_failures == 3
        assert np.isnan(result.mean_rmse)

    def test_min_train_respected(self, seasonal_ts):
        result = rolling_backtest(
            Naive, seasonal_ts, horizon=24, n_origins=50, min_train=800
        )
        assert min(result.origins) >= 800

    def test_validation(self, seasonal_ts):
        with pytest.raises(DataError):
            rolling_backtest(Naive, seasonal_ts, horizon=0)
        with pytest.raises(DataError):
            rolling_backtest(Naive, seasonal_ts, horizon=24, n_origins=0)
        with pytest.raises(DataError):
            rolling_backtest(lambda: object(), seasonal_ts, horizon=24)
        short = TimeSeries(np.arange(10.0))
        with pytest.raises(DataError):
            rolling_backtest(Naive, short, horizon=24)
        gappy = TimeSeries(np.r_[np.arange(50.0), np.nan, np.arange(50.0)])
        with pytest.raises(DataError):
            rolling_backtest(Naive, gappy, horizon=5)


class TestCompare:
    def test_seasonal_model_ranked_first(self, seasonal_ts):
        good = rolling_backtest(
            lambda: SeasonalNaive(24), seasonal_ts, horizon=24, n_origins=3
        )
        bad = rolling_backtest(Naive, seasonal_ts, horizon=24, n_origins=3)
        ranked = compare_backtests([bad, good])
        assert ranked[0].model_label == "SeasonalNaive(24)"
        assert ranked[0].mean_rmse < ranked[1].mean_rmse

    def test_nan_sorted_last(self, seasonal_ts):
        ok = rolling_backtest(Naive, seasonal_ts, horizon=12, n_origins=2)
        broken = BacktestResult(
            model_label="broken",
            origins=(1,),
            per_origin_rmse=np.array([np.nan]),
            per_lead_rmse=np.full(12, np.nan),
            n_failures=1,
        )
        ranked = compare_backtests([broken, ok])
        assert ranked[-1].model_label == "broken"

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            compare_backtests([])
