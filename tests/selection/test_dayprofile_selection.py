"""Day-profile candidates inside the selection pipeline.

The family is opt-in (``AutoConfig.dayprofile``): the default grid stays
bit-identical to the paper's three families, and when enabled the
day-profile specs race through ``evaluate_grid`` like any SARIMAX
candidate — same scoring, same caching, same persistence."""

import subprocess
import sys

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import SelectionError
from repro.models.dayprofile import DayProfile, FittedDayProfile
from repro.selection import AutoConfig, auto_select
from repro.selection.grid import CandidateSpec, dayprofile_grid

PERIOD = 24


def three_shape_series(n_days=12, seed=0, noise=0.5):
    """Three distinct day shapes in rotation: SARIMA-at-lag-24 cannot
    represent the 72h repeat, day-profile clustering nails it."""
    rng = np.random.default_rng(seed)
    hours = np.arange(PERIOD)
    shapes = [
        20.0 + 2.0 * np.sin(2 * np.pi * hours / PERIOD),
        50.0 + 20.0 * ((hours >= 9) & (hours <= 17)),
        30.0 + 40.0 * np.exp(-0.5 * ((hours - 20.0) / 2.0) ** 2),
    ]
    values = np.concatenate([shapes[d % 3] for d in range(n_days)])
    values = values + rng.normal(0, noise, n_days * PERIOD)
    return TimeSeries(values, frequency=Frequency.HOURLY, start=0.0, name="db1.cpu")


DAYPROFILE_CONFIG = AutoConfig(
    technique="sarimax",
    dayprofile=True,
    max_lag=4,
    detect_shock_calendar=False,
    n_jobs=1,
)


class TestGridEnumeration:
    def test_dayprofile_grid_specs(self):
        specs = dayprofile_grid(PERIOD, clusters=(4, 2, 3, 2), seed=5)
        assert [s.dayprofile for s in specs] == [
            (2, PERIOD, 5),
            (3, PERIOD, 5),
            (4, PERIOD, 5),
        ]
        for spec in specs:
            assert spec.family() == "DayProfile"
            model = spec.build(maxiter=30)
            assert isinstance(model, DayProfile)
            k, m, seed = spec.dayprofile
            assert (model.n_clusters, model.period, model.seed) == (k, m, seed)
            assert spec.describe() == f"DayProfile(k={k}, m={m})"

    def test_sub_two_clusters_dropped(self):
        assert dayprofile_grid(PERIOD, clusters=(1, 2)) == [
            CandidateSpec(order=(0, 0, 0), dayprofile=(2, PERIOD, 0)),
        ]

    def test_config_requires_clusters_when_enabled(self):
        with pytest.raises(SelectionError):
            AutoConfig(dayprofile=True, dayprofile_clusters=())


class TestSelection:
    def test_dayprofile_wins_on_three_shape_estate(self):
        """Pinned: the day-profile family beats every SARIMAX candidate
        on a 3-day-cycle series (the repeat lives at lag 72, outside any
        lag-24 seasonal structure)."""
        outcome = auto_select(three_shape_series(), config=DAYPROFILE_CONFIG)
        assert outcome.technique == "dayprofile"
        assert isinstance(outcome.model, FittedDayProfile)
        assert outcome.model.label().startswith("DayProfile")
        payload = outcome.spec_payload()
        assert set(payload) == {"dayprofile"}
        k, m, seed = payload["dayprofile"]
        assert m == PERIOD and 2 <= k <= 4 and seed == 0
        # The winner's margin is structural, not noise: the day-profile
        # leader must beat the best SARIMAX candidate by a wide factor.
        ranked = sorted(outcome.leaderboard, key=lambda r: r.rmse)
        assert ranked[0].spec.dayprofile is not None
        best_sarimax = min(
            r.rmse for r in ranked if r.spec.dayprofile is None
        )
        assert ranked[0].rmse < best_sarimax / 3.0

    def test_default_config_enumerates_no_dayprofile(self):
        config = AutoConfig(
            technique="sarimax", max_lag=4, detect_shock_calendar=False, n_jobs=1
        )
        outcome = auto_select(three_shape_series(), config=config)
        assert outcome.technique == "sarimax"
        assert all(r.spec.dayprofile is None for r in outcome.leaderboard)

    def test_selection_deterministic_across_processes(self):
        """Two processes, different PYTHONHASHSEED: same winner, same bytes."""
        snippet = (
            "import numpy as np, hashlib;"
            "from repro.core import Frequency, TimeSeries;"
            "from repro.selection import AutoConfig, auto_select;"
            "rng = np.random.default_rng(0);"
            "hours = np.arange(24);"
            "shapes = [20+2*np.sin(2*np.pi*hours/24), 50+20*((hours>=9)&(hours<=17)),"
            " 30+40*np.exp(-0.5*((hours-20)/2)**2)];"
            "vals = np.concatenate([shapes[d%3] for d in range(12)]) + rng.normal(0,0.5,288);"
            "series = TimeSeries(vals, frequency=Frequency.HOURLY, name='db1.cpu');"
            "cfg = AutoConfig(technique='sarimax', dayprofile=True, max_lag=4,"
            " detect_shock_calendar=False, n_jobs=1);"
            "o = auto_select(series, config=cfg);"
            "fc = o.model.forecast(48);"
            "print(o.technique, o.spec_payload(),"
            " hashlib.sha256(fc.mean.values.tobytes()+fc.upper.values.tobytes()).hexdigest())"
        )
        outputs = set()
        for hashseed in ("1", "987654"):
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed},
                check=True,
            )
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1
        assert next(iter(outputs)).startswith("dayprofile ")


class TestPersistence:
    def test_restore_roundtrip_dayprofile_winner(self, tmp_path):
        from repro.agent import MetricsRepository
        from repro.service import CapacityPlanner

        path = str(tmp_path / "estate.db")
        p = CapacityPlanner(
            repository=MetricsRepository(path), config=DAYPROFILE_CONFIG
        )
        p.ingest_series("db1", "cpu", three_shape_series())
        original = p.select_model("db1", "cpu")
        assert original.technique == "dayprofile"
        p.repository.close()

        fresh = CapacityPlanner(
            repository=MetricsRepository(path), config=DAYPROFILE_CONFIG
        )
        restored = fresh.restore_model("db1", "cpu")
        assert restored is not None
        assert restored.technique == "dayprofile"
        assert restored.best_spec == original.best_spec
        assert restored.n_evaluated == 0  # one refit, no grid search
        np.testing.assert_array_equal(
            restored.model.forecast(24).mean.values,
            original.model.forecast(24).mean.values,
        )
