"""Tests for watermark-driven window aggregation."""

import math

import numpy as np
import pytest

from repro.agent import AgentSample
from repro.core import Frequency
from repro.exceptions import DataError, FrequencyError
from repro.stream import IngestBus, WindowAggregator


def sample(slot, value=1.0, instance="db1", metric="cpu"):
    return AgentSample(instance=instance, metric=metric, timestamp=slot * 900.0, value=value)


def make(allowed_lateness=0.0, **kwargs):
    bus = IngestBus(allowed_lateness=allowed_lateness)
    return bus, WindowAggregator(bus, **kwargs)


class TestClosing:
    def test_window_closes_when_watermark_passes_end(self):
        bus, agg = make()
        bus.push_many([sample(i, value=float(i)) for i in range(4)])
        assert agg.advance() == []  # watermark sits at slot 3: hour not over
        bus.push(sample(4, value=4.0))
        closed = agg.advance()
        assert len(closed) == 1
        w = closed[0]
        assert w.start == 0.0
        assert w.value == pytest.approx(np.mean([0, 1, 2, 3]))
        assert w.n_samples == 4 and w.expected == 4 and w.complete

    def test_lateness_budget_delays_closing(self):
        bus, agg = make(allowed_lateness=1800.0)  # two slots of grace
        bus.push_many([sample(i) for i in range(5)])
        assert agg.advance() == []  # watermark = 4 - 2 = slot 2 < end 4
        bus.push(sample(6))
        assert len(agg.advance()) == 1

    def test_late_sample_within_budget_lands_in_its_window(self):
        bus, agg = make(allowed_lateness=1800.0)
        bus.push_many([sample(0, 1.0), sample(1, 1.0), sample(3, 1.0), sample(4, 1.0)])
        agg.advance()
        bus.push(sample(2, 9.0))  # late, but window 0 still open
        bus.push(sample(6, 1.0))  # move the watermark past slot 4
        closed = agg.advance()
        assert closed[0].value == pytest.approx(np.mean([1, 1, 9, 1]))

    def test_windows_close_left_to_right(self):
        bus, agg = make()
        bus.push_many([sample(i, float(i)) for i in range(13)])
        closed = agg.advance()
        assert [w.start for w in closed] == [0.0, 3600.0, 7200.0]
        assert agg.windows_closed("db1", "cpu") == 3

    def test_missing_window_emitted_as_nan(self):
        bus, agg = make()
        bus.push_many([sample(i) for i in range(4)])  # hour 0
        bus.push_many([sample(i) for i in range(8, 13)])  # hour 2 (hour 1 missed)
        closed = agg.advance()
        assert len(closed) == 3
        assert math.isnan(closed[1].value)
        assert closed[1].n_samples == 0
        assert agg.counters["windows_empty"] == 1

    def test_partial_window_uses_present_slots(self):
        bus, agg = make()
        bus.push_many([sample(0, 2.0), sample(2, 4.0), sample(4, 0.0), sample(5, 0.0)])
        bus.push(sample(8, 0.0))
        closed = agg.advance()
        assert closed[0].value == pytest.approx(3.0)
        assert closed[0].n_samples == 2
        assert not closed[0].complete
        assert agg.counters["windows_partial"] >= 1

    def test_anchor_tracks_earlier_arrival_until_first_close(self):
        """Regression: an out-of-order sample arriving *before* the first
        advance()'s earliest slot must re-anchor the grid (the batch
        path's t0), not get swept into a misaligned first window."""
        bus, agg = make(allowed_lateness=1800.0)
        bus.push(sample(10, 10.0))
        assert agg.advance() == []  # nothing closable: anchor must not freeze
        assert bus.push(sample(6, 1000.0))  # earlier, in-budget, accepted
        bus.push_many([sample(i, float(i)) for i in range(11, 17)])
        closed = agg.advance()
        first, second = closed[0], closed[1]
        assert first.start == 6 * 900.0  # batch grid anchors at slot 6
        assert first.n_samples == 1 and first.expected == 4
        assert first.value == pytest.approx(1000.0)
        assert second.start == 10 * 900.0
        assert second.n_samples == 4
        assert second.value == pytest.approx(np.mean([10, 11, 12, 13]))

    def test_closed_window_never_absorbs_pre_window_slots(self):
        """A window's mean covers exactly its own span: any buffered slot
        below the window start is dropped as late, not folded in."""
        bus, agg = make(allowed_lateness=0.0)
        bus.push_many([sample(i, 1.0) for i in range(5)])
        assert len(agg.advance()) == 1  # window [0, 4) closed, frontier at 4
        # Sneak a pre-frontier slot straight into the buffer, bypassing
        # push()'s frontier guard, to prove the close path also defends.
        bus.buffer("db1", "cpu").slots[2] = 999.0
        bus._buffered += 1
        bus.push_many([sample(i, 1.0) for i in range(5, 9)])
        closed = agg.advance()
        assert len(closed) == 1
        assert closed[0].n_samples == 4
        assert closed[0].value == pytest.approx(1.0)
        assert bus.counters["samples_late_dropped"] == 1
        assert bus.buffered == 1  # slot 8 waits for the next window


class TestFlush:
    def test_flush_closes_fully_covered_trailing_windows(self):
        bus, agg = make()
        bus.push_many([sample(i, 1.0) for i in range(8)])  # exactly two hours
        assert len(agg.advance()) == 1  # watermark only covers hour 0
        flushed = agg.flush()
        assert [w.start for w in flushed] == [3600.0]

    def test_flush_discards_partial_tail_like_batch_aggregate(self):
        bus, agg = make()
        bus.push_many([sample(i, 1.0) for i in range(10)])  # 2.5 hours
        agg.flush()
        assert agg.windows_closed("db1", "cpu") == 2
        assert agg.counters["samples_discarded_at_flush"] == 2
        assert bus.buffered == 0

    def test_flush_on_empty_bus_is_noop(self):
        __, agg = make()
        assert agg.flush() == []


class TestSeries:
    def test_series_rebuilds_hourly_trace(self):
        bus, agg = make()
        values = np.arange(12.0)
        bus.push_many([sample(i, float(v)) for i, v in enumerate(values)])
        agg.flush()
        series = agg.series("db1", "cpu")
        assert series.frequency is Frequency.HOURLY
        assert series.start == 0.0
        assert np.allclose(series.values, values.reshape(3, 4).mean(axis=1))
        assert series.name == "db1.cpu"

    def test_series_anchored_at_first_sample_not_calendar(self):
        bus, agg = make()
        bus.push_many([sample(i, 1.0) for i in range(2, 11)])  # starts mid-hour
        agg.flush()
        series = agg.series("db1", "cpu")
        assert series.start == 2 * 900.0
        assert len(series) == 2

    def test_series_before_any_window_raises(self):
        bus, agg = make()
        bus.push(sample(0))
        with pytest.raises(DataError):
            agg.series("db1", "cpu")

    def test_history_limit_trims_but_keeps_clock(self):
        bus, agg = make(history_limit=2)
        bus.push_many([sample(i, float(i // 4)) for i in range(21)])
        agg.advance()
        series = agg.series("db1", "cpu")
        assert len(series) == 2
        assert series.start == 3 * 3600.0  # 5 closed, oldest 3 trimmed
        assert agg.windows_closed("db1", "cpu") == 5


class TestValidation:
    def test_window_must_be_coarser_multiple(self):
        bus = IngestBus(raw_frequency=Frequency.HOURLY)
        with pytest.raises(FrequencyError):
            WindowAggregator(bus, window_frequency=Frequency.MINUTE_15)

    def test_bad_history_limit(self):
        bus = IngestBus()
        with pytest.raises(DataError):
            WindowAggregator(bus, history_limit=0)
