"""Tests for the shared execution engine."""
