"""User-session population dynamics driving the simulated database.

Both experiments in the paper are driven by user populations: Experiment
One has "a modest number of 40 OLAP users connecting across the cluster";
Experiment Two grows "the user base by 50 users per day" and adds login
surges ("1000 users at 07:00 for 4 hours and again at 9am for another 1000
users for a period of 1 hour"). :class:`UserPopulation` turns those
parameters into an active-session count per timestamp, which the database
model converts into resource demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from .components import SECONDS_PER_DAY, hours_of_day

__all__ = ["LoginSurge", "UserPopulation"]


@dataclass(frozen=True)
class LoginSurge:
    """A recurring daily burst of extra connected users."""

    users: int
    start_hour: float
    duration_hours: float

    def __post_init__(self) -> None:
        if self.users < 0:
            raise DataError("surge user count must be non-negative")
        if self.duration_hours <= 0:
            raise DataError("surge duration must be positive")

    def active(self, timestamps: np.ndarray) -> np.ndarray:
        hours = hours_of_day(timestamps)
        end = self.start_hour + self.duration_hours
        inside = (hours >= self.start_hour) & (hours < end)
        if end > 24.0:
            inside |= hours < (end - 24.0)
        return self.users * inside.astype(float)


@dataclass(frozen=True)
class UserPopulation:
    """Connected-user counts over time.

    Parameters
    ----------
    base_users:
        Users connected at the start of the run.
    growth_per_day:
        Net new users added per day (Experiment Two: 50).
    surges:
        Recurring daily login surges.
    diurnal_fraction:
        Depth of the day/night connection cycle in [0, 1): at the quietest
        hour only ``1 - diurnal_fraction`` of the population is connected.
    peak_hour:
        Hour of day at which the diurnal cycle peaks.
    connection_noise_cv:
        Coefficient of variation of multiplicative connection noise (users
        connect and disconnect stochastically).
    """

    base_users: float
    growth_per_day: float = 0.0
    surges: tuple[LoginSurge, ...] = ()
    diurnal_fraction: float = 0.35
    peak_hour: float = 14.0
    connection_noise_cv: float = 0.02

    def __post_init__(self) -> None:
        if self.base_users < 0:
            raise DataError("base_users must be non-negative")
        if not 0.0 <= self.diurnal_fraction < 1.0:
            raise DataError("diurnal_fraction must be in [0, 1)")

    def active_users(
        self, timestamps: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Active session counts (float; the DB model handles fractions)."""
        timestamps = np.asarray(timestamps, dtype=float)
        t0 = timestamps[0] if timestamps.size else 0.0
        days = (timestamps - t0) / SECONDS_PER_DAY
        population = self.base_users + self.growth_per_day * days
        hours = hours_of_day(timestamps)
        phase = 2.0 * np.pi * (hours - self.peak_hour) / 24.0
        diurnal = 1.0 - self.diurnal_fraction * (1.0 - np.cos(phase)) / 2.0
        active = population * diurnal
        for surge in self.surges:
            active = active + surge.active(timestamps)
        if self.connection_noise_cv > 0:
            active = active * (
                1.0 + rng.normal(0.0, self.connection_noise_cv, timestamps.size)
            )
        return np.maximum(active, 0.0)
