"""Tests for grid construction (paper model counts) and grid evaluation."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError, SelectionError
from repro.selection import (
    CandidateSpec,
    arima_grid,
    augmentation_specs,
    evaluate_grid,
    sarimax_grid,
)


class TestPaperCounts:
    """Section 6.3: the exact model-family sizes."""

    def test_arima_180(self):
        assert len(arima_grid(max_lag=30)) == 180

    def test_sarimax_660(self):
        assert len(sarimax_grid(24, max_lag=30)) == 660

    def test_sarimax_22_per_lag(self):
        grid = sarimax_grid(24, max_lag=30)
        per_lag = {}
        for spec in grid:
            per_lag[spec.order[0]] = per_lag.get(spec.order[0], 0) + 1
        assert set(per_lag.values()) == {22}

    def test_family3_total_666(self):
        grid = sarimax_grid(24)
        aug = augmentation_specs(grid[0], n_shock_columns=4, secondary_period=168)
        assert len(grid) + len(aug) == 666

    def test_two_instances_totals(self):
        # "ARIMA ... totalling 360 models", "SARIMAX ... totalling 1320",
        # "+ Exogenous (4) + Fourier (2) ... totalling 1332".
        assert 2 * len(arima_grid()) == 360
        assert 2 * len(sarimax_grid(24)) == 1320
        aug = augmentation_specs(sarimax_grid(24)[0], 4, 168)
        assert 2 * (len(sarimax_grid(24)) + len(aug)) == 1332

    def test_over_6000_models_across_experiments(self):
        # Two experiments x two instances x three families.
        per_instance = (
            len(arima_grid())
            + len(sarimax_grid(24))
            + len(sarimax_grid(24))
            + len(augmentation_specs(sarimax_grid(24)[0], 4, 168))
        )
        assert 2 * 2 * per_instance > 6000


class TestGridStructure:
    def test_arima_orders_within_bounds(self):
        for spec in arima_grid():
            p, d, q = spec.order
            assert 1 <= p <= 30
            assert d in (0, 1, 2)
            assert q in (1, 2)
            assert spec.seasonal is None

    def test_sarimax_excludes_undifferenced_ma_free(self):
        for spec in sarimax_grid(24):
            p, d, q = spec.order
            P, D, Q, F = spec.seasonal
            assert not (d == 0 and q == 0 and D == 0)
            assert F == 24

    def test_family_labels(self):
        assert CandidateSpec(order=(1, 0, 0)).family() == "ARIMA"
        assert CandidateSpec(order=(1, 0, 0), seasonal=(1, 0, 0, 24)).family() == "SARIMAX"
        assert (
            CandidateSpec(order=(1, 0, 0), seasonal=(1, 0, 0, 24), exog_columns=2).family()
            == "SARIMAX FFT Exogenous"
        )

    def test_describe(self):
        spec = CandidateSpec(order=(2, 1, 1), seasonal=(1, 1, 1, 24))
        assert spec.describe() == "SARIMAX (2,1,1)(1,1,1,24)"

    def test_augmentations_shapes(self):
        base = sarimax_grid(24)[0]
        aug = augmentation_specs(base, n_shock_columns=4, secondary_period=168)
        exog_variants = [s for s in aug if not s.fourier_periods]
        fourier_variants = [s for s in aug if s.fourier_periods]
        assert len(exog_variants) == 4
        assert [s.exog_columns for s in exog_variants] == [1, 2, 3, 4]
        assert len(fourier_variants) == 2
        assert [s.fourier_orders[0] for s in fourier_variants] == [1, 2]

    def test_augmentations_deduplicated_when_columns_clamp(self):
        # With 2 shock columns the four exogenous variants clamp to
        # columns 1,2,2,2 — the duplicates must not be scored twice.
        base = sarimax_grid(24)[0]
        aug = augmentation_specs(base, n_shock_columns=2, secondary_period=168)
        assert len(aug) == len(set(aug))
        exog_variants = [s for s in aug if not s.fourier_periods]
        assert [s.exog_columns for s in exog_variants] == [1, 2]

    def test_augmentations_zero_shock_columns_collapse(self):
        # No shock columns: all four exogenous variants are the winner
        # itself; one copy survives plus the two Fourier variants.
        base = sarimax_grid(24)[0]
        aug = augmentation_specs(base, n_shock_columns=0, secondary_period=168)
        assert len(aug) == 3
        assert aug[0] == base
        assert all(s.fourier_periods for s in aug[1:])

    def test_augmentation_requires_sarimax_base(self):
        with pytest.raises(SelectionError):
            augmentation_specs(CandidateSpec(order=(1, 0, 0)), 4, 168)

    def test_validation(self):
        with pytest.raises(DataError):
            arima_grid(max_lag=0)
        with pytest.raises(DataError):
            sarimax_grid(1)


class TestEvaluateGrid:
    @pytest.fixture(scope="class")
    def split(self):
        rng = np.random.default_rng(0)
        t = np.arange(400)
        y = 50 + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 400)
        ts = TimeSeries(y, Frequency.HOURLY)
        return ts.split(376)

    def test_results_sorted_by_rmse(self, split):
        train, test = split
        specs = [
            CandidateSpec(order=(1, 0, 0)),
            CandidateSpec(order=(1, 0, 1), seasonal=(0, 1, 1, 24)),
            CandidateSpec(order=(2, 1, 1)),
        ]
        results = evaluate_grid(specs, train, test)
        rmses = [r.rmse for r in results if not r.failed]
        assert rmses == sorted(rmses)

    def test_seasonal_candidate_wins(self, split):
        train, test = split
        specs = [
            CandidateSpec(order=(1, 1, 1)),
            CandidateSpec(order=(1, 0, 1), seasonal=(0, 1, 1, 24)),
        ]
        results = evaluate_grid(specs, train, test)
        assert results[0].spec.seasonal is not None

    def test_accuracy_report_attached(self, split):
        train, test = split
        results = evaluate_grid([CandidateSpec(order=(1, 0, 0))], train, test)
        assert results[0].accuracy is not None
        assert results[0].accuracy.rmse == results[0].rmse

    def test_failed_candidates_recorded_not_raised(self, split):
        train, test = split
        # Exogenous candidate without a shock matrix fails gracefully.
        specs = [
            CandidateSpec(order=(1, 0, 0)),
            CandidateSpec(order=(1, 0, 0), seasonal=(0, 0, 1, 24), exog_columns=2),
        ]
        results = evaluate_grid(specs, train, test)
        failed = [r for r in results if r.failed]
        assert len(failed) == 1
        assert failed[0].error

    def test_exogenous_candidate_scored(self, split):
        train, test = split
        shock = np.zeros((len(train), 1))
        shock[::24] = 1.0
        shock_future = np.zeros((len(test), 1))
        specs = [CandidateSpec(order=(1, 0, 0), seasonal=(0, 1, 1, 24), exog_columns=1)]
        results = evaluate_grid(
            specs, train, test, shock_matrix=shock, shock_future=shock_future
        )
        assert not results[0].failed

    def test_parallel_matches_serial(self, split):
        train, test = split
        specs = [
            CandidateSpec(order=(1, 0, 0)),
            CandidateSpec(order=(2, 0, 1)),
            CandidateSpec(order=(1, 1, 1)),
            CandidateSpec(order=(0, 1, 1)),
            CandidateSpec(order=(1, 0, 1)),
        ]
        serial = evaluate_grid(specs, train, test, n_jobs=1)
        parallel = evaluate_grid(specs, train, test, n_jobs=2)
        assert [r.spec for r in serial] == [r.spec for r in parallel]
        assert np.allclose(
            [r.rmse for r in serial], [r.rmse for r in parallel], rtol=1e-10
        )

    def test_empty_specs_rejected(self, split):
        train, test = split
        with pytest.raises(SelectionError):
            evaluate_grid([], train, test)
