"""Streaming layer throughput and latency.

The streaming loop's operational promise is that live serving is cheap:
ingest is bookkeeping, window finalisation is a dictionary sweep, and
the scheduler only pays for model fits when the staleness rules demand
one. This bench pins numbers on each stage:

* ingest-bus throughput — raw polls/s through ``push_many`` including
  dedup, watermark and backpressure bookkeeping, on a mangled
  (jittered + duplicated) delivery order;
* ingest fast path — the same SoA envelope through ``push_columns``
  versus the pre-columnar shape (rebuild ``AgentSample`` rows, push one
  at a time) at estate scale (100k keys), with a parity check that both
  buses land byte-identical counters;
* sparse-tick finalisation — ``advance()`` over a dirty set of ~64
  touched keys must cost the same on a 1k-key and a 100k-key estate
  (dirty-key tracking makes quiet keys free);
* window finalisation rate — hourly windows closed per second as the
  watermark advances over a multi-key stream;
* end-to-end scheduler latency — a replayed multi-day two-instance
  cluster through :class:`~repro.stream.StreamRuntime` with real (HES)
  selections, reporting per-tick latency and confirming the selection
  cache kept refits to the staleness events, not every tick.

Results are printed as a paper-style table and written machine-readable
to ``benchmarks/output/BENCH_stream.json`` for CI trend tracking. Set
``REPRO_REDUCED_GRID=1`` (the CI smoke mode) for a seconds-scale run.
"""

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from repro.agent import AgentSample, MonitoringAgent
from repro.core import Frequency, TimeSeries
from repro.models import HoltWinters
from repro.reporting import Table
from repro.selection import AutoConfig
from repro.selection.auto import SelectionOutcome
from repro.service import EstatePlanner, SelectionCache
from repro.stream import (
    ClosedWindow,
    ForecastScheduler,
    IngestBus,
    StreamConfig,
    StreamRuntime,
    WindowAggregator,
)
from repro.workloads import OltpExperiment, generate_oltp_run

from .conftest import output_path

REDUCED = os.environ.get("REPRO_REDUCED_GRID", "") not in ("", "0")

BENCH_JSON = "BENCH_stream.json"

N_INGEST = 50_000 if REDUCED else 400_000
N_KEYS = 8
STREAM_DAYS = 5.0 if REDUCED else 16.0
MIN_OBSERVATIONS = 72 if REDUCED else 336


def _write_bench_json(section: str, payload: dict) -> None:
    path = output_path(BENCH_JSON)
    data = {}
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
    # Merge so two tests may contribute to one section (the fast-path
    # throughput and sparse-advance probes share ``ingest_fastpath``).
    data.setdefault(section, {}).update(payload)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _poll_stream(n_samples: int, n_keys: int) -> list[AgentSample]:
    """A mangled multi-key 15-minute poll stream (seeded, reusable)."""
    per_key = n_samples // n_keys
    samples = [
        AgentSample(
            instance=f"db{k:02d}",
            metric="cpu",
            timestamp=i * 900.0,
            value=50.0 + (i % 96) * 0.1,
        )
        for k in range(n_keys)
        for i in range(per_key)
    ]
    mangler = StreamRuntime(config=StreamConfig(jitter_seconds=1200.0, seed=11))
    return mangler.delivery_order(samples)


@pytest.fixture(scope="module")
def mangled_stream():
    return _poll_stream(N_INGEST, N_KEYS)


def test_ingest_throughput(mangled_stream):
    bus = IngestBus(allowed_lateness=1800.0)
    t0 = time.perf_counter()
    accepted = bus.push_many(mangled_stream)
    elapsed = time.perf_counter() - t0
    rate = len(mangled_stream) / elapsed

    table = Table(
        ["Delivered", "Accepted", "Duplicates", "Seconds", "Samples/s"],
        title="Ingest bus throughput",
    )
    table.add_row(
        [
            str(len(mangled_stream)),
            str(accepted),
            str(bus.counters.get("samples_duplicate", 0)),
            f"{elapsed:.3f}",
            f"{rate:,.0f}",
        ]
    )
    print()
    table.print()
    _write_bench_json(
        "ingest",
        {
            "delivered": len(mangled_stream),
            "accepted": accepted,
            "samples_per_second": rate,
            "reduced": REDUCED,
        },
    )
    assert accepted > 0
    # Bookkeeping, not modelling: even reduced CI boxes should clear this.
    assert rate > 10_000


def test_ingest_fastpath_100k_keys():
    """Columnar vs per-sample intake from the same SoA envelope.

    Both legs start at the shard envelope boundary — four parallel
    columns — and feed an equally warm bus (key table interned, every
    key holding buffered slots). The per-sample leg is the pre-columnar
    ingest shape: rebuild an ``AgentSample`` per row and push the batch
    one sample at a time through ``push_many``. The columnar leg hands
    the columns straight to ``push_columns``. Each envelope carries two
    hours of 15-minute polls per key (groups of 8 after the key-id
    sort), delivered round-by-round with per-round key shuffling —
    per-key FIFO order, cross-key interleaving, the shape an agent
    fleet actually produces. Parity is asserted, not assumed: both
    buses must finish with identical counters.
    """
    import gc

    n_keys = 10_000 if REDUCED else 100_000
    rounds = 8
    warm_rounds = 2
    repeats = 2
    instances_pool = [f"db{k:06d}" for k in range(n_keys)]

    def envelope(base_slot: int, n_rounds: int, seed: int):
        rng = np.random.default_rng(seed)
        inst: list[str] = []
        ts: list[float] = []
        vals: list[float] = []
        for i in range(n_rounds):
            for k in rng.permutation(n_keys):
                inst.append(instances_pool[k])
                ts.append((base_slot + i) * 900.0)
                vals.append(50.0 + (k % 7) + 0.1 * i)
        return (
            inst,
            ["cpu"] * (n_keys * n_rounds),
            np.array(ts),
            np.array(vals),
        )

    def per_sample(bus: IngestBus, columns) -> int:
        # The pre-columnar ingest path from the envelope boundary.
        inst, mets, ts, vals = columns
        chunk = [
            AgentSample(instance=i, metric=m, timestamp=float(t), value=float(v))
            for i, m, t, v in zip(inst, mets, ts, vals)
        ]
        return bus.push_many(chunk)

    n = n_keys * rounds
    best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for rep in range(repeats):
            warm = envelope(0, warm_rounds, seed=31 + rep)
            timed = envelope(warm_rounds, rounds, seed=47 + rep)

            bus_col = IngestBus(allowed_lateness=1800.0)
            bus_col.push_columns(*warm)
            t0 = time.perf_counter()
            accepted_col = bus_col.push_columns(*timed)
            columnar_s = time.perf_counter() - t0

            bus_seq = IngestBus(allowed_lateness=1800.0)
            per_sample(bus_seq, warm)
            t0 = time.perf_counter()
            accepted_seq = per_sample(bus_seq, timed)
            per_sample_s = time.perf_counter() - t0

            assert accepted_col == accepted_seq == n
            assert bus_col.counters == bus_seq.counters  # sample-for-sample parity
            if best is None or columnar_s < best["columnar_s"]:
                best = {"columnar_s": columnar_s, "per_sample_s": per_sample_s}
            else:
                best["per_sample_s"] = min(best["per_sample_s"], per_sample_s)
    finally:
        if gc_was_enabled:
            gc.enable()

    columnar_rate = n / best["columnar_s"]
    per_sample_rate = n / best["per_sample_s"]
    speedup = best["per_sample_s"] / best["columnar_s"]

    table = Table(
        ["Keys", "Rows", "columnar samples/s", "per-sample samples/s", "speedup"],
        title="Ingest fast path (columnar vs per-sample)",
    )
    table.add_row(
        [
            str(n_keys),
            str(n),
            f"{columnar_rate:,.0f}",
            f"{per_sample_rate:,.0f}",
            f"{speedup:.1f}x",
        ]
    )
    print()
    table.print()
    _write_bench_json(
        "ingest_fastpath",
        {
            "n_keys": n_keys,
            "rows": n,
            "samples_per_s_100k": columnar_rate,
            "per_sample_samples_per_s": per_sample_rate,
            "speedup": speedup,
            "reduced": REDUCED,
        },
    )
    # The acceptance bar: one vectorized pass beats per-sample dispatch
    # by 5x at estate scale (reduced boxes get a noise-tolerant floor).
    assert speedup >= (2.0 if REDUCED else 5.0), best


def test_sparse_advance_independent_of_estate():
    """``advance()`` on a quiet estate costs O(touched), not O(keys).

    Two fully-live stacks — 1k keys and 100k keys (10k reduced) — each
    receive the identical sparse tick load: 64 keys get one hour of
    polls, everyone else stays idle, then the aggregator advances. The
    dirty-set contract says the 100x-larger estate must not make the
    tick measurably more expensive; the bound below allows generous
    noise (4x) while ruling out any O(estate) sweep (100x).
    """
    small, large = (1_000, 10_000) if REDUCED else (1_000, 100_000)
    touched = 64
    n_ticks = 30 if REDUCED else 50

    def build(n_keys: int):
        bus = IngestBus(allowed_lateness=0.0)
        agg = WindowAggregator(bus)
        names = [f"db{k:06d}" for k in range(n_keys)]
        # Warm every key with one full hour so the whole estate is live.
        inst = names * 4
        mets = ["cpu"] * (n_keys * 4)
        ts = np.array([s * 900.0 for s in range(4) for __ in range(n_keys)])
        vals = np.full(n_keys * 4, 42.0)
        bus.push_columns(inst, mets, ts, vals)
        agg.advance()
        return bus, agg, names

    def sparse_ms_per_tick(n_keys: int) -> float:
        bus, agg, names = build(n_keys)
        active = names[:touched]
        mets = ["cpu"] * (touched * 4)
        advance_s = 0.0
        for tick in range(1, n_ticks + 1):
            ts = np.array(
                [(tick * 4 + s) * 900.0 for s in range(4) for __ in range(touched)]
            )
            vals = np.full(touched * 4, 42.0 + tick)
            bus.push_columns(active * 4, mets, ts, vals)
            t0 = time.perf_counter()
            closed = agg.advance()
            advance_s += time.perf_counter() - t0
            assert len(closed) == touched  # each touched key closes one hour
        return 1e3 * advance_s / n_ticks

    small_ms = sparse_ms_per_tick(small)
    large_ms = sparse_ms_per_tick(large)

    table = Table(
        ["Estate keys", "touched/tick", "advance ms/tick"],
        title="Sparse-tick advance cost vs estate size",
    )
    table.add_row([str(small), str(touched), f"{small_ms:.3f}"])
    table.add_row([str(large), str(touched), f"{large_ms:.3f}"])
    print()
    table.print()
    _write_bench_json(
        "ingest_fastpath",
        {
            "small_keys": small,
            "large_keys": large,
            "touched_per_tick": touched,
            "sparse_advance_ms": large_ms,
            "sparse_advance_ms_small": small_ms,
        },
    )
    assert large_ms <= small_ms * 4.0 + 0.2, (small_ms, large_ms)


def test_window_finalisation_rate(mangled_stream):
    bus = IngestBus(allowed_lateness=1800.0)
    agg = WindowAggregator(bus)
    batch = 4096
    t0 = time.perf_counter()
    for lo in range(0, len(mangled_stream), batch):
        bus.push_many(mangled_stream[lo : lo + batch])
        agg.advance()
    agg.flush()
    elapsed = time.perf_counter() - t0
    closed = agg.counters["windows_closed"]
    rate = closed / elapsed

    table = Table(
        ["Keys", "Windows closed", "Seconds", "Windows/s"],
        title="Window finalisation",
    )
    table.add_row([str(N_KEYS), str(closed), f"{elapsed:.3f}", f"{rate:,.0f}"])
    print()
    table.print()
    _write_bench_json(
        "windows",
        {
            "keys": N_KEYS,
            "windows_closed": closed,
            "windows_per_second": rate,
            "reduced": REDUCED,
        },
    )
    assert closed == agg.counters["windows_closed"]
    assert rate > 100


def test_scheduler_end_to_end_latency():
    run = generate_oltp_run(OltpExperiment(days=STREAM_DAYS, seed=3), hourly=False)
    agent = MonitoringAgent(seed=3)
    samples = [s for s in agent.poll_run(run) if s.metric == "cpu"]

    planner = EstatePlanner(
        config=AutoConfig(technique="hes", n_jobs=1), cache=SelectionCache()
    )
    runtime = StreamRuntime(
        planner,
        config=StreamConfig(
            thresholds={"cpu": 95.0},
            min_observations=MIN_OBSERVATIONS,
            seed=3,
        ),
    )
    t0 = time.perf_counter()
    runtime.run(samples)
    runtime.finish()
    elapsed = time.perf_counter() - t0

    counters = runtime.telemetry().counters
    windows = counters["windows_closed"]
    ticks = counters["stream_ticks"]
    per_window_ms = 1e3 * elapsed / windows
    per_tick_ms = 1e3 * elapsed / ticks

    table = Table(
        [
            "Polls", "Windows", "Ticks", "Selections", "Cache hits",
            "Seconds", "ms/window", "ms/tick",
        ],
        title="Streaming loop end to end",
    )
    table.add_row(
        [
            str(len(samples)),
            str(windows),
            str(ticks),
            str(counters.get("stream_selection_runs", 0)),
            str(counters.get("selection_cache_hits", 0)),
            f"{elapsed:.2f}",
            f"{per_window_ms:.2f}",
            f"{per_tick_ms:.2f}",
        ]
    )
    print()
    table.print()
    _write_bench_json(
        "scheduler",
        {
            "polls": len(samples),
            "windows_closed": windows,
            "ticks": ticks,
            "selection_runs": counters.get("stream_selection_runs", 0),
            "cache_hits": counters.get("selection_cache_hits", 0),
            "seconds": elapsed,
            "ms_per_window": per_window_ms,
            "ms_per_tick": per_tick_ms,
            "reduced": REDUCED,
        },
    )
    # Fits happen on staleness events only — far fewer than ticks.
    assert counters["stream_initial_selections"] >= 1
    assert counters.get("stream_selection_runs", 0) < ticks


def test_cohort_tick_scaling():
    """ms/tick vs key count: the cohort dividend at estate scale.

    One HES model is fitted once and cloned across the whole estate via
    ``dataclasses.replace`` + ``adopt_model`` (zero grid fits), then each
    tick delivers one closed window per key and the same feed runs under
    both dispatch modes. Under cohort dispatch the scheduler rolls every
    cached state in one batched call per cohort and grades the estate
    through one batched forecast; under per-key dispatch every key pays
    full per-call model dispatch. The acceptance contract: cohort ticks
    cost a fraction of per-key ticks at every estate size (the batched
    kernels amortise dispatch), and growing the estate 10x never costs
    more than ~10x (per-key cost must not *grow* with estate size).
    """
    key_counts = (100, 1000) if REDUCED else (100, 1000, 10_000)
    seed_hours = 168
    n_ticks = 8
    period = 24

    rng = np.random.default_rng(5)
    t = np.arange(seed_hours)
    base = 55.0 + 9.0 * np.sin(2 * np.pi * t / period) + rng.normal(0, 0.8, seed_hours)
    template = HoltWinters(period=period).fit(TimeSeries(base, Frequency.HOURLY))

    def _run(n_keys: int, dispatch: str) -> tuple[float, dict]:
        planner = EstatePlanner(config=AutoConfig(technique="hes", n_jobs=1))
        sched = ForecastScheduler(
            planner,
            thresholds={"cpu": 95.0},
            min_observations=seed_hours,
            dispatch=dispatch,
        )
        for k in range(n_keys):
            name = f"db{k:05d}"
            series = TimeSeries(base, Frequency.HOURLY, name=f"{name}.cpu")
            sched.seed_history(name, "cpu", series)
            outcome = SelectionOutcome(
                model=dataclasses.replace(template, train=series),
                technique="hes",
                test_rmse=1.0,
                best_spec=None,
                seasonality=None,
                shock_calendar=None,
            )
            sched.adopt_model(name, "cpu", outcome)

        per_tick = []
        for tick in range(n_ticks):
            hour = seed_hours + tick
            batch = [
                ClosedWindow(
                    instance=f"db{k:05d}",
                    metric="cpu",
                    start=hour * 3600.0,
                    value=float(base[hour % seed_hours]),
                    n_samples=4,
                    expected=4,
                )
                for k in range(n_keys)
            ]
            t0 = time.perf_counter()
            out = sched.on_windows(batch)
            per_tick.append(time.perf_counter() - t0)
            assert len(out.advisories) == n_keys
        counters = sched.trace.counters
        assert counters.get("stream_selection_runs", 0) == 0  # adopted, never fitted
        assert counters.get("stream_rolls_applied", 0) == n_keys * n_ticks
        return min(per_tick), dict(counters)

    results = {}
    for n_keys in key_counts:
        cohort_s, counters = _run(n_keys, "cohort")
        scalar_s, __ = _run(n_keys, "per-key")
        results[str(n_keys)] = {
            "ms_per_tick": 1e3 * cohort_s,
            "ms_per_tick_scalar": 1e3 * scalar_s,
            "us_per_key_tick": 1e6 * cohort_s / n_keys,
            "dispatch_speedup": scalar_s / cohort_s,
            "cohorts_dispatched": counters.get("stream_cohorts_dispatched", 0),
        }

    table = Table(
        ["Keys", "cohort ms/tick", "per-key ms/tick", "speedup", "us/key/tick"],
        title="Scheduler tick cost vs estate size",
    )
    for n_keys in key_counts:
        e = results[str(n_keys)]
        table.add_row([
            str(n_keys), f"{e['ms_per_tick']:.2f}", f"{e['ms_per_tick_scalar']:.2f}",
            f"{e['dispatch_speedup']:.1f}x", f"{e['us_per_key_tick']:.1f}",
        ])
    print()
    table.print()

    _write_bench_json(
        "cohort_scaling",
        {
            "key_counts": list(key_counts),
            "ticks": n_ticks,
            "reduced": REDUCED,
            "per_keys": results,
            "ms_per_tick_1000": results["1000"]["ms_per_tick"],
            "dispatch_speedup_1000": results["1000"]["dispatch_speedup"],
        },
    )

    for n_keys in key_counts:
        e = results[str(n_keys)]
        assert e["dispatch_speedup"] >= 2.0, (n_keys, e)
    # Estate growth must stay (sub)linear: per-key cost cannot *increase*
    # with key count (13x allows timing noise on a ~linear baseline).
    ratio = results["1000"]["ms_per_tick"] / results["100"]["ms_per_tick"]
    assert ratio < 13.0, f"tick cost scaled {ratio:.1f}x for 10x keys"
    if "10000" in results:
        ratio = results["10000"]["ms_per_tick"] / results["1000"]["ms_per_tick"]
        assert ratio < 13.0, f"tick cost scaled {ratio:.1f}x for 10x keys"


def test_dayprofile_serving_vs_seasonal_naive():
    """Day-profile serving cost per tick against the seasonal-naive rung.

    The day-profile family earns its slot in the degradation ladder (and
    the grid) only if serving it stays in the same cost class as the
    floor it sits above. Two estates, identical key count and feed:

    * **day-profile** — every key adopts a pre-fitted
      :class:`~repro.models.dayprofile.FittedDayProfile` (cloned from
      one template, zero grid fits) and serves through cohort dispatch:
      one batched label-roll plus one batched centroid-gather forecast
      per tick;
    * **seasonal-naive** — the same keys with selection broken (a
      fault-injected executor), so every tick grades through the
      ladder's floor: a fresh ``SeasonalNaive`` fit + forecast per key.

    The acceptance contract from the roadmap: day-profile serving costs
    at most 2x the seasonal-naive rung per tick.
    """
    from repro.engine.executor import SerialExecutor
    from repro.faults.plan import FaultInjector, FaultKind, FaultPlan, FaultRule
    from repro.models import DayProfile
    from repro.stream import ForecastScheduler

    n_keys = 200 if REDUCED else 1000
    seed_hours = 168
    n_ticks = 8
    period = 24

    rng = np.random.default_rng(5)
    t = np.arange(seed_hours)
    base = 55.0 + 9.0 * np.sin(2 * np.pi * t / period) + rng.normal(0, 0.8, seed_hours)
    template = DayProfile(period=period).fit(TimeSeries(base, Frequency.HOURLY))

    def feed(sched) -> list[float]:
        per_tick = []
        for tick in range(n_ticks):
            hour = seed_hours + tick
            batch = [
                ClosedWindow(
                    instance=f"db{k:05d}",
                    metric="cpu",
                    start=hour * 3600.0,
                    value=float(base[hour % seed_hours]),
                    n_samples=4,
                    expected=4,
                )
                for k in range(n_keys)
            ]
            t0 = time.perf_counter()
            out = sched.on_windows(batch)
            per_tick.append(time.perf_counter() - t0)
            assert len(out.advisories) == n_keys
        return per_tick

    # Leg 1: adopted day-profile models served through cohort dispatch.
    planner = EstatePlanner(config=AutoConfig(technique="hes", n_jobs=1))
    sched = ForecastScheduler(
        planner, thresholds={"cpu": 95.0}, min_observations=seed_hours, dispatch="cohort"
    )
    for k in range(n_keys):
        name = f"db{k:05d}"
        series = TimeSeries(base, Frequency.HOURLY, name=f"{name}.cpu")
        sched.seed_history(name, "cpu", series)
        sched.adopt_model(
            name,
            "cpu",
            SelectionOutcome(
                model=dataclasses.replace(template, train=series),
                technique="dayprofile",
                test_rmse=1.0,
                best_spec=None,
                seasonality=None,
                shock_calendar=None,
            ),
        )
    dayprofile_s = min(feed(sched))
    counters = sched.trace.counters
    assert counters.get("stream_selection_runs", 0) == 0  # adopted, never fitted
    assert counters.get("stream_rolls_applied", 0) == n_keys * n_ticks
    assert counters.get("stream_cohorts_dispatched", 0) >= n_ticks

    # Leg 2: selection permanently broken, every key on the ladder floor.
    rule = FaultRule(site="executor.submit", kind=FaultKind.TRANSIENT_ERROR, every=1)
    planner = EstatePlanner(config=AutoConfig(technique="hes", n_jobs=1))
    sched = ForecastScheduler(
        planner,
        thresholds={"cpu": 95.0},
        executor=SerialExecutor(injector=FaultInjector(FaultPlan(rules=(rule,)))),
        min_observations=seed_hours,
    )
    for k in range(n_keys):
        name = f"db{k:05d}"
        sched.seed_history(name, "cpu", TimeSeries(base, Frequency.HOURLY, name=f"{name}.cpu"))
    naive_s = min(feed(sched))
    assert sched.trace.faults.get("degraded_seasonal_naive", 0) == n_keys * n_ticks

    ratio = dayprofile_s / naive_s
    table = Table(
        ["Keys", "day-profile ms/tick", "seasonal-naive ms/tick", "ratio"],
        title="Day-profile serving vs seasonal-naive floor",
    )
    table.add_row(
        [str(n_keys), f"{1e3 * dayprofile_s:.2f}", f"{1e3 * naive_s:.2f}", f"{ratio:.2f}x"]
    )
    print()
    table.print()
    _write_bench_json(
        "dayprofile_serving",
        {
            "n_keys": n_keys,
            "ticks": n_ticks,
            "ms_per_tick": 1e3 * dayprofile_s,
            "seasonal_naive_ms_per_tick": 1e3 * naive_s,
            "vs_seasonal_naive_ratio": ratio,
            "reduced": REDUCED,
        },
    )
    # Serving the richer model must stay in the floor's cost class.
    assert ratio <= 2.0, (dayprofile_s, naive_s)


def test_shard_scaling():
    """Partitioned serving capacity vs shard count.

    A 10k+-key poll stream is partitioned across N shards by the
    consistent-hash router and replayed end to end (``mangle=False``:
    the stream is pre-ordered once so every N sees byte-identical
    input). Because CI boxes may have a single core, the scaling claim
    is measured in **CPU seconds per shard** (``time.process_time``
    inside each :class:`ShardHandler`), not wall clock: the
    deployment's capacity is bounded by its busiest shard, so

        ingest samples/cpu-s  = accepted_total / max-shard ingest CPU
        windows/cpu-s         = windows_total  / max-shard tick CPU

    and the acceptance contract is that both rates scale with N —
    ≥1.6x at two shards, ≥2.5x at four (ring imbalance and the
    per-shard fixed tick cost eat the rest of the ideal Nx).

    Shards run inline (``processes=False``) — the same ShardHandler
    code path the worker processes execute, minus two measurement
    contaminants a 1-CPU box cannot average away: OS timesharing
    between concurrent workers inflating one shard's cache-miss CPU,
    and cyclic-GC pauses landing in whichever shard's timer happens to
    be open. GC is additionally quiesced around the timed region, and
    each shard count takes the best of two replays.
    """
    import gc

    from repro.shard import ShardedRuntime

    n_keys = 10_000 if REDUCED else 40_000
    slots_per_key = 12  # 3 hours of 15-minute polls
    shard_counts = (1, 2, 4)
    repeats = 2
    config = StreamConfig(batch_polls=8192, seed=11)

    samples = [
        AgentSample(
            instance=f"db{k:05d}",
            metric="cpu",
            timestamp=i * 900.0,
            value=50.0 + (k % 7) + 0.1 * i,
        )
        for i in range(slots_per_key)
        for k in range(n_keys)
    ]

    results = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    gc.freeze()
    try:
        for n_shards in shard_counts:
            best = None
            for _ in range(repeats):
                gc.collect()
                with ShardedRuntime(
                    n_shards, config=config, processes=False, mangle=False
                ) as runtime:
                    runtime.run(samples)
                    runtime.finish()
                    stats = runtime.shard_stats()
                accepted = sum(s["counters"].get("samples_accepted", 0) for s in stats)
                windows = sum(s["counters"].get("windows_closed", 0) for s in stats)
                ingest_cpu = max(s["ingest_cpu_seconds"] for s in stats)
                tick_cpu = max(s["tick_cpu_seconds"] for s in stats)
                assert accepted == len(samples)
                assert windows == n_keys * (slots_per_key // 4)
                if best is None or ingest_cpu + tick_cpu < (
                    best["max_shard_ingest_cpu_s"] + best["max_shard_tick_cpu_s"]
                ):
                    best = {
                        "accepted": accepted,
                        "windows": windows,
                        "max_shard_ingest_cpu_s": ingest_cpu,
                        "max_shard_tick_cpu_s": tick_cpu,
                        "ingest_samples_per_cpu_s": accepted / ingest_cpu,
                        "windows_per_cpu_s": windows / tick_cpu,
                    }
            results[str(n_shards)] = best
    finally:
        gc.unfreeze()
        if gc_was_enabled:
            gc.enable()

    base = results["1"]
    for entry in results.values():
        entry["ingest_speedup"] = (
            entry["ingest_samples_per_cpu_s"] / base["ingest_samples_per_cpu_s"]
        )
        entry["windows_speedup"] = entry["windows_per_cpu_s"] / base["windows_per_cpu_s"]

    table = Table(
        ["Shards", "ingest samples/cpu-s", "windows/cpu-s", "ingest x", "windows x"],
        title=f"Shard scaling, {n_keys} keys x {slots_per_key} polls",
    )
    for n_shards in shard_counts:
        e = results[str(n_shards)]
        table.add_row([
            str(n_shards),
            f"{e['ingest_samples_per_cpu_s']:.0f}",
            f"{e['windows_per_cpu_s']:.0f}",
            f"{e['ingest_speedup']:.2f}x",
            f"{e['windows_speedup']:.2f}x",
        ])
    print()
    table.print()

    _write_bench_json(
        "shard_scaling",
        {
            "n_keys": n_keys,
            "slots_per_key": slots_per_key,
            "shard_counts": list(shard_counts),
            "reduced": REDUCED,
            "per_shards": results,
            "ingest_speedup_2": results["2"]["ingest_speedup"],
            "windows_speedup_2": results["2"]["windows_speedup"],
            "ingest_speedup_4": results["4"]["ingest_speedup"],
            "windows_speedup_4": results["4"]["windows_speedup"],
        },
    )

    assert results["2"]["ingest_speedup"] >= 1.6, results["2"]
    assert results["2"]["windows_speedup"] >= 1.6, results["2"]
    assert results["4"]["ingest_speedup"] >= 2.5, results["4"]
    assert results["4"]["windows_speedup"] >= 2.5, results["4"]
