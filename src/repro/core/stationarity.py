"""Stationarity testing and differencing-order heuristics.

The Box–Jenkins stage of the paper's pipeline (Section 4.1) must decide the
non-seasonal differencing order ``d`` and the seasonal order ``D`` before a
SARIMA grid can be enumerated. We implement:

* the Augmented Dickey–Fuller (ADF) unit-root test with MacKinnon (2010)
  finite-sample critical values,
* the KPSS stationarity test (Kwiatkowski et al. 1992) as a complementary
  check,
* ``ndiffs`` / ``nsdiffs`` heuristics in the style of the ``forecast`` R
  package: difference until ADF rejects a unit root, and seasonally
  difference when the Wang–Smith–Hyndman seasonal-strength measure is high.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from .decompose import seasonal_strength
from .timeseries import TimeSeries

__all__ = [
    "adf_test",
    "kpss_test",
    "difference",
    "integrate",
    "ndiffs",
    "nsdiffs",
    "UnitRootResult",
]


def _values(series) -> np.ndarray:
    x = series.values if isinstance(series, TimeSeries) else np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise DataError("expected a one-dimensional series")
    if not np.isfinite(x).all():
        raise DataError("series contains NaN/inf; interpolate gaps first")
    return x


# ---------------------------------------------------------------------------
# MacKinnon (2010) response-surface critical values: tau = b0 + b1/T + b2/T^2
# keyed by regression kind ("n" none, "c" constant, "ct" constant+trend) and
# significance level.
# ---------------------------------------------------------------------------
_MACKINNON = {
    "n": {
        0.01: (-2.56574, -2.2358, -3.627),
        0.05: (-1.94100, -0.2686, -3.365),
        0.10: (-1.61682, 0.2656, -2.714),
    },
    "c": {
        0.01: (-3.43035, -6.5393, -16.786),
        0.05: (-2.86154, -2.8903, -4.234),
        0.10: (-2.56677, -1.5384, -2.809),
    },
    "ct": {
        0.01: (-3.95877, -9.0531, -28.428),
        0.05: (-3.41049, -4.3904, -9.036),
        0.10: (-3.12705, -2.5856, -3.925),
    },
}

_KPSS_CRITICAL = {
    # level-stationarity critical values (eta_mu)
    "c": {0.10: 0.347, 0.05: 0.463, 0.025: 0.574, 0.01: 0.739},
    # trend-stationarity critical values (eta_tau)
    "ct": {0.10: 0.119, 0.05: 0.146, 0.025: 0.176, 0.01: 0.216},
}


@dataclass(frozen=True)
class UnitRootResult:
    """Outcome of a unit-root / stationarity test.

    Attributes
    ----------
    statistic:
        Test statistic (tau for ADF, eta for KPSS).
    p_value:
        Approximate p-value (interpolated through tabulated critical values).
    critical_values:
        Mapping of significance level to critical value.
    n_lags:
        Number of augmentation lags (ADF) or bandwidth (KPSS) used.
    stationary:
        The test's verdict at the 5 % level. For ADF stationarity means the
        unit-root null *was* rejected; for KPSS it means the stationarity
        null was *not* rejected.
    """

    statistic: float
    p_value: float
    critical_values: dict[float, float]
    n_lags: int
    stationary: bool


def _ols(y: np.ndarray, X: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
    """Least squares returning (beta, residuals, sigma2-hat)."""
    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    resid = y - X @ beta
    dof = max(1, X.shape[0] - X.shape[1])
    sigma2 = float(resid @ resid) / dof
    return beta, resid, sigma2


def _interp_p_value(stat: float, crit: dict[float, float], *, lower_rejects: bool) -> float:
    """Piecewise p-value from three tabulated critical values.

    For ADF more-negative statistics reject (``lower_rejects=True``); for
    KPSS larger statistics reject. The returned p-value is clamped to
    [0.001, 0.999] and linearly interpolated between tabulated points, which
    is accurate enough for threshold decisions at conventional levels.
    """
    levels = sorted(crit)  # e.g. [0.01, 0.05, 0.10]
    points = [(crit[lvl], lvl) for lvl in levels]
    if lower_rejects:
        points.sort()  # most negative (strongest rejection) first
        xs = [p[0] for p in points]
        ps = [p[1] for p in points]
        if stat <= xs[0]:
            return 0.001
        if stat >= xs[-1]:
            # Beyond the weakest tabulated level: extrapolate toward 1.
            span = xs[-1] - xs[0]
            frac = min(1.0, (stat - xs[-1]) / max(span, 1e-9))
            return min(0.999, ps[-1] + frac * (0.999 - ps[-1]))
        return float(np.interp(stat, xs, ps))
    points.sort()
    xs = [p[0] for p in points]  # ascending critical values
    ps = [p[1] for p in points]  # descending p at those values
    if stat >= xs[-1]:
        return 0.001
    if stat <= xs[0]:
        span = xs[-1] - xs[0]
        frac = min(1.0, (xs[0] - stat) / max(span, 1e-9))
        return min(0.999, ps[0] + frac * (0.999 - ps[0]))
    return float(np.interp(stat, xs, ps))


def adf_test(series, regression: str = "c", max_lags: int | None = None) -> UnitRootResult:
    """Augmented Dickey–Fuller unit-root test.

    Regresses ``Δy_t`` on ``y_{t-1}`` plus ``k`` lagged differences (k chosen
    by the Schwert rule unless ``max_lags`` is given) and deterministic terms
    per ``regression``: ``"n"`` none, ``"c"`` constant, ``"ct"`` constant and
    linear trend. The tau statistic on the ``y_{t-1}`` coefficient is
    compared to MacKinnon finite-sample critical values.
    """
    if regression not in _MACKINNON:
        raise DataError(f"regression must be one of n/c/ct, got {regression!r}")
    x = _values(series)
    n = x.size
    if n < 12:
        raise DataError(f"ADF needs at least 12 observations, got {n}")
    if max_lags is None:
        max_lags = int(np.floor(12.0 * (n / 100.0) ** 0.25))
    max_lags = max(0, min(max_lags, n // 2 - 2))

    dy = np.diff(x)
    k = max_lags
    # Shrink k until the regression has enough degrees of freedom.
    while k > 0 and (n - 1 - k) < (k + 4):
        k -= 1
    rows = n - 1 - k
    y_reg = dy[k:]
    cols = [x[k : n - 1]]  # y_{t-1}
    for i in range(1, k + 1):
        cols.append(dy[k - i : n - 1 - i])
    if regression in ("c", "ct"):
        cols.append(np.ones(rows))
    if regression == "ct":
        cols.append(np.arange(rows, dtype=float))
    X = np.column_stack(cols)
    beta, resid, sigma2 = _ols(y_reg, X)
    xtx_inv = np.linalg.pinv(X.T @ X)
    se_gamma = float(np.sqrt(max(sigma2 * xtx_inv[0, 0], 1e-300)))
    tau = float(beta[0] / se_gamma)

    crit = {
        lvl: b0 + b1 / rows + b2 / rows**2
        for lvl, (b0, b1, b2) in _MACKINNON[regression].items()
    }
    p_value = _interp_p_value(tau, crit, lower_rejects=True)
    return UnitRootResult(
        statistic=tau,
        p_value=p_value,
        critical_values=crit,
        n_lags=k,
        stationary=p_value <= 0.05,
    )


def kpss_test(series, regression: str = "c", n_lags: int | None = None) -> UnitRootResult:
    """KPSS stationarity test (null hypothesis: the series *is* stationary).

    Uses the Newey–West long-run variance estimate with the automatic
    bandwidth ``4 (n/100)^{1/4}`` unless ``n_lags`` is supplied.
    """
    if regression not in _KPSS_CRITICAL:
        raise DataError(f"regression must be c or ct, got {regression!r}")
    x = _values(series)
    n = x.size
    if n < 12:
        raise DataError(f"KPSS needs at least 12 observations, got {n}")
    if regression == "c":
        resid = x - x.mean()
    else:
        t = np.arange(n, dtype=float)
        X = np.column_stack([np.ones(n), t])
        __, resid, _ = _ols(x, X)
    if n_lags is None:
        n_lags = int(np.ceil(4.0 * (n / 100.0) ** 0.25))
    n_lags = max(0, min(n_lags, n - 1))
    s = np.cumsum(resid)
    gamma0 = float(resid @ resid) / n
    long_run = gamma0
    for lag in range(1, n_lags + 1):
        w = 1.0 - lag / (n_lags + 1.0)
        long_run += 2.0 * w * float(resid[lag:] @ resid[:-lag]) / n
    long_run = max(long_run, 1e-300)
    eta = float(np.sum(s**2) / (n**2 * long_run))
    crit = dict(_KPSS_CRITICAL[regression])
    p_value = _interp_p_value(eta, crit, lower_rejects=False)
    return UnitRootResult(
        statistic=eta,
        p_value=p_value,
        critical_values=crit,
        n_lags=n_lags,
        stationary=p_value > 0.05,
    )


def difference(values: np.ndarray, d: int = 1, seasonal_d: int = 0, period: int = 1) -> np.ndarray:
    """Apply ``(1-B)^d (1-B^s)^D`` to an array, shortening it accordingly."""
    x = np.asarray(values, dtype=float)
    if d < 0 or seasonal_d < 0:
        raise DataError("differencing orders must be non-negative")
    if seasonal_d > 0 and period < 2:
        raise DataError("seasonal differencing requires period >= 2")
    for __ in range(seasonal_d):
        if x.size <= period:
            raise DataError("series too short for the requested seasonal differencing")
        x = x[period:] - x[:-period]
    for __ in range(d):
        if x.size <= 1:
            raise DataError("series too short for the requested differencing")
        x = np.diff(x)
    return x


def integrate(
    diffed: np.ndarray,
    original: np.ndarray,
    d: int = 1,
    seasonal_d: int = 0,
    period: int = 1,
) -> np.ndarray:
    """Invert :func:`difference` for values that *extend* ``original``.

    Given forecasts ``diffed`` of the differenced process and the original
    undifferenced history, reconstruct forecasts on the original scale by
    cumulatively undoing each differencing operation (non-seasonal layers
    were applied last, so they are undone first).
    """
    history_stack = [np.asarray(original, dtype=float)]
    x = history_stack[0]
    for __ in range(seasonal_d):
        x = x[period:] - x[:-period]
        history_stack.append(x)
    for __ in range(d):
        x = np.diff(x)
        history_stack.append(x)
    out = np.asarray(diffed, dtype=float).copy()
    # Undo non-seasonal differences.
    for layer in range(d):
        base = history_stack[-2 - layer]
        out = np.cumsum(out) + base[-1]
    # Undo seasonal differences. The recurrence
    #     rebuilt[h] = out[h] + (rebuilt[h-period] | base tail)
    # only chains values that share a seasonal phase, so it vectorizes
    # per phase: each chain is a cumulative sum seeded by the matching
    # base value (same additions in the same order as the scalar loop).
    for layer in range(seasonal_d):
        base = history_stack[seasonal_d - 1 - layer]
        n = out.size
        if n <= period:
            # Horizon within one season (the common forecasting case):
            # every value chains straight off the base tail.
            out = out + base[base.size - period : base.size - period + n]
            continue
        rebuilt = np.empty_like(out)
        for phase in range(period):
            seed = base[base.size - period + phase]
            chain = out[phase::period]
            rebuilt[phase::period] = np.cumsum(np.concatenate(([seed], chain)))[1:]
        out = rebuilt
    return out


def ndiffs(series, max_d: int = 2, alpha: float = 0.05) -> int:
    """Number of non-seasonal differences needed for ADF stationarity.

    Mirrors the ``forecast::ndiffs`` behaviour: difference until the ADF
    test rejects a unit root at level ``alpha`` or ``max_d`` is reached.
    """
    x = _values(series)
    for d in range(max_d + 1):
        probe = difference(x, d=d) if d else x
        if probe.size < 12 or np.allclose(probe, probe[0]):
            return d
        if adf_test(probe).p_value <= alpha:
            return d
    return max_d


def nsdiffs(series, period: int, max_d: int = 1, threshold: float = 0.64) -> int:
    """Number of seasonal differences, via the seasonal-strength heuristic.

    Computes Wang–Smith–Hyndman seasonal strength ``F_s`` on a classical
    decomposition; one seasonal difference is recommended when
    ``F_s > threshold`` (0.64 is the ``forecast`` package default).
    """
    if period < 2:
        return 0
    x = _values(series)
    d = 0
    while d < max_d:
        if x.size < 2 * period + 1:
            break
        if seasonal_strength(x, period) <= threshold:
            break
        x = difference(x, d=0, seasonal_d=1, period=period)
        d += 1
    return d
