"""Day-profile models on the streaming plane.

Two properties: (1) cohort dispatch of day-profile models is an
execution strategy only — advisories, refits and verdicts are
byte-identical to per-key grading; (2) the opt-in day-profile rung of
the degradation ladder serves shape-aware advisories when selection is
down, and falls through to seasonal-naive on short history."""

import numpy as np

from repro.engine.executor import SerialExecutor
from repro.faults.plan import FaultInjector, FaultKind, FaultPlan, FaultRule
from repro.models import DayProfile
from repro.selection import AutoConfig
from repro.selection.auto import SelectionOutcome
from repro.service import EstatePlanner
from repro.stream import ClosedWindow, ForecastScheduler

HOUR = 3600.0
PERIOD = 24
KEYS = ("db1", "db2", "db3")


def _dayprofile_select(calls):
    def fake_auto_select(series, config=None, executor=None, **kwargs):
        calls.append(series.name)
        model = DayProfile(n_clusters=3, period=PERIOD, seed=0).fit(series)
        # Baseline RMSE well above the innovation noise so the staleness
        # monitor stays quiet: these tests isolate dispatch, not refits.
        return SelectionOutcome(
            model=model,
            technique="dayprofile",
            test_rmse=10.0,
            best_spec=None,
            seasonality=None,
            shock_calendar=None,
        )

    return fake_auto_select


def _values(seed, n, start=0):
    """Three rotating day *shapes* plus noise — the day-profile regime.

    The shapes differ after z-normalisation (level shifts alone would
    collapse into one cluster), so the k-means labels recover the cycle.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(start, start + n)
    hour = t % PERIOD
    day = (t // PERIOD) % 3
    shapes = np.stack(
        [
            20.0 + 2.0 * np.sin(2 * np.pi * hour / PERIOD),
            50.0 + 20.0 * ((hour >= 9) & (hour <= 17)),
            30.0 + 40.0 * np.exp(-0.5 * ((hour - 20.0) / 2.0) ** 2),
        ]
    )
    return shapes[day, np.arange(n)] + rng.normal(0, 0.5, n)


def windows(values, start_hour=0, instance="db1", metric="cpu"):
    return [
        ClosedWindow(
            instance=instance,
            metric=metric,
            start=(start_hour + i) * HOUR,
            value=float(v),
            n_samples=4,
            expected=4,
        )
        for i, v in enumerate(values)
    ]


def make_scheduler(dispatch, **kwargs):
    kwargs.setdefault("min_observations", 72)
    planner = EstatePlanner(config=AutoConfig(technique="hes", n_jobs=1))
    sched = ForecastScheduler(
        planner,
        thresholds={"cpu": 90.0},
        dispatch=dispatch,
        **kwargs,
    )
    return sched, planner


def feed_ticks(sched, n_ticks=6, seed_hours=216):
    batch = []
    for k, inst in enumerate(KEYS):
        batch.extend(windows(_values(k, seed_hours), instance=inst))
    out = [_tick_repr(sched.on_windows(batch))]
    for t in range(n_ticks):
        batch = []
        for k, inst in enumerate(KEYS):
            v = _values(k, 1, start=seed_hours + t)[0]
            batch.extend(windows([v], start_hour=seed_hours + t, instance=inst))
        out.append(_tick_repr(sched.on_windows(batch)))
    return out


def _tick_repr(tick):
    return {
        "advisories": [(repr(k), repr(v)) for k, v in tick.advisories.items()],
        "refits": [(repr(e.key), e.reason, e.at) for e in tick.refits],
        "verdicts": [(repr(k), repr(v)) for k, v in tick.verdicts.items()],
    }


class TestDayProfileDispatchParity:
    def test_cohort_and_per_key_are_byte_identical(self, monkeypatch):
        ticks = {}
        counters = {}
        for mode in ("cohort", "per-key"):
            calls = []
            monkeypatch.setattr(
                "repro.service.estate.auto_select", _dayprofile_select(calls)
            )
            sched, __ = make_scheduler(mode)
            ticks[mode] = feed_ticks(sched)
            counters[mode] = dict(sched.trace.counters)
            assert calls == [f"{inst}.cpu" for inst in KEYS]
        assert ticks["cohort"] == ticks["per-key"]
        # Same-spec day-profile models form one grading cohort per tick.
        assert counters["cohort"].get("stream_cohorts_dispatched", 0) > counters[
            "per-key"
        ].get("stream_cohorts_dispatched", 0)
        for name in (
            "stream_rolls_applied",
            "stream_advisories_graded",
            "stream_refits_triggered",
        ):
            assert counters["cohort"].get(name, 0) == counters["per-key"].get(name, 0)
        assert counters["cohort"].get("stream_rolls_applied", 0) == len(KEYS) * 6

    def test_broken_cohort_roll_falls_back_per_row(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.estate.auto_select", _dayprofile_select([])
        )
        reference_sched, __ = make_scheduler("cohort")
        reference = feed_ticks(reference_sched)

        def boom(models, values):
            raise RuntimeError("cohort kernel unavailable")

        monkeypatch.setattr("repro.stream.scheduler.dayprofile_advance_cohort", boom)
        sched, __ = make_scheduler("cohort")
        assert feed_ticks(sched) == reference


def _broken_executor():
    rule = FaultRule(site="executor.submit", kind=FaultKind.TRANSIENT_ERROR, every=1)
    return SerialExecutor(injector=FaultInjector(FaultPlan(rules=(rule,))))


class TestDegradedDayProfileRung:
    def _run(self, dayprofile, seed_hours):
        sched, __ = make_scheduler(
            "cohort",
            dayprofile=dayprofile,
            executor=_broken_executor(),
            min_observations=min(72, seed_hours),
        )
        batch = windows(_values(0, seed_hours), instance="db1")
        tick = sched.on_windows(batch)
        return sched, tick

    def test_dayprofile_rung_serves_when_selection_is_down(self):
        sched, tick = self._run(dayprofile=True, seed_hours=96)
        (advisory,) = tick.advisories.values()
        assert advisory.degraded == "day-profile"
        assert sched.trace.faults.get("degraded_day_profile", 0) == 1
        assert sched.trace.faults.get("degraded_seasonal_naive", 0) == 0

    def test_rung_is_opt_in(self):
        sched, tick = self._run(dayprofile=False, seed_hours=96)
        (advisory,) = tick.advisories.values()
        assert advisory.degraded == "seasonal-naive"
        assert sched.trace.faults.get("degraded_day_profile", 0) == 0

    def test_short_history_falls_through_to_seasonal_naive(self):
        # Under three complete days: the day-profile fit is impossible,
        # the ladder continues instead of dropping the key.
        sched, tick = self._run(dayprofile=True, seed_hours=60)
        (advisory,) = tick.advisories.values()
        assert advisory.degraded == "seasonal-naive"
        assert sched.trace.faults.get("degraded_day_profile", 0) == 0

    def test_recovery_upgrades_off_the_ladder(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.estate.auto_select", _dayprofile_select([])
        )
        sched, __ = make_scheduler("cohort", dayprofile=True)
        # Selection is down for the seeding tick: day-profile rung serves.
        sched.executor = _broken_executor()
        tick = sched.on_windows(windows(_values(0, 96), instance="db1"))
        (advisory,) = tick.advisories.values()
        assert advisory.degraded == "day-profile"
        # Executor heals: the retry registered by the failed tick runs a
        # real selection and grading leaves the degraded ladder.
        sched.executor = None
        tick = sched.on_windows(windows(_values(0, 1, start=96), start_hour=96))
        (advisory,) = tick.advisories.values()
        assert not advisory.degraded
