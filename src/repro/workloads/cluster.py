"""Clustered database simulation: nodes, connection balancing, backups.

The paper's experimental environment (Figure 5) is an N-tier architecture:
an application tier drives a two-node Oracle clustered database whose load
"is shared between the nodes of the clustered database to keep an even
balance of activity". Backups run from specific nodes (Experiment One:
node 1 at midnight; Experiment Two: every 6 hours).

:class:`ClusteredDatabase` wires :class:`~repro.workloads.sessions.UserPopulation`
through a :class:`ConnectionBalancer` into per-node
:class:`~repro.workloads.database.DatabaseInstance` objects and runs the whole
thing over a sampling grid, yielding one metric bundle per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.frequency import Frequency
from ..exceptions import DataError
from .components import SECONDS_PER_HOUR
from .database import DatabaseInstance, MetricBundle
from .sessions import UserPopulation

__all__ = ["BackupPolicy", "ConnectionBalancer", "ClusteredDatabase", "ClusterRun"]


@dataclass(frozen=True)
class BackupPolicy:
    """When and where housekeeping backups run.

    Parameters
    ----------
    every_hours:
        Recurrence interval (24 = nightly, 6 = the paper's OLTP policy).
    at_hour:
        Hour-of-day offset of the first backup in each cycle.
    duration_hours:
        How long one backup keeps the node busy.
    node_index:
        Which node executes the backup (Experiment One: "a backup task
        (cbdm011) that was executed from Node 1").
    """

    every_hours: float = 24.0
    at_hour: float = 0.0
    duration_hours: float = 1.0
    node_index: int = 0

    def __post_init__(self) -> None:
        if self.every_hours <= 0 or self.duration_hours <= 0:
            raise DataError("backup interval and duration must be positive")

    def active(self, timestamps: np.ndarray) -> np.ndarray:
        period_s = self.every_hours * SECONDS_PER_HOUR
        offset = (np.asarray(timestamps, dtype=float) - self.at_hour * SECONDS_PER_HOUR) % period_s
        return (offset < self.duration_hours * SECONDS_PER_HOUR).astype(float)


@dataclass(frozen=True)
class FailoverEvent:
    """A window during which one node's sessions move to the others.

    Section 4.2 lists fail-over alongside backups and batch jobs as the
    shocks SARIMAX's exogenous variables must cover: "a system that has a
    backup, batch jobs and that periodically fails over … could be
    covered by the SARIMAX model". During the window the failed node
    serves nothing and its connections pile onto the surviving nodes.

    Parameters
    ----------
    at_hour:
        Offset of the failover start from the beginning of the run, in
        hours.
    duration_hours:
        How long the node stays down.
    node_index:
        Which node fails.
    """

    at_hour: float
    duration_hours: float
    node_index: int = 0

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise DataError("failover duration must be positive")
        if self.at_hour < 0:
            raise DataError("failover start must be non-negative")

    def active(self, timestamps: np.ndarray) -> np.ndarray:
        t0 = timestamps[0] if timestamps.size else 0.0
        rel_hours = (np.asarray(timestamps, dtype=float) - t0) / SECONDS_PER_HOUR
        inside = (rel_hours >= self.at_hour) & (
            rel_hours < self.at_hour + self.duration_hours
        )
        return inside.astype(float)


@dataclass(frozen=True)
class ConnectionBalancer:
    """Splits the connected-user population across cluster nodes.

    Real listeners balance connections nearly evenly with small transient
    imbalance; ``imbalance_cv`` controls that wobble and ``weights`` can
    model deliberately skewed services.
    """

    n_nodes: int
    weights: tuple[float, ...] | None = None
    imbalance_cv: float = 0.03

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise DataError("cluster needs at least one node")
        if self.weights is not None:
            if len(self.weights) != self.n_nodes:
                raise DataError("weights must have one entry per node")
            if any(w <= 0 for w in self.weights):
                raise DataError("weights must be positive")

    def split(
        self, sessions: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        base = (
            np.asarray(self.weights, dtype=float)
            if self.weights is not None
            else np.ones(self.n_nodes)
        )
        base = base / base.sum()
        shares = []
        for w in base:
            wobble = 1.0 + rng.normal(0.0, self.imbalance_cv, sessions.size)
            shares.append(np.maximum(w * wobble, 0.0))
        total = np.sum(shares, axis=0)
        total[total == 0] = 1.0
        return [sessions * s / total for s in shares]


@dataclass(frozen=True)
class ClusterRun:
    """Result of a cluster simulation: per-instance metric bundles."""

    instances: dict[str, MetricBundle]
    frequency: Frequency
    n_samples: int

    def instance_names(self) -> list[str]:
        return list(self.instances)

    def hourly(self) -> "ClusterRun":
        """Aggregate all traces to hourly values (the repository's policy)."""
        out = {}
        for name, bundle in self.instances.items():
            out[name] = MetricBundle(
                cpu=bundle.cpu.aggregate(Frequency.HOURLY, how="mean"),
                memory=bundle.memory.aggregate(Frequency.HOURLY, how="mean"),
                logical_iops=bundle.logical_iops.aggregate(Frequency.HOURLY, how="mean"),
            )
        first = next(iter(out.values()))
        return ClusterRun(
            instances=out, frequency=Frequency.HOURLY, n_samples=len(first.cpu)
        )


@dataclass
class ClusteredDatabase:
    """A multi-node clustered database driven by a user population.

    Parameters
    ----------
    nodes:
        The per-node instances (names like ``cdbm011``, ``cdbm012``).
    population:
        User/session dynamics shared across the cluster.
    balancer:
        Connection-distribution policy; default even balance.
    backups:
        Zero or more backup policies (each pinned to a node).
    """

    nodes: list[DatabaseInstance]
    population: UserPopulation
    balancer: ConnectionBalancer | None = None
    backups: list[BackupPolicy] = field(default_factory=list)
    failovers: list[FailoverEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise DataError("cluster needs at least one node")
        if self.balancer is None:
            self.balancer = ConnectionBalancer(n_nodes=len(self.nodes))
        if self.balancer.n_nodes != len(self.nodes):
            raise DataError("balancer node count must match the cluster")
        for policy in self.backups:
            if not 0 <= policy.node_index < len(self.nodes):
                raise DataError(f"backup node_index {policy.node_index} out of range")
        for event in self.failovers:
            if not 0 <= event.node_index < len(self.nodes):
                raise DataError(f"failover node_index {event.node_index} out of range")
            if len(self.nodes) < 2:
                raise DataError("failover needs at least two nodes to move load to")

    def run(
        self,
        days: float,
        step_minutes: int = 15,
        seed: int = 0,
        start: float = 0.0,
    ) -> ClusterRun:
        """Simulate ``days`` of operation at ``step_minutes`` resolution.

        The default 15-minute step matches the paper's agent polling
        interval; aggregate with :meth:`ClusterRun.hourly` afterwards.
        """
        if days <= 0:
            raise DataError("days must be positive")
        if step_minutes not in (15, 60):
            raise DataError("step_minutes must be 15 or 60 (agent polling grid)")
        freq = Frequency.MINUTE_15 if step_minutes == 15 else Frequency.HOURLY
        step_s = float(freq.seconds)
        n = int(round(days * 86400.0 / step_s))
        if n < 2:
            raise DataError("simulation window too short")
        timestamps = start + np.arange(n) * step_s
        rng = np.random.default_rng(seed)

        sessions = self.population.active_users(timestamps, rng)
        per_node = self.balancer.split(sessions, rng)

        # Failovers: a down node serves nothing; its sessions redistribute
        # to the surviving nodes in proportion to their current share.
        for event in self.failovers:
            down = event.active(timestamps).astype(bool)
            if not down.any():
                continue
            displaced = per_node[event.node_index][down].copy()
            per_node[event.node_index][down] = 0.0
            survivors = [i for i in range(len(self.nodes)) if i != event.node_index]
            total_surviving = np.sum(
                [per_node[i][down] for i in survivors], axis=0
            )
            for i in survivors:
                share = np.where(
                    total_surviving > 0,
                    per_node[i][down] / np.maximum(total_surviving, 1e-12),
                    1.0 / len(survivors),
                )
                per_node[i][down] = per_node[i][down] + displaced * share

        instances: dict[str, MetricBundle] = {}
        for idx, node in enumerate(self.nodes):
            backup = np.zeros(n)
            for policy in self.backups:
                if policy.node_index == idx:
                    backup = np.maximum(backup, policy.active(timestamps))
            node_rng = np.random.default_rng(seed + 1000 * (idx + 1))
            instances[node.name] = node.metrics(
                timestamps, per_node[idx], backup, node_rng, frequency=freq
            )
        return ClusterRun(instances=instances, frequency=freq, n_samples=n)
