"""Command-line interface: the library's operations as shell commands.

The paper's system is an operations tool, so this reproduction ships one
too::

    python -m repro simulate --experiment oltp --out metrics.db
    python -m repro inspect  --db metrics.db --instance cdbm011 --metric cpu
    python -m repro forecast --db metrics.db --instance cdbm011 --metric cpu \
                             --threshold 80
    python -m repro advise   --db metrics.db --threshold cpu=80 \
                             --threshold logical_iops=4e6

``simulate`` runs one of the paper's experiments (or a scenario) through
the monitoring agent into a SQLite repository; ``inspect`` prints the
Figure 4 characterisation (stationarity, seasonality, shocks, faults);
``forecast`` runs the self-selection pipeline and renders a Figure 8-style
panel; ``advise`` produces the estate report across every stored metric;
``plan`` turns those forecasts into a one-shot estate provisioning plan
(catalog blueprints scored against the forecast bands, joined by a
deterministic beam search); ``chaos`` runs a named fault-injection
scenario (``repro chaos --list``) against the synthetic estate and
prints a deterministic survival report.

Metric series can also be read from / written to plain CSV
(``timestamp,value`` rows) with ``--csv`` for integration with anything.
"""

from __future__ import annotations

import argparse
import csv
import sys

import numpy as np

from .agent import FaultModel, MetricsRepository, MonitoringAgent
from .core import (
    Frequency,
    TimeSeries,
    adf_test,
    detect_seasonalities,
    interpolate_missing,
    seasonal_strength,
    trend_strength,
)
from .engine import default_executor
from .exceptions import CapacityPlanningError
from .reporting import Table, render_panel
from .selection import AutoConfig, auto_forecast
from .service import EstatePlanner
from .shocks import build_shock_calendar, discard_faults
from .workloads import (
    OlapExperiment,
    OltpExperiment,
    batch_etl,
    generate_olap_run,
    generate_oltp_run,
    unstable_system,
    web_transactions,
    weekly_business_app,
)

__all__ = ["main", "build_parser"]

_SCENARIOS = {
    "web": web_transactions,
    "etl": batch_etl,
    "erp": weekly_business_app,
    "faulty": unstable_system,
}

_FREQUENCIES = {f.value: f for f in Frequency}


# ---------------------------------------------------------------------------
# IO helpers
# ---------------------------------------------------------------------------
def _load_csv_series(path: str, frequency: Frequency) -> TimeSeries:
    samples: list[tuple[float, float]] = []
    with open(path, newline="") as fh:
        for row in csv.reader(fh):
            if not row or row[0].strip().lower() in ("timestamp", "time", "t"):
                continue
            value = float(row[1]) if row[1].strip() else float("nan")
            samples.append((float(row[0]), value))
    return TimeSeries.from_samples(samples, frequency=frequency)


def _write_csv_series(path: str, series: TimeSeries) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp", "value"])
        for ts, value in zip(series.timestamps, series.values):
            writer.writerow([f"{ts:.0f}", "" if np.isnan(value) else f"{value:.6g}"])


def _load_series(args, parser: argparse.ArgumentParser) -> TimeSeries:
    frequency = _FREQUENCIES[args.frequency]
    if getattr(args, "csv", None):
        return _load_csv_series(args.csv, frequency)
    if getattr(args, "db", None):
        if not (args.instance and args.metric):
            parser.error("--db requires --instance and --metric")
        with MetricsRepository(args.db) as repo:
            return repo.load_series(args.instance, args.metric, frequency=frequency)
    parser.error("supply a data source: --csv FILE or --db FILE")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _cmd_simulate(args, parser) -> int:
    if args.experiment in ("olap", "oltp"):
        run = (
            generate_olap_run(hourly=False)
            if args.experiment == "olap"
            else generate_oltp_run(hourly=False)
        )
        fault_model = FaultModel() if args.faulty_agent else None
        agent = MonitoringAgent(fault_model=fault_model, seed=args.seed)
        samples = agent.poll_run(run)
        if not args.out:
            parser.error("--out DB is required for cluster experiments")
        with MetricsRepository(args.out) as repo:
            n = repo.ingest(samples)
        print(f"simulated experiment {args.experiment}: {n} samples → {args.out}")
        return 0
    series = _SCENARIOS[args.experiment](days=args.days, seed=args.seed)
    if args.out:
        _write_csv_series(args.out, series)
        print(f"simulated scenario {args.experiment}: {len(series)} points → {args.out}")
    else:
        print(f"simulated scenario {args.experiment}: {len(series)} points (no --out given)")
    return 0


def _cmd_inspect(args, parser) -> int:
    series = interpolate_missing(_load_series(args, parser))
    period = series.frequency.default_period

    table = Table(["Property", "Value"], title=f"Characterisation: {series.name or 'series'}")
    table.add_row(["observations", str(len(series))])
    table.add_row(["frequency", series.frequency.label()])
    stats = series.summary()
    table.add_row(["mean / std", f"{stats['mean']:,.2f} / {stats['std']:,.2f}"])
    table.add_row(["min / max", f"{stats['min']:,.2f} / {stats['max']:,.2f}"])
    adf = adf_test(series)
    table.add_row(["stationary (ADF)", f"{'yes' if adf.stationary else 'no'} (p={adf.p_value:.3f})"])
    table.add_row(["trend strength", trend_strength(series, period)])
    table.add_row(["seasonal strength", seasonal_strength(series, period)])
    seasons = detect_seasonalities(
        series, candidates=[p for p in (period, series.frequency.secondary_period) if p]
    )
    table.add_row(["seasonal periods", ",".join(str(p) for p in seasons.periods) or "-"])
    calendar = build_shock_calendar(series, period=period)
    table.add_row(["recurring shocks", str(calendar.n_columns)])
    faults = discard_faults(series, period=period)
    table.add_row(["fault verdict", faults.verdict.value])
    table.print()
    for line in calendar.describe():
        print(f"  shock: {line}")
    return 0


def _data_plane_lines(trace) -> list[str]:
    """Render the broadcast/racing/cache counters as human-sized lines."""
    if trace is None:
        return []
    c = trace.counters
    lines = []
    if "bytes_tasks" in c or "bytes_broadcast" in c:
        lines.append(
            f"data plane: broadcast {c.get('bytes_broadcast', 0) / 1024:.1f} KiB "
            f"({c.get('payload_broadcasts', 0)} payloads, "
            f"{c.get('payload_broadcast_hits', 0)} reused), "
            f"task args {c.get('bytes_tasks', 0) / 1024:.1f} KiB"
        )
    if "candidates_pruned_by_racing" in c:
        lines.append(
            f"racing: {c.get('candidates_pruned_by_racing', 0)} pruned, "
            f"{c.get('racing_full_fits', 0)} full-budget fits, "
            f"{c.get('warm_start_hits', 0)} warm starts"
        )
    if "selection_cache_hits" in c or "selection_cache_misses" in c:
        lines.append(
            f"selection cache: {c.get('selection_cache_hits', 0)} hits, "
            f"{c.get('selection_cache_misses', 0)} misses"
        )
    return lines


def _cmd_forecast(args, parser) -> int:
    series = _load_series(args, parser)
    config = AutoConfig(
        technique=args.technique,
        n_jobs=args.jobs,
        racing=args.racing,
        dayprofile=args.dayprofile,
    )
    executor = default_executor(args.jobs)
    forecast, outcome = auto_forecast(
        series, horizon=args.horizon, config=config, executor=executor
    )
    forecast = forecast.clipped(0.0)

    history = interpolate_missing(series)
    shocks = outcome.shock_calendar.describe() if outcome.shock_calendar else []
    print(
        render_panel(
            title=series.name or f"{args.instance or 'series'}/{args.metric or ''}",
            history=history.tail(min(len(history), 7 * 24)),
            forecast=forecast,
            shocks=shocks,
            threshold=args.threshold,
        )
    )
    print(f"selected: {outcome.describe()}")
    if outcome.trace is not None:
        for line in outcome.trace.summary_lines():
            print(f"  {line}")
        for line in _data_plane_lines(outcome.trace):
            print(f"  {line}")
    if args.out:
        from .reporting import prediction_chart

        fig = prediction_chart(
            "forecast", history.tail(min(len(history), 7 * 24)), forecast.mean, forecast
        )
        fig.save(args.out)
        print(f"forecast data → {args.out}")
    return 0


def _parse_thresholds(pairs: list[str], parser) -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs or []:
        if "=" not in pair:
            parser.error(f"--threshold expects metric=value, got {pair!r}")
        metric, __, value = pair.partition("=")
        out[metric.strip()] = float(value)
    return out


def _cmd_advise(args, parser) -> int:
    thresholds = _parse_thresholds(args.threshold, parser)
    # The estate fans out across (workload, metric) pairs on one shared
    # pool; grid evaluation inside each worker stays serial.
    planner = EstatePlanner(
        config=AutoConfig(n_jobs=1, racing=args.racing, dayprofile=args.dayprofile),
        executor=default_executor(args.jobs),
    )
    with MetricsRepository(args.db) as repo:
        for instance in repo.instances():
            for metric in repo.metrics(instance):
                series = repo.load_series(instance, metric)
                planner.register(
                    customer=args.customer,
                    workload=instance,
                    metric=metric,
                    series=series,
                    threshold=thresholds.get(metric),
                )
    report = planner.report()
    for line in report.summary_lines():
        print(line)
    if report.trace is not None:
        for line in report.trace.summary_lines():
            print(f"  {line}")
        for line in _data_plane_lines(report.trace):
            print(f"  {line}")
    return 0 if not report.failed else 1


def _parse_clusters(pairs: list[str], parser) -> dict[str, str]:
    out: dict[str, str] = {}
    for pair in pairs or []:
        if "=" not in pair:
            parser.error(f"--cluster expects instance=name, got {pair!r}")
        instance, __, cluster = pair.partition("=")
        out[instance.strip()] = cluster.strip()
    return out


def _cmd_plan(args, parser) -> int:
    from .planner import (
        DEFAULT_CATALOG,
        demands_from_entries,
        plan_estate,
        reconcile,
        tier_named,
    )
    from .shard.ring import HashRing

    thresholds = _parse_thresholds(args.threshold, parser)
    if not thresholds:
        parser.error("at least one --threshold METRIC=VALUE is required")
    tier = tier_named(args.tier, DEFAULT_CATALOG) if args.tier else DEFAULT_CATALOG[0]

    # Forecasting fans out per shard exactly as the serving plane would
    # partition it; per-key selection is deterministic and
    # partition-independent, and demands are merged sorted, so the plan
    # bytes are identical for every --shards value.
    shards = max(1, args.shards)
    ring = HashRing(shards)
    executor = default_executor(args.jobs)
    planners = [
        EstatePlanner(
            config=AutoConfig(
                technique=args.technique,
                n_jobs=1,
                racing=args.racing,
                dayprofile=args.dayprofile,
            ),
            executor=executor,
        )
        for _ in range(shards)
    ]
    registered = 0
    with MetricsRepository(args.db) as repo:
        for instance in repo.instances():
            for metric in repo.metrics(instance):
                if metric not in thresholds:
                    continue
                series = repo.load_series(instance, metric)
                planners[ring.shard_for(instance, metric)].register(
                    customer=args.customer,
                    workload=instance,
                    metric=metric,
                    series=series,
                    threshold=thresholds[metric],
                )
                registered += 1
    if not registered:
        parser.error(f"no stored series match thresholds {sorted(thresholds)}")
    entries = []
    for planner in planners:
        if planner.size:
            entries.extend(planner.report().modelled)
    demands = demands_from_entries(entries, tier)
    if not demands:
        print("no modelled workloads to plan (selection failed everywhere)")
        return 1
    # Bottom-up reconciliation: cluster/estate rollups are exact sums of
    # the per-instance forecasts the beam consumes, so the printed peaks
    # are coherent with the plan by construction.
    reconciled = reconcile(demands, clusters=_parse_clusters(args.cluster, parser) or None)
    plan = plan_estate(reconciled.demands, beam_width=args.beam_width, seed=args.seed)
    for line in reconciled.describe_lines():
        print(line)
    for line in plan.describe_lines():
        print(line)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(plan.to_json() + "\n")
        print(f"estate plan → {args.out}")
    return 0


def _cmd_stream(args, parser) -> int:
    from .service import SelectionCache
    from .stream import ConsoleSink, StreamConfig, StreamRuntime

    thresholds = _parse_thresholds(args.threshold, parser)
    metrics = [m.strip() for m in args.metric] if args.metric else ["cpu"]
    if args.experiment == "olap":
        run = generate_olap_run(OlapExperiment(days=args.days, seed=args.seed), hourly=False)
    else:
        run = generate_oltp_run(OltpExperiment(days=args.days, seed=args.seed), hourly=False)
    fault_model = FaultModel() if args.faulty_agent else None
    agent = MonitoringAgent(fault_model=fault_model, seed=args.seed)
    samples = [s for s in agent.poll_run(run) if s.metric in metrics]
    if not samples:
        parser.error(f"no samples for metrics {metrics}")

    stream_config = StreamConfig(
        thresholds=thresholds,
        min_observations=args.min_observations,
        seed=args.seed,
        dayprofile=args.dayprofile,
        planning=args.plan,
    )
    print(
        f"streaming {len(samples)} polls from experiment {args.experiment} "
        f"({len(run.instances)} instances, metrics: {', '.join(metrics)})"
    )

    if args.shards > 0:
        from .shard import ShardedRuntime

        repo_url = f"{args.repo_backend}://" if args.repo_backend else None
        with ShardedRuntime(
            args.shards,
            config=stream_config,
            technique=args.technique,
            racing=args.racing,
            dayprofile=args.dayprofile,
            repo_url=repo_url,
        ) as sharded:
            ticks = sharded.run(samples)
            final = sharded.finish()
            for tick in (*ticks, final):
                for event in tick.refits:
                    print(
                        f"  model refit: {event.key} ({event.reason}) "
                        f"at t={event.at:.0f}s"
                    )
            for event in sharded.events:
                print(f"  {event.describe()}")
            for proposal in sharded.proposals:
                print(f"  {proposal.describe()}")
            for line in sharded.summary_lines():
                print(line)
            for line in _data_plane_lines(sharded.telemetry()):
                print(f"  {line}")
            advisories = final.advisories or (ticks[-1].advisories if ticks else {})
            for key in advisories:
                print(f"  {key}: {advisories[key].describe()}")
        return 0

    planner = EstatePlanner(
        config=AutoConfig(
            technique=args.technique,
            n_jobs=1,
            racing=args.racing,
            dayprofile=args.dayprofile,
        ),
        cache=SelectionCache(),
    )
    repository = None
    if args.repo_backend:
        from .agent import MetricsRepository

        repository = MetricsRepository.open(f"{args.repo_backend}://")
    runtime = StreamRuntime(
        planner=planner,
        config=stream_config,
        executor=default_executor(args.jobs),
        sink=ConsoleSink(),
        repository=repository,
    )
    ticks = runtime.run(samples)
    final = runtime.finish()
    for event in runtime.scheduler.refit_log:
        print(f"  model refit: {event.key} ({event.reason}) at t={event.at:.0f}s")
    for line in runtime.summary_lines():
        print(line)
    for line in _data_plane_lines(runtime.telemetry()):
        print(f"  {line}")
    advisories = final.advisories or (ticks[-1].advisories if ticks else {})
    for key in sorted(advisories):
        print(f"  {key}: {advisories[key].describe()}")
    return 0


def _cmd_chaos(args, parser) -> int:
    from .faults.scenarios import SCENARIOS, run_scenario

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name}: {SCENARIOS[name].description}")
        return 0
    if not args.scenario:
        parser.error("--scenario NAME is required (or --list)")
    if args.scenario not in SCENARIOS:
        parser.error(
            f"unknown scenario {args.scenario!r}; available: "
            + ", ".join(sorted(SCENARIOS))
        )
    if args.shards > 0:
        print(f"sharded: {args.shards} worker processes, backend={args.repo_backend}")
    report = run_scenario(
        args.scenario,
        seed=args.seed,
        jobs=args.jobs,
        days=args.days,
        shards=args.shards,
        repo_backend=args.repo_backend,
    )
    print(report.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"survival report → {args.out}")
    return 0 if report.survived else 1


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Database workload capacity planning (SIGMOD 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source(p):
        p.add_argument("--csv", help="CSV file of timestamp,value rows")
        p.add_argument("--db", help="SQLite metrics repository")
        p.add_argument("--instance", help="instance name within --db")
        p.add_argument("--metric", help="metric name within --db")
        p.add_argument(
            "--frequency",
            choices=sorted(_FREQUENCIES),
            default=Frequency.HOURLY.value,
            help="series granularity (default hourly)",
        )

    p_sim = sub.add_parser("simulate", help="generate a workload (experiment or scenario)")
    p_sim.add_argument(
        "--experiment",
        choices=["olap", "oltp", *sorted(_SCENARIOS)],
        required=True,
    )
    p_sim.add_argument("--out", help="output: .db for experiments, .csv for scenarios")
    p_sim.add_argument("--days", type=float, default=45.0)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--faulty-agent", action="store_true", help="inject agent polling faults"
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_ins = sub.add_parser("inspect", help="characterise a metric series (Figure 4 analysis)")
    add_source(p_ins)
    p_ins.set_defaults(func=_cmd_inspect)

    p_fc = sub.add_parser("forecast", help="self-select a model and forecast")
    add_source(p_fc)
    p_fc.add_argument("--horizon", type=int, default=None, help="steps ahead (default: Table 1)")
    p_fc.add_argument("--technique", choices=["auto", "sarimax", "hes"], default="auto")
    p_fc.add_argument("--threshold", type=float, default=None, help="capacity threshold to check")
    p_fc.add_argument("--jobs", type=int, default=0, help="grid workers (0 = all cores)")
    p_fc.add_argument(
        "--racing",
        action="store_true",
        help="race grid candidates through successive-halving rungs",
    )
    p_fc.add_argument(
        "--dayprofile",
        action="store_true",
        help="race day-profile clustering candidates in the grid",
    )
    p_fc.add_argument("--out", help="write forecast chart data to this CSV")
    p_fc.set_defaults(func=_cmd_forecast)

    p_adv = sub.add_parser("advise", help="estate report across a metrics repository")
    p_adv.add_argument("--db", required=True)
    p_adv.add_argument("--customer", default="estate")
    p_adv.add_argument(
        "--threshold",
        action="append",
        metavar="METRIC=VALUE",
        help="capacity threshold per metric (repeatable)",
    )
    p_adv.add_argument("--jobs", type=int, default=0)
    p_adv.add_argument(
        "--racing",
        action="store_true",
        help="race grid candidates through successive-halving rungs",
    )
    p_adv.add_argument(
        "--dayprofile",
        action="store_true",
        help="race day-profile clustering candidates in the grid",
    )
    p_adv.set_defaults(func=_cmd_advise)

    p_str = sub.add_parser(
        "stream",
        help="live loop: agent polls → ingest bus → hourly windows → models → alerts",
    )
    p_str.add_argument("--experiment", choices=["olap", "oltp"], default="oltp")
    p_str.add_argument("--days", type=float, default=16.0, help="simulated days to stream")
    p_str.add_argument(
        "--metric",
        action="append",
        help="metric(s) to stream (repeatable; default cpu)",
    )
    p_str.add_argument(
        "--threshold",
        action="append",
        metavar="METRIC=VALUE",
        help="capacity threshold per metric (repeatable)",
    )
    p_str.add_argument(
        "--min-observations",
        type=int,
        default=336,
        help="hourly windows before the first selection (default: 14 days)",
    )
    p_str.add_argument("--technique", choices=["auto", "sarimax", "hes"], default="hes")
    p_str.add_argument("--jobs", type=int, default=1, help="selection fan-out workers")
    p_str.add_argument("--seed", type=int, default=0)
    p_str.add_argument("--racing", action="store_true")
    p_str.add_argument(
        "--dayprofile",
        action="store_true",
        help="race day-profile candidates in selection and enable the "
        "day-profile degradation rung",
    )
    p_str.add_argument(
        "--faulty-agent", action="store_true", help="inject agent polling faults"
    )
    p_str.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition keys across N shard worker processes (0 = single process)",
    )
    p_str.add_argument(
        "--repo-backend",
        choices=["sqlite", "duckdb"],
        default=None,
        help="persist closed windows and models to an in-memory repository "
        "partition per shard using this storage engine",
    )
    p_str.add_argument(
        "--plan",
        action="store_true",
        help="escalate sustained breaches into provisioning plan proposals",
    )
    p_str.set_defaults(func=_cmd_stream)

    p_plan = sub.add_parser(
        "plan",
        help="one-shot estate provisioning plan from a metrics repository",
    )
    p_plan.add_argument("--db", required=True)
    p_plan.add_argument("--customer", default="estate")
    p_plan.add_argument(
        "--threshold",
        action="append",
        metavar="METRIC=VALUE",
        help="current capacity per metric (repeatable; required)",
    )
    p_plan.add_argument("--jobs", type=int, default=0, help="selection workers (0 = all cores)")
    p_plan.add_argument("--technique", choices=["auto", "sarimax", "hes"], default="hes")
    p_plan.add_argument("--racing", action="store_true")
    p_plan.add_argument(
        "--dayprofile",
        action="store_true",
        help="race day-profile clustering candidates in the grid",
    )
    p_plan.add_argument(
        "--tier",
        default=None,
        help="catalog tier every instance currently runs on (default: smallest)",
    )
    p_plan.add_argument("--beam-width", type=int, default=4)
    p_plan.add_argument("--seed", type=int, default=0, help="beam tie-break seed")
    p_plan.add_argument(
        "--cluster",
        action="append",
        metavar="INSTANCE=NAME",
        help="assign an instance to a co-location cluster (repeatable); "
        "clustered instances reconcile bottom-up and may consolidate",
    )
    p_plan.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition forecasting across N planners (plan bytes are identical at any N)",
    )
    p_plan.add_argument("--out", help="write the plan as JSON here")
    p_plan.set_defaults(func=_cmd_plan)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a named fault-injection scenario and print its survival report",
    )
    p_chaos.add_argument("--scenario", help="scenario name (see --list)")
    p_chaos.add_argument("--list", action="store_true", help="list available scenarios")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--jobs", type=int, default=1, help="selection fan-out workers")
    p_chaos.add_argument(
        "--days", type=float, default=None, help="simulated days (default: scenario)"
    )
    p_chaos.add_argument("--out", help="write the survival report as JSON here")
    p_chaos.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the stream on N shard worker processes (0 = single process)",
    )
    p_chaos.add_argument(
        "--repo-backend",
        choices=["sqlite", "duckdb"],
        default="sqlite",
        help="central repository storage engine",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, parser)
    except CapacityPlanningError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
