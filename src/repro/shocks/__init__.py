"""Shock detection and exogenous-variable construction (paper Section 4.2)."""

from .faults import (
    FaultAnalysis,
    FaultEpisode,
    FaultPolicy,
    FaultVerdict,
    detect_faults,
    discard_faults,
)
from .detector import (
    DEFAULT_MIN_OCCURRENCES,
    RecurringShock,
    ShockCalendar,
    ShockEvent,
    build_shock_calendar,
    detect_shocks,
    group_recurring,
)

__all__ = [
    "ShockEvent",
    "RecurringShock",
    "ShockCalendar",
    "detect_shocks",
    "group_recurring",
    "build_shock_calendar",
    "DEFAULT_MIN_OCCURRENCES",
    "FaultEpisode",
    "FaultPolicy",
    "FaultVerdict",
    "FaultAnalysis",
    "detect_faults",
    "discard_faults",
]
