"""Fault-injection plane and resilience policies.

Reproducing the paper's pipeline on clean synthetic data proves the
models; proving the *system* takes failure. This package provides the
three pieces of that proof:

* :mod:`repro.faults.plan` — declarative, seedable fault injection:
  a :class:`FaultPlan` of :class:`FaultRule`\\ s executed by a
  :class:`FaultInjector` at named hook points threaded through the
  agent, repository, streaming bus and engine executors. Deterministic
  by construction; an empty plan is a bit-for-bit no-op.
* :mod:`repro.faults.retry` — :class:`RetryPolicy` /
  :class:`RetryRunner`: budget-capped exponential backoff with seeded
  jitter, waits routed through the stream clock (never
  :func:`time.sleep`).
* :mod:`repro.faults.scenarios` — named chaos scenarios
  (``repro chaos`` on the CLI) that run a fault plan against the
  synthetic estate end to end and emit a deterministic
  :class:`SurvivalReport`.

Scenario names are exported lazily (PEP 562): scenarios pull in the
streaming and service layers, which themselves use the plan/retry
primitives here — eager import would cycle.
"""

from .plan import (
    KNOWN_SITES,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    InjectedFault,
)
from .retry import RetryPolicy, RetryRunner

__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "KNOWN_SITES",
    "RetryPolicy",
    "RetryRunner",
    "ChaosScenario",
    "SurvivalReport",
    "SCENARIOS",
    "run_scenario",
]

_SCENARIO_EXPORTS = {"ChaosScenario", "SurvivalReport", "SCENARIOS", "run_scenario"}


def __getattr__(name: str):
    if name in _SCENARIO_EXPORTS:
        from . import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _SCENARIO_EXPORTS)
