#!/usr/bin/env python
"""The model-quality toolkit: backtests, diagnostics, stepwise search.

The paper's learning engine "continually assess[es] the models
performance". This example shows the assessment machinery on the
Experiment Two CPU metric:

1. a **stepwise search** (auto.arima's philosophy) proposes an order in a
   handful of fits;
2. a **rolling-origin backtest** compares it against the pipeline's grid
   pick and a seasonal-naive anchor across several forecast origins —
   one split can flatter any model, five splits rarely do;
3. **residual diagnostics** (Ljung–Box, seasonal leakage, Jarque–Bera)
   certify the winner is adequate, and `summary()` prints its card.

Run:  python examples/model_quality_toolkit.py
"""

from repro.core import interpolate_missing
from repro.models import Arima, SeasonalNaive
from repro.reporting import Table
from repro.selection import (
    compare_backtests,
    diagnose_residuals,
    rolling_backtest,
    stepwise_search,
)
from repro.workloads import generate_oltp_run

series = interpolate_missing(generate_oltp_run().instances["cdbm011"].cpu)
train = series[: len(series) - 24]

# --- 1. stepwise proposal ----------------------------------------------------
step = stepwise_search(train, period=24)
print(step.describe())

# --- 2. rolling-origin shoot-out ---------------------------------------------
candidates = {
    "stepwise pick": lambda: Arima(step.order, seasonal=step.seasonal, maxiter=60),
    "pipeline-style SARIMA": lambda: Arima((2, 1, 1), seasonal=(1, 1, 1, 24), maxiter=60),
    "seasonal naive": lambda: SeasonalNaive(24),
}
results = [
    rolling_backtest(factory, series, horizon=24, n_origins=5)
    for factory in candidates.values()
]
table = Table(
    ["Candidate", "Mean RMSE", "Worst origin", "Failures"],
    title="Rolling-origin backtest (5 origins x 24 h)",
)
for label, result in zip(candidates, results):
    finite = result.per_origin_rmse[result.per_origin_rmse == result.per_origin_rmse]
    table.add_row([label, result.mean_rmse, float(finite.max()), str(result.n_failures)])
table.print()

winner_label = list(candidates)[results.index(compare_backtests(results)[0])]
print(f"\nbacktest winner: {winner_label}")

# --- 3. adequacy certificate ---------------------------------------------------
winner = candidates[winner_label]().fit(train)
report = diagnose_residuals(winner, period=24)
print("\n--- summary " + "-" * 48)
print(winner.summary())
print("--- diagnostics " + "-" * 44)
print(report.describe())
print(
    "\nThe winner is deployed for the week; the ModelMonitor (see "
    "examples/olap_capacity_planning.py) takes over from here."
)
