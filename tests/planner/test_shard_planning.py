"""Planning under the shard plane: N shards ≡ one process, plans included.

Extends the sharding determinism contract (:mod:`tests.shard.test_parity`)
to the provisioning surface: merged PlanProposals and the estate plan
built by :meth:`ShardedRuntime.propose_plan` must be identical whether
the keys live on one shard or are hash-partitioned across several. Also
pins the chaos contract — planning is observation-only, so a chaos
report is byte-identical with it on or off.

Selection is stubbed with the cheap flat model; shards run inline so the
stub patch is visible to every shard.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.agent import AgentSample
from repro.faults.scenarios import run_scenario
from repro.models.base import FittedModel
from repro.planner import PlanProposal
from repro.selection import AutoConfig
from repro.selection.auto import SelectionOutcome
from repro.service import EstatePlanner
from repro.shard import ShardedRuntime
from repro.stream import StreamConfig, StreamRuntime

STEP = 900.0


@dataclass
class _FlatModel(FittedModel):
    def forecast(self, horizon, alpha=0.05, **kwargs):
        level = float(np.mean(self.train.values[-24:]))
        return self.make_forecast(np.full(horizon, level), np.ones(horizon), alpha)

    def label(self):
        return "flat"


@pytest.fixture
def stub_selection(monkeypatch):
    def fake_auto_select(series, config=None, executor=None, **kwargs):
        model = _FlatModel(
            train=series, residuals=np.zeros(len(series)), sigma2=1.0, n_params=1
        )
        return SelectionOutcome(
            model=model,
            technique="hes",
            test_rmse=1.0,
            best_spec=None,
            seasonality=None,
            shock_calendar=None,
        )

    monkeypatch.setattr("repro.service.estate.auto_select", fake_auto_select)


def polls(n_hours, value, instance):
    return [
        AgentSample(
            instance=instance,
            metric="cpu",
            timestamp=i * STEP,
            value=float(value),
        )
        for i in range(int(n_hours * 4))
    ]


def sample_stream():
    """One steadily breaching key, one calm one, interleaved by time."""
    out = polls(48, 150.0, "db1") + polls(48, 40.0, "db2")
    out.sort(key=lambda s: (s.timestamp, s.instance))
    return out


CONFIG = StreamConfig(
    thresholds={"cpu": 100.0},
    jitter_seconds=0.0,
    duplicate_rate=0.0,
    batch_polls=32,
    raise_after=2,
    recover_after=2,
    min_observations=24,
    seed=7,
    planning=True,
    plan_sustained_ticks=2,
    plan_cooldown_seconds=4 * 3600.0,
)


def single_run():
    rt = StreamRuntime(
        planner=EstatePlanner(config=AutoConfig(technique="hes", n_jobs=1)),
        config=CONFIG,
    )
    rt.run(sample_stream())
    rt.finish()
    return rt


def sharded_run(n, config=CONFIG):
    sh = ShardedRuntime(n, config=config, technique="hes", processes=False)
    ticks = sh.run(sample_stream())
    ticks.append(sh.finish())
    return sh, ticks


class TestShardedProposalParity:
    @pytest.mark.parametrize("n", [1, 2])
    def test_proposals_identical_to_single_process(self, stub_selection, n):
        rt = single_run()
        sh, _ = sharded_run(n)
        try:
            assert rt.proposals  # the fixture stream must plan
            assert sh.proposals == rt.proposals
            assert all(isinstance(p, PlanProposal) for p in sh.proposals)
        finally:
            sh.close()

    def test_proposals_ride_merged_ticks_in_key_order(self, stub_selection):
        sh, ticks = sharded_run(2)
        try:
            from_ticks = [p for t in ticks for p in t.proposals]
            assert from_ticks == sh.proposals
            for tick in ticks:
                keys = [p.key for p in tick.proposals]
                assert keys == sorted(keys)
        finally:
            sh.close()


class TestProposePlanParity:
    def test_plan_bytes_identical_across_shard_counts(self, stub_selection):
        plans = []
        for n in (1, 2):
            sh, _ = sharded_run(n)
            try:
                plan = sh.propose_plan(seed=11)
                assert plan is not None
                plans.append(plan.to_json())
            finally:
                sh.close()
        assert plans[0] == plans[1]

    def test_plan_covers_every_thresholded_instance(self, stub_selection):
        sh, _ = sharded_run(2)
        try:
            plan = sh.propose_plan()
            covered = sorted(
                i for c in plan.choices for i in c.blueprint.instances
            )
            assert covered == ["db1", "db2"]
            # the breaching instance is re-provisioned out of its breach
            by_instance = {c.blueprint.instances[0]: c for c in plan.choices}
            assert by_instance["db1"].score.breach_probability < 0.05
        finally:
            sh.close()

    def test_only_fired_restricts_to_firing_keys(self, stub_selection):
        # An effectively-infinite in-run cooldown: the escalator plans
        # db1 once, then stops consuming trigger evidence, so db1's
        # breach streak is still standing when the estate is re-planned
        # under an explicit zero-cooldown policy.
        from repro.planner import TriggerPolicy

        config = StreamConfig(
            **{**CONFIG.__dict__, "plan_cooldown_seconds": 1e9}
        )
        sh, _ = sharded_run(2, config=config)
        try:
            assert len(sh.proposals) == 1
            plan = sh.propose_plan(
                only_fired=True,
                policy=TriggerPolicy(
                    sustained_breach_ticks=2, cooldown_seconds=0.0
                ),
            )
            covered = [i for c in plan.choices for i in c.blueprint.instances]
            assert covered == ["db1"]
        finally:
            sh.close()

    def test_fully_planned_run_has_no_firing_triggers_left(self, stub_selection):
        # The in-run escalator consumes every trigger the moment it
        # fires, so a completed run leaves nothing for only_fired.
        sh, _ = sharded_run(2)
        try:
            assert sh.proposals
            assert sh.propose_plan(only_fired=True) is None
        finally:
            sh.close()

    def test_planning_disabled_yields_no_plan(self, stub_selection):
        config = StreamConfig(
            **{**CONFIG.__dict__, "planning": False}
        )
        sh, _ = sharded_run(2, config=config)
        try:
            assert sh.proposals == []
            # without trigger state nothing fires, so only_fired is empty
            assert sh.propose_plan(only_fired=True) is None
        finally:
            sh.close()


class TestChaosPlanningParity:
    def test_report_identical_with_planning_on(self):
        """Chaos reports carry only serving-plane counters; the planning
        escalator observing the same run must not change a byte."""
        plain = run_scenario("agent-flap", seed=3, days=2.0, planning=False)
        planning = run_scenario("agent-flap", seed=3, days=2.0, planning=True)
        assert planning.to_json() == plain.to_json()
