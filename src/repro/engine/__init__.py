"""Shared execution engine: executors, the staged pipeline, telemetry.

This layer factors the "how it runs" concerns out of the "what it
computes" modules. :mod:`repro.selection` and :mod:`repro.service` both
execute large batches of independent model fits; the engine gives them
one executor abstraction (serial or a reused process pool), one staged
pipeline for Figure 4 selection, and one telemetry recorder, so the
paper's production claims — hundreds of candidates per series, fanned
out across thousands of workloads — rest on a single tested substrate.
"""

from . import kernels
from .executor import (
    ExecutionPolicy,
    Executor,
    PayloadRef,
    PoolExecutor,
    SerialExecutor,
    TaskReport,
    default_executor,
    resolve_payload,
    serialized_size,
    shutdown_default_executors,
)
from .pipeline import (
    PIPELINE_STAGES,
    SelectionContext,
    run_pipeline,
    stage_augment,
    stage_branch_choose,
    stage_characterise,
    stage_enumerate,
    stage_refit,
    stage_repair,
    stage_score,
    stage_split,
)
from .telemetry import RunTrace, StageEvent

__all__ = [
    "kernels",
    "ExecutionPolicy",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "TaskReport",
    "PayloadRef",
    "resolve_payload",
    "serialized_size",
    "default_executor",
    "shutdown_default_executors",
    "RunTrace",
    "StageEvent",
    "SelectionContext",
    "run_pipeline",
    "PIPELINE_STAGES",
    "stage_repair",
    "stage_split",
    "stage_characterise",
    "stage_enumerate",
    "stage_score",
    "stage_augment",
    "stage_branch_choose",
    "stage_refit",
]
