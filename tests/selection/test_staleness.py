"""Tests for the stored-model staleness rules."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.models import SeasonalNaive
from repro.selection import ModelMonitor, StalenessReason
from repro.selection.staleness import WEEK_SECONDS


@pytest.fixture
def fitted():
    rng = np.random.default_rng(0)
    t = np.arange(600)
    y = 50 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 600)
    return SeasonalNaive(24).fit(TimeSeries(y, Frequency.HOURLY))


class TestAgeRule:
    def test_fresh_model(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5)
        verdict = monitor.check()
        assert not verdict.stale
        assert verdict.reason is StalenessReason.FRESH

    def test_week_expiry(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5)
        verdict = monitor.check(now=fitted.train.end + WEEK_SECONDS + 1)
        assert verdict.stale
        assert verdict.reason is StalenessReason.EXPIRED

    def test_custom_expiry(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5, max_age_seconds=3600)
        assert monitor.check(now=fitted.train.end + 3601).stale

    def test_fitted_at_defaults_to_train_end(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.0)
        assert monitor.fitted_at == fitted.train.end


class TestDegradationRule:
    def test_good_observations_stay_fresh(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5)
        forecast = fitted.forecast(24).mean.values
        monitor.observe(forecast + np.random.default_rng(1).normal(0, 1, 24))
        verdict = monitor.check()
        assert not verdict.stale
        assert verdict.current_rmse < 3.0

    def test_bad_observations_trigger_degraded(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5, degradation_factor=2.0)
        forecast = fitted.forecast(6).mean.values
        monitor.observe(forecast + 50.0)  # RMSE 50 >> 3.0
        verdict = monitor.check()
        assert verdict.stale
        assert verdict.reason is StalenessReason.DEGRADED

    def test_needs_minimum_observations(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5)
        monitor.observe(fitted.forecast(2).mean.values + 100.0)
        # Only two observations: degradation rule not armed yet.
        assert not monitor.check().stale

    def test_incremental_observe(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5)
        forecast = fitted.forecast(10).mean.values
        monitor.observe(forecast[:5] + 40.0)
        monitor.observe(forecast[5:] + 40.0)
        assert monitor.n_observed == 10
        assert monitor.check().stale


class TestGrowthRule:
    def test_data_growth_triggers(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.5, growth_factor=0.1)
        horizon = int(0.11 * len(fitted.train))
        monitor.observe(fitted.forecast(horizon).mean.values)
        verdict = monitor.check()
        assert verdict.stale
        assert verdict.reason is StalenessReason.DATA_GROWTH


class TestValidation:
    def test_negative_baseline_rejected(self, fitted):
        with pytest.raises(DataError):
            ModelMonitor(model=fitted, baseline_rmse=-1.0)

    def test_observe_shape_checked(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.0)
        with pytest.raises(DataError):
            monitor.observe(np.zeros((2, 2)))

    def test_observe_accepts_timeseries(self, fitted):
        monitor = ModelMonitor(model=fitted, baseline_rmse=1.0)
        follow_on = TimeSeries(
            fitted.forecast(5).mean.values,
            Frequency.HOURLY,
            start=fitted.train.end + 3600,
        )
        monitor.observe(follow_on)
        assert monitor.n_observed == 5

    def test_describe_readable(self, fitted):
        verdict = ModelMonitor(model=fitted, baseline_rmse=1.0).check()
        assert "ok" in verdict.describe() or "STALE" in verdict.describe()
