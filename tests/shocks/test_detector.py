"""Tests for shock detection, recurrence grouping and calendars."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.shocks import (
    RecurringShock,
    ShockCalendar,
    ShockEvent,
    build_shock_calendar,
    detect_shocks,
    group_recurring,
)


def series_with_spikes(spike_phases=(0,), spike_mag=50.0, period=24, n=720, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    y = 100.0 + 10.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.5, n)
    for phase in spike_phases:
        y[(t % period) == phase] += spike_mag
    return TimeSeries(y, Frequency.HOURLY)


class TestDetectShocks:
    def test_finds_recurring_spike_samples(self):
        events = detect_shocks(series_with_spikes(), period=24)
        spike_indices = {e.index for e in events}
        assert len(spike_indices & set(range(0, 720, 24))) >= 25

    def test_clean_series_no_events(self):
        events = detect_shocks(series_with_spikes(spike_mag=0.0), period=24)
        assert len(events) <= 5  # a handful of noise excursions at most

    def test_negative_shock_detected(self):
        ts = series_with_spikes(spike_mag=-60.0)
        events = detect_shocks(ts, period=24)
        assert any(e.magnitude < -30 for e in events)

    def test_magnitude_estimate(self):
        events = detect_shocks(series_with_spikes(spike_mag=50.0), period=24)
        big = [e.magnitude for e in events if e.index % 24 == 0]
        assert np.median(big) == pytest.approx(50.0, abs=5.0)

    def test_no_period_moving_median_path(self):
        rng = np.random.default_rng(1)
        y = 50 + rng.normal(0, 1, 300)
        y[100] += 40
        events = detect_shocks(TimeSeries(y))
        assert any(e.index == 100 for e in events)

    def test_rejects_missing(self):
        with pytest.raises(DataError):
            detect_shocks(TimeSeries([1.0, np.nan, 2.0]))


class TestGroupRecurring:
    def _events(self, indices, magnitude=50.0):
        return [ShockEvent(index=i, magnitude=magnitude, z_score=10.0) for i in indices]

    def test_nightly_grouped(self):
        events = self._events(range(0, 720, 24))
        shocks = group_recurring(events, 720, candidate_periods=(24,))
        assert len(shocks) == 1
        assert shocks[0].period == 24
        assert shocks[0].phase == 0
        assert shocks[0].occurrences == 30

    def test_paper_min_occurrence_rule(self):
        # "more than 3 times": exactly 3 occurrences stays a fault.
        events = self._events([0, 24, 48])
        assert group_recurring(events, 720, candidate_periods=(24,)) == []
        events4 = self._events([0, 24, 48, 72])
        # 4 occurrences but only 4 of 30 possible windows → coincidence guard.
        assert group_recurring(events4, 720, candidate_periods=(24,)) == []
        # 4 of 4 windows → behaviour.
        assert len(group_recurring(events4, 96, candidate_periods=(24,))) == 1

    def test_configurable_threshold(self):
        events = self._events([0, 24, 48])
        shocks = group_recurring(
            events, 72, candidate_periods=(24,), min_occurrences=2
        )
        assert len(shocks) == 1

    def test_shorter_period_wins(self):
        events = self._events(range(0, 720, 6))
        shocks = group_recurring(events, 720, candidate_periods=(6, 24))
        assert len(shocks) == 1
        assert shocks[0].period == 6

    def test_jitter_tolerance(self):
        indices = [i + (1 if k % 2 else 0) for k, i in enumerate(range(0, 720, 24))]
        events = self._events(indices)
        shocks = group_recurring(events, 720, candidate_periods=(24,), tolerance=1)
        assert len(shocks) == 1

    def test_validation(self):
        with pytest.raises(DataError):
            group_recurring([], 100, candidate_periods=(1,))
        with pytest.raises(DataError):
            group_recurring([], 100, min_occurrences=0)


class TestShockCalendar:
    def _calendar(self, shocks, n_train=240):
        return ShockCalendar(shocks=tuple(shocks), n_train=n_train)

    def test_train_matrix_indicators(self):
        cal = self._calendar([RecurringShock(24, 3, 10, 50.0)])
        X = cal.train_matrix()
        assert X.shape == (240, 1)
        assert X[3, 0] == 1.0 and X[27, 0] == 1.0
        assert X.sum() == 10  # 240 / 24

    def test_future_matrix_continues_phase(self):
        cal = self._calendar([RecurringShock(24, 3, 10, 50.0)], n_train=241)
        Xf = cal.future_matrix(24)
        # Next phase-3 slot after index 240 is 243 → row 2 of the future.
        assert Xf[2, 0] == 1.0
        assert Xf.sum() == 1

    def test_empty_calendar(self):
        cal = self._calendar([])
        assert cal.train_matrix().shape == (240, 0)
        assert cal.future_matrix(10).shape == (10, 0)

    def test_future_horizon_validated(self):
        cal = self._calendar([])
        with pytest.raises(DataError):
            cal.future_matrix(0)

    def test_realigned_shifts_phase(self):
        cal = self._calendar([RecurringShock(24, 3, 10, 50.0)])
        moved = cal.realigned(offset=5, n_train=480)
        assert moved.shocks[0].phase == 8
        assert moved.n_train == 480

    def test_realigned_wraps(self):
        cal = self._calendar([RecurringShock(24, 20, 10, 50.0)])
        moved = cal.realigned(offset=10, n_train=240)
        assert moved.shocks[0].phase == 6


class TestBuildCalendar:
    def test_nightly_backup(self):
        cal = build_shock_calendar(series_with_spikes(), period=24)
        assert cal.n_columns == 1
        assert cal.shocks[0].period == 24

    def test_six_hourly_as_four_daily_phases(self):
        ts = series_with_spikes(spike_phases=(0, 6, 12, 18), spike_mag=60.0)
        cal = build_shock_calendar(ts, period=24, candidate_periods=(24, 168))
        assert cal.n_columns == 4  # the paper's "4 exogenous variables"

    def test_one_off_fault_ignored(self):
        ts = series_with_spikes(spike_mag=0.0)
        values = ts.values.copy()
        values[100] += 90
        cal = build_shock_calendar(ts.with_values(values), period=24)
        assert cal.n_columns == 0

    def test_three_crashes_stay_faults(self):
        # The paper: a system that crashes <= 3 times is in-fault, not
        # exhibiting behaviour.
        ts = series_with_spikes(spike_mag=0.0, n=720)
        values = ts.values.copy()
        for idx in (100, 124, 148):  # even spaced 24 apart: only 3 times
            values[idx] -= 70
        cal = build_shock_calendar(ts.with_values(values), period=24)
        assert cal.n_columns == 0
