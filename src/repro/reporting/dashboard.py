"""Text dashboard: the paper's Figure 8 UI, rendered for a terminal.

Figure 8 of the paper shows the production UI: per-instance resource
charts with the selected model (SARIMAX or HES), the prediction line and
its error bars, plus the exogenous-event selection. This module renders
the same information as fixed-width text — an ASCII sparkline of recent
history, the forecast band, the model identity and any learned shocks —
so the library is usable over ssh exactly where DBAs live.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.timeseries import TimeSeries
from ..exceptions import DataError
from ..models.base import Forecast

__all__ = ["sparkline", "render_panel", "render_dashboard", "DashboardPanel"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Compress a series into a fixed-width unicode sparkline.

    Values are bucket-averaged down to ``width`` columns and mapped onto
    eight bar heights; NaN buckets render as spaces.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise DataError("cannot sparkline an empty array")
    if width < 1:
        raise DataError("width must be >= 1")
    if arr.size > width:
        # Average into width buckets (trailing partial bucket included).
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        buckets = [arr[a:b] for a, b in zip(edges[:-1], edges[1:]) if b > a]
        arr = np.array([np.nanmean(b) if np.isfinite(b).any() else np.nan for b in buckets])
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for v in arr:
        if not np.isfinite(v):
            chars.append(" ")
            continue
        level = 0 if span <= 0 else int(round((v - lo) / span * (len(_BARS) - 1)))
        chars.append(_BARS[level])
    return "".join(chars)


@dataclass(frozen=True)
class DashboardPanel:
    """One Figure 8 panel: a metric, its model and its forecast."""

    title: str
    history: TimeSeries
    forecast: Forecast
    shocks: list[str] = None
    threshold: float | None = None

    def render(self, width: int = 60) -> str:
        hist = self.history.values
        fc = self.forecast
        lines = [f"┌─ {self.title} — {fc.model_label}"]
        lines.append(f"│ history  {sparkline(hist, width)}")
        lines.append(f"│ forecast {sparkline(fc.mean.values, width)}")
        peak = float(np.nanmax(hist))
        trough = float(np.nanmin(hist))
        fc_peak = float(fc.mean.values.max())
        band = float(np.mean(fc.upper.values - fc.lower.values))
        lines.append(
            f"│ observed [{trough:,.1f} … {peak:,.1f}]   "
            f"predicted peak {fc_peak:,.1f} ± {band / 2:,.1f}"
        )
        if self.threshold is not None:
            from ..service.thresholds import predict_breach

            advisory = predict_breach(fc, self.threshold)
            lines.append(f"│ threshold {self.threshold:g}: {advisory.describe()}")
        for shock in self.shocks or []:
            lines.append(f"│ exogenous: {shock}")
        lines.append("└" + "─" * (width + 10))
        return "\n".join(lines)


def render_panel(
    title: str,
    history: TimeSeries,
    forecast: Forecast,
    shocks: list[str] | None = None,
    threshold: float | None = None,
    width: int = 60,
) -> str:
    """Render one dashboard panel (convenience wrapper)."""
    return DashboardPanel(
        title=title,
        history=history,
        forecast=forecast,
        shocks=shocks or [],
        threshold=threshold,
    ).render(width=width)


def render_dashboard(panels: list[DashboardPanel], width: int = 60) -> str:
    """Render a multi-panel dashboard (one clustered instance per panel)."""
    if not panels:
        raise DataError("no panels to render")
    return "\n".join(panel.render(width=width) for panel in panels)
