"""Figure 7: Experiment 2 prediction charts, SARIMAX + Exogenous + Fourier.

The paper's Figure 7 shows the full model forecasting all three metrics of
the OLTP experiment: "the prediction line grows with the trend line and it
captures the seasonality, including multiple seasonality … the model takes
into consideration the introduction of a shock (Backup)". This bench
regenerates the three panels and asserts exactly those behaviours:

* the prediction tracks the growth trend (the level keeps climbing);
* the 07:00–10:00 surge block appears in the prediction (C3);
* the backup shock hours spike in the IOPS prediction (C4).
"""

import numpy as np

from repro.core import rmse
from repro.models import Sarimax
from repro.reporting import Table, prediction_chart
from repro.shocks import build_shock_calendar

from .conftest import metric_series, output_path

METRICS = ("cpu", "memory", "logical_iops")
HISTORY_SHOWN = 7 * 24


def _forecast_metric(series):
    train, test = series.train_test_split()
    horizon = len(test)
    calendar = build_shock_calendar(train, period=24, candidate_periods=(24, 168))
    exog = calendar.train_matrix() if calendar.n_columns else None
    exog_future = calendar.future_matrix(horizon) if calendar.n_columns else None
    model = Sarimax(
        (2, 1, 1),
        seasonal=(1, 1, 1, 24),
        fourier_periods=[168],
        fourier_orders=[2],
    )
    fitted = model.fit(train, exog=exog)
    forecast = fitted.forecast(horizon, exog_future=exog_future)
    return train, test, forecast, calendar


def test_fig7_oltp_predictions(benchmark, oltp_run):
    results = {}
    for metric in METRICS:
        series = metric_series(oltp_run, metric=metric, instance="cdbm011")
        if metric == "cpu":
            results[metric] = benchmark.pedantic(
                lambda: _forecast_metric(series), rounds=1, iterations=1
            )
        else:
            results[metric] = _forecast_metric(series)

    table = Table(
        ["Panel", "Metric", "Model", "RMSE", "MAPA %"],
        title="Figure 7: Experiment 2 predictions (SARIMAX + Exog + Fourier)",
    )
    for i, metric in enumerate(METRICS):
        train, test, forecast, calendar = results[metric]
        fig = prediction_chart(
            f"fig7{'abc'[i]}_{metric}", train.tail(HISTORY_SHOWN), test, forecast
        )
        fig.save(output_path(f"fig7{'abc'[i]}_{metric}.csv"))
        from repro.core import mapa

        table.add_row(
            [
                f"7({'abc'[i]})",
                metric,
                forecast.model_label,
                rmse(test, forecast.mean),
                mapa(test, forecast.mean),
            ]
        )
    print()
    table.print()

    # --- shape assertions ---------------------------------------------------
    # Trend: prediction level continues above the earlier history.
    for metric in METRICS:
        train, test, forecast, __ = results[metric]
        early_level = train.values[: 7 * 24].mean()
        assert forecast.mean.values.mean() > early_level, f"{metric}: trend lost"
        assert rmse(test, forecast.mean) < 0.25 * float(test.values.mean()), metric

    # Multiple seasonality: surge hours ride above the pre-dawn hours in
    # the CPU prediction.
    __, test, cpu_fc, __ = results["cpu"]
    phases = (np.arange(cpu_fc.horizon) + len(results["cpu"][0])) % 24
    surge = cpu_fc.mean.values[(phases >= 7) & (phases < 10)].mean()
    flank = cpu_fc.mean.values[(phases >= 3) & (phases < 6)].mean()
    assert surge > flank, "C3 surge not in the prediction"

    # Shock: the IOPS prediction spikes at the learned backup phases.
    train, test, iops_fc, calendar = results["logical_iops"]
    assert calendar.n_columns == 4
    phases = (len(train) + np.arange(iops_fc.horizon)) % 24
    shock_phases = {s.phase for s in calendar.shocks}
    spike = np.array([p in shock_phases for p in phases])
    assert iops_fc.mean.values[spike].mean() > 1.2 * iops_fc.mean.values[~spike].mean(), (
        "C4 backup spikes not in the prediction"
    )
