#!/usr/bin/env python
"""Experiment One, end to end: OLAP cluster → agent → planner → sizing.

Recreates the paper's Experiment One environment (a two-node clustered
database running a 40-user OLAP workload with a nightly backup on node 1),
monitors it with a fault-injecting agent, stores the polls in the central
repository, and asks the :class:`CapacityPlanner` the capacity-planning
questions from Section 8:

* short-term monitoring — what will resource usage look like tomorrow?
* proactive thresholds — is any instance about to run out of CPU?
* sizing — what shape should this workload's cloud instance be?

Run:  python examples/olap_capacity_planning.py
"""

from repro import AutoConfig
from repro.agent import FaultModel, MonitoringAgent
from repro.service import CapacityPlanner
from repro.workloads import OlapExperiment, generate_olap_run

# --- 1. Simulate the Experiment One cluster at 15-minute polls ------------
config = OlapExperiment()
run = generate_olap_run(config, hourly=False)
print(f"simulated {config.days:g} days of {list(run.instances)} at 15-min polls")

# --- 2. Monitor it with an imperfect agent --------------------------------
agent = MonitoringAgent(fault_model=FaultModel(miss_probability=0.01))
samples = agent.poll_run(run)
print(f"agent recorded {len(samples)} samples (some polls were missed)")

# --- 3. Central repository + planner ---------------------------------------
planner = CapacityPlanner(config=AutoConfig(n_jobs=0))
planner.ingest(samples)

for instance in ("cdbm011", "cdbm012"):
    print(f"\n=== {instance} ===")
    for metric, threshold, unit in (
        ("cpu", 80.0, 1.0),
        ("logical_iops", 4_000_000.0, 50_000.0),
        ("memory", 16_384.0, 512.0),
    ):
        forecast = planner.forecast(instance, metric)
        advisory = planner.threshold_advisory(instance, metric, threshold)
        sizing = planner.capacity_recommendation(instance, metric, unit=unit)
        peak = forecast.mean.values.max()
        print(f"  {metric:13s} model={forecast.model_label}")
        print(f"  {'':13s} next-24h peak ≈ {peak:,.1f}")
        print(f"  {'':13s} threshold: {advisory.describe()}")
        print(f"  {'':13s} sizing   : {sizing.describe()}")
