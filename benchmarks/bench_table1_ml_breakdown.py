"""Table 1: Machine Learning Breakdown and Observations.

Regenerates the paper's Table 1 — the observation/train/test/prediction
budget per forecast granularity for both the SARIMAX and HES branches —
directly from the library's :data:`repro.core.SPLIT_RULES`, and verifies
the pipeline actually honours the budgets when splitting real series.

Paper values (must match exactly):

    SARIMAX/HES Hourly  1008 = 984 + 24, predict 24 hours
    SARIMAX/HES Daily     90 =  83 +  7, predict  7 days
    SARIMAX/HES Weekly    92 =  88 +  4, predict  4 weeks
"""

import numpy as np

from repro.core import Frequency, TimeSeries
from repro.reporting import Table

PAPER_TABLE1 = {
    Frequency.HOURLY: (1008, 984, 24, "24 (Hours)"),
    Frequency.DAILY: (90, 83, 7, "7 (days)"),
    Frequency.WEEKLY: (92, 88, 4, "4 (Weeks)"),
}


def build_table() -> Table:
    table = Table(
        ["Forecast", "Obs", "Train Set", "Test Set", "Prediction"],
        title="Table 1: Machine Learning Breakdown and Observations",
    )
    for technique in ("SARIMAX", "HES"):
        for freq, (obs, train, test, prediction) in PAPER_TABLE1.items():
            rule = freq.split_rule
            table.add_row(
                [
                    f"{technique} {freq.label()}",
                    str(rule.observations),
                    str(rule.train_size),
                    str(rule.test_size),
                    prediction,
                ]
            )
    return table


def check_splits() -> None:
    """The splits produced on real series match the declared budgets."""
    for freq, (obs, train_size, test_size, __) in PAPER_TABLE1.items():
        rule = freq.split_rule
        assert (rule.observations, rule.train_size, rule.test_size) == (
            obs,
            train_size,
            test_size,
        ), f"Table 1 mismatch for {freq}"
        series = TimeSeries(np.arange(float(obs + 13)), freq)
        train, test = series.train_test_split()
        assert len(train) == train_size
        assert len(test) == test_size
        # The most recent window is used.
        assert test.values[-1] == series.values[-1]


def test_table1_ml_breakdown(benchmark):
    table = build_table()
    benchmark(check_splits)
    print()
    table.print()
    assert table.n_rows == 6
