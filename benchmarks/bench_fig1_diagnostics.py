"""Figure 1: Visualising Time Series Data (correlogram, decomposition,
differencing).

Regenerates the data behind the paper's three diagnostic panels for the
OLAP CPU metric:

* 1(a) — the ACF/PACF correlogram over 30 lags with the ±1.96/√n band
  ("the shaded areas") used to pre-populate SARIMA orders;
* 1(b) — the classical decomposition (observed/trend/seasonal/residual);
* 1(c) — the differenced series that stabilises the trend.

Each panel is saved as CSV under ``benchmarks/output/`` and the key
structural facts are asserted: seasonal lag 24 is significant, the
decomposition carries a strong daily component, and differencing makes
the ADF test reject a unit root.
"""

import numpy as np

from repro.core import adf_test, correlogram, decompose, difference
from repro.reporting import FigureData, Table

from .conftest import metric_series, output_path


def test_fig1_diagnostics(benchmark, olap_run):
    series = metric_series(olap_run, "cdbm011", "cpu")

    gram = benchmark(lambda: correlogram(series, nlags=30))

    # Panel (a): correlogram.
    fig_a = FigureData("fig1a_correlogram")
    lags = np.arange(gram.nlags + 1, dtype=float)
    fig_a.add("lag", lags)
    fig_a.add("acf", gram.acf_values)
    fig_a.add("pacf", gram.pacf_values)
    fig_a.add("band_upper", np.full(lags.size, gram.confidence))
    fig_a.add("band_lower", np.full(lags.size, -gram.confidence))
    fig_a.save(output_path("fig1a_correlogram.csv"))

    # Panel (b): decomposition.
    dec = decompose(series, period=24)
    fig_b = FigureData("fig1b_decomposition")
    fig_b.add("timestamp", series.timestamps)
    fig_b.add("observed", dec.observed)
    fig_b.add("trend", dec.trend)
    fig_b.add("seasonal", dec.seasonal)
    fig_b.add("residual", dec.residual)
    fig_b.save(output_path("fig1b_decomposition.csv"))

    # Panel (c): differencing.
    diffed = difference(series.values, d=1)
    fig_c = FigureData("fig1c_differenced")
    fig_c.add("timestamp", series.timestamps[1:])
    fig_c.add("differenced", diffed)
    fig_c.save(output_path("fig1c_differenced.csv"))

    summary = Table(
        ["Diagnostic", "Value"],
        title="Figure 1 diagnostics summary (OLAP cdbm011 CPU)",
    )
    summary.add_row(["ACF @ lag 24", gram.acf_values[24]])
    summary.add_row(["confidence band ±", gram.confidence])
    summary.add_row(["seasonal strength", dec.seasonal_strength()])
    summary.add_row(["ADF p (raw)", adf_test(series).p_value])
    summary.add_row(["ADF p (differenced)", adf_test(diffed).p_value])
    print()
    summary.print()

    # --- structural assertions --------------------------------------------
    assert 24 in gram.significant_acf_lags(), "daily lag must poke out of the band"
    assert dec.seasonal_strength() > 0.7
    assert adf_test(diffed).stationary, "one difference must stabilise the series"
    # Differencing removed the drift: the differenced series is centred on
    # zero relative to its own variability (Figure 1(c)'s flat band).
    assert abs(float(np.mean(diffed))) < 0.05 * float(np.std(diffed))
