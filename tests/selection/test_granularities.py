"""Tests for the pipeline at daily and weekly granularity (Table 1 rows).

The paper's Table 1 prescribes budgets for daily (90 obs, 83/7) and weekly
(92 obs, 88/4) forecasts. A 92-point weekly series cannot support a
52-week seasonal model, so the pipeline must degrade gracefully: ARIMA +
Holt instead of SARIMA + Holt-Winters.
"""

import numpy as np

from repro.core import Frequency, TimeSeries
from repro.selection import AutoConfig, auto_forecast, auto_select


def daily_series(n=97, seed=0):
    """Daily data with a weekly cycle and mild trend (n > Table 1's 90)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    weekday = t % 7
    values = (
        100.0
        + 0.3 * t
        + np.where(weekday >= 5, -25.0, 5.0)  # weekend dip
        + rng.normal(0, 2.0, n)
    )
    return TimeSeries(values, Frequency.DAILY, name="daily_cpu")


def weekly_series(n=96, seed=1):
    """Weekly data with trend only (too short for a yearly cycle)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return TimeSeries(200.0 + 1.5 * t + rng.normal(0, 5.0, n), Frequency.WEEKLY)


class TestDaily:
    def test_table1_split_used(self):
        series = daily_series()
        outcome = auto_select(series, config=AutoConfig(n_jobs=0))
        # 90-point window → 83 train; refit on full keeps all 97.
        assert np.isfinite(outcome.test_rmse)

    def test_weekly_cycle_detected(self):
        series = daily_series()
        outcome = auto_select(series, config=AutoConfig(n_jobs=0))
        assert outcome.seasonality is not None
        assert 7 in outcome.seasonality.periods

    def test_forecast_horizon_seven_days(self):
        forecast, __ = auto_forecast(daily_series(), config=AutoConfig(n_jobs=0))
        assert forecast.horizon == 7

    def test_forecast_tracks_weekend_dip(self):
        series = daily_series(n=120)
        forecast, outcome = auto_forecast(
            series, horizon=14, config=AutoConfig(n_jobs=0)
        )
        day_of_week = (len(series) + np.arange(14)) % 7
        weekend = forecast.mean.values[day_of_week >= 5].mean()
        weekday = forecast.mean.values[day_of_week < 5].mean()
        assert weekend < weekday - 10.0

    def test_hes_branch_daily(self):
        outcome = auto_select(daily_series(), config=AutoConfig(technique="hes"))
        assert outcome.technique == "hes"
        assert outcome.model.label() == "HES"


class TestWeekly:
    def test_pipeline_degrades_to_nonseasonal(self):
        series = weekly_series()
        outcome = auto_select(series, config=AutoConfig(n_jobs=0))
        assert np.isfinite(outcome.test_rmse)
        # No 52-week component could be supported by 88 training points.
        if outcome.best_spec is not None:
            assert outcome.best_spec.seasonal is None

    def test_forecast_horizon_four_weeks(self):
        forecast, __ = auto_forecast(weekly_series(), config=AutoConfig(n_jobs=0))
        assert forecast.horizon == 4

    def test_trend_extrapolated(self):
        series = weekly_series()
        forecast, __ = auto_forecast(series, config=AutoConfig(n_jobs=0))
        # The forecast continues near the trend's current level — far
        # above where the series started — rather than reverting.
        assert forecast.mean.values[-1] > series.values[:40].mean()
        assert forecast.mean.values[-1] > 0.95 * series.values[-5:].mean()

    def test_hes_branch_degrades_to_holt_family(self):
        outcome = auto_select(weekly_series(), config=AutoConfig(technique="hes"))
        assert outcome.model.label() in ("HLT", "SES")

    def test_accuracy_sane(self):
        rng = np.random.default_rng(9)
        t = np.arange(100)
        values = 200.0 + 1.5 * t + rng.normal(0, 5.0, 100)
        series = TimeSeries(values[:96], Frequency.WEEKLY)
        forecast, __ = auto_forecast(series, horizon=4, config=AutoConfig(n_jobs=0))
        truth = values[96:]
        from repro.core import rmse

        assert rmse(truth, forecast.mean.values) < 20.0
