"""Tests for the CUSUM drift detector on roll innovations."""

import numpy as np
import pytest

from repro.stream import CusumDetector


class TestCusum:
    def test_healthy_noise_never_trips(self):
        rng = np.random.default_rng(0)
        det = CusumDetector()
        assert det.update_many(rng.normal(0.0, 0.5, 200)) is False
        assert det.g_pos < det.h and det.g_neg < det.h

    def test_positive_shift_trips(self):
        det = CusumDetector()
        tripped_at = None
        for i in range(30):
            if det.update(1.5):
                tripped_at = i
                break
        # Each step adds (1.5 - k) = 1.0; h = 8 falls at step 9.
        assert tripped_at == 8

    def test_negative_shift_trips(self):
        det = CusumDetector()
        assert det.update_many(np.full(30, -1.5)) is True
        assert det.g_neg > det.h

    def test_slow_drift_eventually_trips(self):
        det = CusumDetector()
        steps = 0
        while not det.update(1.0) and steps < 100:
            steps += 1
        assert steps < 50  # 1-sigma drift accumulates at (1 - k) per step

    def test_nonfinite_trips_immediately(self):
        det = CusumDetector()
        assert det.update(np.nan) is True
        assert det.g_pos == np.inf and det.g_neg == np.inf
        # And stays tripped through subsequent healthy samples.
        assert det.update(0.0) is True

    def test_reset(self):
        det = CusumDetector()
        det.update_many(np.full(30, 2.0))
        det.reset()
        assert det.g_pos == 0.0 and det.g_neg == 0.0
        assert det.update(0.0) is False

    def test_update_many_reports_any_trip(self):
        det = CusumDetector()
        burst = np.concatenate([np.full(20, 3.0), np.zeros(50)])
        assert det.update_many(burst) is True

    def test_custom_thresholds(self):
        loose = CusumDetector(k=2.0, h=50.0)
        assert loose.update_many(np.full(30, 2.0)) is False
