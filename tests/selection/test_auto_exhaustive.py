"""Tests for the exhaustive-grid path of the Figure 4 pipeline.

The benches use correlogram pruning by default; these tests exercise the
``exhaustive=True`` branch (the paper's full protocol) on a deliberately
small lag budget so it stays fast.
"""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.selection import AutoConfig, auto_select
from repro.selection.grid import sarimax_grid


@pytest.fixture(scope="module")
def small_series():
    rng = np.random.default_rng(3)
    t = np.arange(420)
    return TimeSeries(
        70 + 9 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, 420),
        Frequency.HOURLY,
    )


class TestExhaustivePath:
    def test_evaluates_full_small_grid(self, small_series):
        outcome = auto_select(
            small_series,
            config=AutoConfig(
                technique="sarimax",
                exhaustive=True,
                max_lag=2,
                n_jobs=0,
                detect_shock_calendar=False,
            ),
        )
        # max_lag=2 → 2 lags × 22 = 44 SARIMAX candidates (+augmentations).
        assert outcome.n_evaluated >= len(sarimax_grid(24, max_lag=2))
        assert np.isfinite(outcome.test_rmse)
        assert outcome.test_rmse < 3.0

    def test_exhaustive_at_least_as_good_as_pruned(self, small_series):
        pruned = auto_select(
            small_series,
            config=AutoConfig(
                technique="sarimax", max_lag=2, n_jobs=0, detect_shock_calendar=False
            ),
        )
        exhaustive = auto_select(
            small_series,
            config=AutoConfig(
                technique="sarimax",
                exhaustive=True,
                max_lag=2,
                n_jobs=0,
                detect_shock_calendar=False,
            ),
        )
        # The exhaustive base grid is a superset at a given lag budget;
        # the augmentation stage builds on each run's own winner, so allow
        # a small tolerance rather than strict dominance.
        assert exhaustive.test_rmse <= pruned.test_rmse * 1.1
