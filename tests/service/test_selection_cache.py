"""Tests for the estate selection cache (reuse-for-one-week rule)."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.selection import AutoConfig
from repro.service import EstatePlanner, SelectionCache, WorkloadStatus
from repro.service.selection_cache import config_fingerprint, series_fingerprint


def _series(n=300, seed=3, trend=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    y = 40.0 + trend * t + 6.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.0, n)
    return TimeSeries(y, Frequency.HOURLY, name="cpu")


@pytest.fixture()
def planner():
    return EstatePlanner(config=AutoConfig(technique="sarimax", max_lag=4))


@pytest.fixture()
def grid_call_counter(monkeypatch):
    """Count evaluate_grid calls made by the pipeline's score stages."""
    from repro.engine import pipeline
    from repro.selection.grid import evaluate_grid

    calls = []

    def counting(*args, **kwargs):
        calls.append(1)
        return evaluate_grid(*args, **kwargs)

    monkeypatch.setattr(pipeline, "evaluate_grid", counting)
    return calls


class TestFingerprints:
    def test_series_fingerprint_content_sensitive(self):
        a = _series(seed=3)
        same = _series(seed=3)
        different = _series(seed=4)
        assert series_fingerprint(a) == series_fingerprint(same)
        assert series_fingerprint(a) != series_fingerprint(different)
        grown = TimeSeries(np.append(a.values, 99.0), Frequency.HOURLY, name="cpu")
        assert series_fingerprint(a) != series_fingerprint(grown)

    def test_config_fingerprint_ignores_n_jobs(self):
        base = AutoConfig(technique="sarimax")
        assert config_fingerprint(base) == config_fingerprint(
            AutoConfig(technique="sarimax", n_jobs=4)
        )
        assert config_fingerprint(base) != config_fingerprint(
            AutoConfig(technique="sarimax", max_lag=5)
        )


class TestCacheHits:
    def test_second_report_zero_grid_fits(self, planner, grid_call_counter):
        series = _series()
        key = planner.register("acme", "db1", "cpu", series, threshold=60.0)
        r1 = planner.report()
        fits_first = len(grid_call_counter)
        assert fits_first > 0
        assert r1.trace.counters["selection_cache_misses"] == 1

        planner.register("acme", "db1", "cpu", series, threshold=60.0)  # unchanged
        r2 = planner.report()
        assert len(grid_call_counter) == fits_first  # zero new grid fits
        assert r2.trace.counters["selection_cache_hits"] == 1
        entry = r2.modelled[0]
        assert entry.key == key
        assert entry.status is WorkloadStatus.MODELLED
        assert entry.detail == "selection cache hit"
        assert entry.advisory is not None  # advisory recomputed from cache

    def test_changed_series_misses(self, planner, grid_call_counter):
        planner.register("acme", "db1", "cpu", _series(seed=3))
        planner.report()
        fits_first = len(grid_call_counter)
        planner.register("acme", "db1", "cpu", _series(seed=5))  # new data
        r2 = planner.report()
        assert len(grid_call_counter) > fits_first
        assert r2.trace.counters["selection_cache_misses"] == 1

    def test_changed_config_misses(self, grid_call_counter):
        cache = SelectionCache()
        series = _series()
        p1 = EstatePlanner(config=AutoConfig(technique="sarimax", max_lag=4), cache=cache)
        p1.register("acme", "db1", "cpu", series)
        p1.report()
        fits_first = len(grid_call_counter)
        p2 = EstatePlanner(config=AutoConfig(technique="sarimax", max_lag=3), cache=cache)
        p2.register("acme", "db1", "cpu", series)
        p2.report()
        assert len(grid_call_counter) > fits_first

    def test_threshold_change_still_hits_with_fresh_advisory(self, planner, grid_call_counter):
        series = _series()
        planner.register("acme", "db1", "cpu", series, threshold=60.0)
        r1 = planner.report()
        advisory1 = r1.modelled[0].advisory
        fits_first = len(grid_call_counter)
        planner.register("acme", "db1", "cpu", series, threshold=1.0)  # lower bar
        r2 = planner.report()
        assert len(grid_call_counter) == fits_first
        advisory2 = r2.modelled[0].advisory
        assert advisory2.severity != advisory1.severity  # recomputed, not stale


class TestInvalidation:
    def test_degraded_rmse_forces_reselection(self, planner, grid_call_counter):
        series = _series()
        key = planner.register("acme", "db1", "cpu", series, threshold=60.0)
        planner.report()
        fits_first = len(grid_call_counter)

        verdict = planner.observe(key, np.full(24, 1e5))  # far from any forecast
        assert verdict is not None and verdict.stale
        assert planner._entries[key].status is WorkloadStatus.PENDING
        assert planner.cache.invalidations == 1

        r = planner.report()  # re-selects from scratch
        assert len(grid_call_counter) > fits_first
        assert r.trace.counters["selection_cache_misses"] == 1
        assert r.modelled[0].status is WorkloadStatus.MODELLED

    def test_healthy_observations_keep_cache(self, planner):
        series = _series()
        key = planner.register("acme", "db1", "cpu", series)
        planner.report()
        entry = planner._entries[key]
        next_day = entry.outcome.model.forecast(24).mean.values
        verdict = planner.observe(key, next_day)  # spot-on observations
        assert verdict is not None and not verdict.stale
        assert planner.cache.invalidations == 0
        assert entry.status is WorkloadStatus.MODELLED

    def test_observe_unknown_key_rejected(self, planner):
        from repro.exceptions import DataError
        from repro.service import WorkloadKey

        with pytest.raises(DataError):
            planner.observe(WorkloadKey("x", "y", "z"), [1.0])

    def test_observe_before_report_is_none(self, planner):
        key = planner.register("acme", "db1", "cpu", _series())
        assert planner.observe(key, [1.0]) is None


class TestCacheUnit:
    def test_get_put_roundtrip_and_counters(self):
        cache = SelectionCache()
        planner = EstatePlanner(
            config=AutoConfig(technique="sarimax", max_lag=4), cache=cache
        )
        series = _series()
        key = planner.register("a", "w", "cpu", series)
        assert cache.get(key, series, planner.config) is None
        planner.report()
        assert len(cache) == 1
        outcome = cache.get(key, series, planner.config)
        assert outcome is not None
        assert cache.hits == 1
        assert cache.misses >= 1

    def test_invalidate_and_clear(self):
        cache = SelectionCache()
        assert not cache.invalidate("nope")
        planner = EstatePlanner(
            config=AutoConfig(technique="sarimax", max_lag=4), cache=cache
        )
        key = planner.register("a", "w", "cpu", _series())
        planner.report()
        assert cache.invalidate(key)
        assert len(cache) == 0
        cache.clear()
