"""Tests for report tables and figure-data export."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.models import Naive
from repro.reporting import (
    FigureData,
    Table,
    format_number,
    prediction_chart,
    workload_chart,
)


class TestFormatNumber:
    def test_plain(self):
        assert format_number(8.4198) == "8.42"

    def test_large_with_separator(self):
        assert format_number(151278.4) == "151,278"

    def test_nan_and_inf(self):
        assert format_number(float("nan")) == "-"
        assert format_number(float("inf")) == "inf"


class TestTable:
    def test_render_contains_rows(self):
        t = Table(["Model", "RMSE"], title="Results")
        t.add_row(["ARIMA (13,1,1)", 8.93])
        t.add_row(["SARIMAX (13,1,2)(1,1,1,24)", 8.4198])
        text = t.render()
        assert "Results" in text
        assert "ARIMA (13,1,1)" in text
        assert "8.93" in text

    def test_column_count_enforced(self):
        t = Table(["a", "b"])
        with pytest.raises(DataError):
            t.add_row(["only one"])

    def test_separator_rows(self):
        t = Table(["a"])
        t.add_row(["x"])
        t.add_separator()
        t.add_row(["y"])
        assert t.n_rows == 2
        lines = t.render().splitlines()
        # The header separator line recurs for the explicit separator.
        assert lines.count(lines[1]) == 2

    def test_needs_columns(self):
        with pytest.raises(DataError):
            Table([])


class TestFigureData:
    def test_csv_roundtrip(self):
        fig = FigureData("panel")
        fig.add("t", np.array([0.0, 1.0]))
        fig.add("y", np.array([5.0, np.nan]))
        csv_text = fig.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "t,y"
        assert lines[1] == "0,5"
        assert lines[2] == "1,"  # NaN → empty cell

    def test_alignment_enforced(self):
        fig = FigureData("panel")
        fig.add("t", np.arange(5.0))
        with pytest.raises(DataError):
            fig.add("y", np.arange(4.0))

    def test_save(self, tmp_path):
        fig = FigureData("panel")
        fig.add("t", np.arange(3.0))
        path = tmp_path / "fig.csv"
        fig.save(str(path))
        assert path.read_text().startswith("t")

    def test_summary(self):
        fig = FigureData("panel")
        fig.add("y", np.array([1.0, 5.0, np.nan]))
        assert fig.summary()["y"] == (1.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            FigureData("panel").to_csv()


class TestChartBuilders:
    def test_prediction_chart_layout(self):
        history = TimeSeries(np.arange(48.0), Frequency.HOURLY)
        actual = TimeSeries(np.arange(48.0, 60.0), Frequency.HOURLY, start=48 * 3600.0)
        forecast = Naive().fit(history).forecast(12)
        fig = prediction_chart("fig6a", history, actual, forecast)
        assert set(fig.columns) == {
            "timestamp", "history", "actual", "prediction", "lower", "upper",
        }
        n = 48 + 12
        assert all(len(v) == n for v in fig.columns.values())
        # History NaN-padded over the forecast region and vice versa.
        assert np.isnan(fig.columns["history"][48:]).all()
        assert np.isnan(fig.columns["prediction"][:48]).all()
        assert np.isfinite(fig.columns["prediction"][48:]).all()

    def test_workload_chart(self):
        a = TimeSeries(np.arange(10.0), Frequency.HOURLY)
        b = TimeSeries(np.arange(10.0) * 2, Frequency.HOURLY)
        fig = workload_chart("fig2", {"cpu": a, "iops": b})
        assert set(fig.columns) == {"timestamp", "cpu", "iops"}

    def test_workload_chart_alignment(self):
        a = TimeSeries(np.arange(10.0), Frequency.HOURLY)
        b = TimeSeries(np.arange(5.0), Frequency.HOURLY)
        with pytest.raises(DataError):
            workload_chart("fig", {"a": a, "b": b})

    def test_workload_chart_empty(self):
        with pytest.raises(DataError):
            workload_chart("fig", {})
