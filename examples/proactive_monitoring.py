#!/usr/bin/env python
"""Proactive threshold monitoring: predict the breach before it happens.

The paper's conclusion sketches the scenario: "a performance problem that
begins weeks earlier but suddenly hits a threshold, becoming non-compliant
relative to the SLA. The approach proposed in this paper could advise
through a prediction that there is likely to be an issue soon."

This example builds exactly that workload — a web application whose
transaction volume grows steadily toward its capacity limit — and shows
the advisory escalating from NONE through POSSIBLE/LIKELY to CERTAIN as
the trend closes in on the threshold, days before a reactive monitor would
fire.

Run:  python examples/proactive_monitoring.py
"""

import numpy as np

from repro import AutoConfig, Frequency, TimeSeries, auto_forecast
from repro.service import predict_breach

THRESHOLD = 85.0  # SLA ceiling for CPU%

rng = np.random.default_rng(5)
total_days = 60
hours = np.arange(total_days * 24)
cpu = (
    40.0
    + 0.55 * hours / 24  # the slow-burn problem: +0.55 CPU points/day
    + 9.0 * np.sin(2 * np.pi * hours / 24)
    + rng.normal(0, 1.2, hours.size)
)
full = TimeSeries(cpu, Frequency.HOURLY, name="cpu")

print(f"SLA threshold: {THRESHOLD} % CPU")
print(f"{'as-of day':>10} {'observed max':>13} {'advisory':<60}")

for as_of_day in (44, 48, 52, 56, 60):
    window = full[: as_of_day * 24]
    forecast, outcome = auto_forecast(
        window,
        horizon=7 * 24,  # look one week out
        config=AutoConfig(n_jobs=0, detect_shock_calendar=False),
    )
    advisory = predict_breach(forecast, THRESHOLD)
    observed_max = window.values.max()
    print(f"{as_of_day:>10} {observed_max:>13.1f} {advisory.describe():<60}")

print(
    "\nA reactive threshold monitor stays silent until the observed max "
    f"crosses {THRESHOLD}; the forecast flags the breach days earlier."
)
