"""Rolling-origin backtesting: continuous model-performance assessment.

The paper's learning engine "continually assess[es] the models performance
through Machine Learning to account for new behaviours the data (system)
may adopt". A single train/test split (Figure 4's selection step) answers
"which model is best *right now*"; rolling-origin evaluation answers the
operational questions behind the staleness rules — how fast does accuracy
decay with forecast age, and is model A's win over model B stable across
windows or a one-split fluke?

:func:`rolling_backtest` slides an origin through the series: at each
origin the model is fitted on everything before it and scored on the next
``horizon`` points. Results aggregate per-origin and per-lead-time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import rmse
from ..core.timeseries import TimeSeries
from ..exceptions import CapacityPlanningError, DataError
from ..models.base import ForecastModel

__all__ = ["BacktestResult", "rolling_backtest", "compare_backtests"]


@dataclass(frozen=True)
class BacktestResult:
    """Outcome of a rolling-origin backtest.

    Attributes
    ----------
    origins:
        The split points used (indices into the series).
    per_origin_rmse:
        RMSE of the ``horizon``-step forecast made at each origin
        (NaN where the fit failed).
    per_lead_rmse:
        RMSE pooled across origins for each lead time 1..horizon — the
        accuracy-vs-forecast-age curve the staleness rules care about.
    n_failures:
        Origins whose fit or forecast raised.
    """

    model_label: str
    origins: tuple[int, ...]
    per_origin_rmse: np.ndarray
    per_lead_rmse: np.ndarray
    n_failures: int

    @property
    def mean_rmse(self) -> float:
        finite = self.per_origin_rmse[np.isfinite(self.per_origin_rmse)]
        return float(finite.mean()) if finite.size else float("nan")

    @property
    def horizon(self) -> int:
        return int(self.per_lead_rmse.size)

    def describe(self) -> str:
        return (
            f"{self.model_label}: mean RMSE {self.mean_rmse:.4g} over "
            f"{len(self.origins)} origins (h={self.horizon}, "
            f"{self.n_failures} failures)"
        )


def rolling_backtest(
    model_factory,
    series: TimeSeries,
    horizon: int,
    n_origins: int = 5,
    min_train: int | None = None,
    step: int | None = None,
) -> BacktestResult:
    """Evaluate a model spec over sliding forecast origins.

    Parameters
    ----------
    model_factory:
        A zero-argument callable returning a fresh unfitted
        :class:`~repro.models.base.ForecastModel` (a class works:
        ``lambda: Arima((1,1,1))``). A fresh instance per origin keeps
        the windows independent.
    series:
        The full history to slide through (no missing values).
    horizon:
        Forecast length scored at each origin.
    n_origins:
        Number of forecast origins; they end at the latest possible
        origin and are spaced ``step`` apart (default: ``horizon``, i.e.
        non-overlapping test windows).
    min_train:
        Smallest allowed training window; origins before it are dropped.
    """
    if horizon < 1:
        raise DataError("horizon must be >= 1")
    if n_origins < 1:
        raise DataError("n_origins must be >= 1")
    if series.has_missing():
        raise DataError("interpolate missing values before backtesting")
    step = step or horizon
    if step < 1:
        raise DataError("step must be >= 1")

    probe = model_factory()
    if not isinstance(probe, ForecastModel):
        raise DataError("model_factory must produce ForecastModel instances")
    min_train = max(min_train or 0, probe.min_observations)

    last_origin = len(series) - horizon
    origins = [last_origin - k * step for k in range(n_origins)]
    origins = sorted(o for o in origins if o >= min_train)
    if not origins:
        raise DataError(
            f"series too short: need at least {min_train + horizon} points "
            f"for one origin, have {len(series)}"
        )

    per_origin = np.full(len(origins), np.nan)
    errors_by_lead: list[list[float]] = [[] for __ in range(horizon)]
    n_failures = 0
    label = ""
    for i, origin in enumerate(origins):
        train = series[:origin]
        actual = series[origin : origin + horizon]
        try:
            fitted = model_factory().fit(train)
            forecast = fitted.forecast(horizon)
        except (CapacityPlanningError, np.linalg.LinAlgError, ValueError):
            n_failures += 1
            continue
        label = fitted.label()
        per_origin[i] = rmse(actual, forecast.mean)
        residual = actual.values - forecast.mean.values
        for lead in range(horizon):
            errors_by_lead[lead].append(float(residual[lead]))

    per_lead = np.array(
        [
            np.sqrt(np.mean(np.square(errs))) if errs else np.nan
            for errs in errors_by_lead
        ]
    )
    return BacktestResult(
        model_label=label or type(probe).__name__,
        origins=tuple(origins),
        per_origin_rmse=per_origin,
        per_lead_rmse=per_lead,
        n_failures=n_failures,
    )


def compare_backtests(results: list[BacktestResult]) -> list[BacktestResult]:
    """Rank backtest results by mean RMSE (NaN means sort last)."""
    if not results:
        raise DataError("nothing to compare")
    return sorted(
        results,
        key=lambda r: (np.isnan(r.mean_rmse), r.mean_rmse),
    )
