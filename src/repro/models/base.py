"""Model protocol and the :class:`Forecast` result type.

Every forecasting technique in the library — ARIMA/SARIMAX, the
exponential-smoothing family (HES), TBATS and the naive baselines — follows
the same two-step shape the paper's pipeline expects:

1. ``model.fit(train_series, ...)`` returns a *fitted* object holding the
   estimated parameters and in-sample residuals;
2. ``fitted.forecast(horizon)`` returns a :class:`Forecast`: predicted
   values plus the error bars the problem definition (Section 3) requires.

The fitted object also exposes ``label()`` — the human-readable model name
that appears in the paper's Table 2 rows (e.g. ``"SARIMAX (2,1,1)(1,1,1,24)"``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..core.timeseries import TimeSeries
from ..exceptions import DataError, ModelError

__all__ = ["Forecast", "FittedModel", "ForecastModel", "check_series"]


@dataclass(frozen=True)
class Forecast:
    """A point forecast with symmetric error bars.

    Attributes
    ----------
    mean:
        Predicted values as a :class:`TimeSeries` continuing the training
        series' clock.
    lower / upper:
        Prediction-interval bounds at confidence ``1 - alpha``.
    alpha:
        Significance level of the interval (default 0.05 ⇒ 95 %).
    model_label:
        Name of the generating model, for report tables.
    """

    mean: TimeSeries
    lower: TimeSeries
    upper: TimeSeries
    alpha: float
    model_label: str

    def __post_init__(self) -> None:
        if not (len(self.mean) == len(self.lower) == len(self.upper)):
            raise ModelError("forecast mean/lower/upper must be the same length")
        if not 0.0 < self.alpha < 1.0:
            raise ModelError(f"alpha must be in (0, 1), got {self.alpha}")

    @property
    def horizon(self) -> int:
        return len(self.mean)

    def clipped(self, minimum: float = 0.0) -> "Forecast":
        """Clip the forecast at a physical floor (resource usage can't go
        negative); applied by the service layer before reporting."""
        return Forecast(
            mean=self.mean.with_values(np.maximum(self.mean.values, minimum)),
            lower=self.lower.with_values(np.maximum(self.lower.values, minimum)),
            upper=self.upper.with_values(np.maximum(self.upper.values, minimum)),
            alpha=self.alpha,
            model_label=self.model_label,
        )


def check_series(series: TimeSeries, min_obs: int) -> np.ndarray:
    """Validate a training series and return its value array."""
    if not isinstance(series, TimeSeries):
        raise DataError(f"expected a TimeSeries, got {type(series).__name__}")
    if series.has_missing():
        raise DataError(
            "training series contains missing values; run interpolate_missing first"
        )
    if not series.is_finite():
        raise DataError("training series contains non-finite values")
    if len(series) < min_obs:
        raise DataError(
            f"model needs at least {min_obs} observations, series has {len(series)}"
        )
    return series.values


@dataclass
class FittedModel(abc.ABC):
    """Base class for fitted models.

    Subclasses store their estimated parameters and must implement
    :meth:`forecast` and :meth:`label`. The training series is retained so
    forecasts can continue its timestamps and so the staleness monitor can
    compare new observations against in-sample behaviour.
    """

    train: TimeSeries
    residuals: np.ndarray = field(repr=False)
    sigma2: float
    n_params: int

    @abc.abstractmethod
    def forecast(self, horizon: int, alpha: float = 0.05) -> Forecast:
        """Predict ``horizon`` future points with ``1 - alpha`` error bars."""

    @abc.abstractmethod
    def label(self) -> str:
        """Table 2-style model name."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _future_series(self, values: np.ndarray) -> TimeSeries:
        """Wrap forecast values as a series continuing the training clock."""
        return TimeSeries(
            values=values,
            frequency=self.train.frequency,
            start=self.train.end + self.train.frequency.seconds,
            name=self.train.name,
        )

    def _interval(
        self, mean: np.ndarray, std: np.ndarray, alpha: float
    ) -> tuple[np.ndarray, np.ndarray]:
        from scipy import stats

        if np.any(std < 0):
            raise ModelError("negative forecast standard deviation")
        z = float(stats.norm.ppf(1.0 - alpha / 2.0))
        return mean - z * std, mean + z * std

    def make_forecast(
        self, mean: np.ndarray, std: np.ndarray, alpha: float
    ) -> Forecast:
        """Assemble a :class:`Forecast` from mean and standard deviations."""
        lower, upper = self._interval(mean, std, alpha)
        return Forecast(
            mean=self._future_series(mean),
            lower=self._future_series(lower),
            upper=self._future_series(upper),
            alpha=alpha,
            model_label=self.label(),
        )

    @property
    def aic(self) -> float:
        """Gaussian AIC from the in-sample residuals."""
        from ..core.metrics import aic as _aic

        resid = self.residuals[np.isfinite(self.residuals)]
        return _aic(float(resid @ resid), resid.size, self.n_params)

    @property
    def bic(self) -> float:
        """Gaussian BIC from the in-sample residuals."""
        from ..core.metrics import bic as _bic

        resid = self.residuals[np.isfinite(self.residuals)]
        return _bic(float(resid @ resid), resid.size, self.n_params)

    def summary(self) -> str:
        """Human-readable fit report: identity, fit statistics, residual health.

        The text equivalent of a statsmodels summary, kept to what an
        operator reading a log actually uses.
        """
        from ..core.stats import ljung_box

        resid = self.residuals[np.isfinite(self.residuals)]
        lines = [
            f"Model:        {self.label()}",
            f"Observations: {len(self.train)}"
            + (f" ({self.train.name})" if self.train.name else ""),
            f"Parameters:   {self.n_params}",
            f"sigma^2:      {self.sigma2:.6g}",
            f"AIC:          {self.aic:.2f}",
            f"BIC:          {self.bic:.2f}",
        ]
        if resid.size >= 12:
            lb = ljung_box(resid, lags=min(10, resid.size - 2))
            verdict = "white noise" if lb.is_white_noise() else "autocorrelated"
            lines.append(
                f"Ljung-Box:    Q={lb.statistic:.2f} p={lb.p_value:.3f} ({verdict})"
            )
        lines.append(
            f"Residuals:    mean {resid.mean():+.4g}, std {resid.std():.4g}"
            if resid.size
            else "Residuals:    (none)"
        )
        return "\n".join(lines)


class ForecastModel(abc.ABC):
    """Base class for unfitted model specifications."""

    @abc.abstractmethod
    def fit(self, series: TimeSeries, **kwargs) -> FittedModel:
        """Estimate parameters on a training series."""

    @property
    def min_observations(self) -> int:
        """Fewest observations the model can be estimated from."""
        return 10
