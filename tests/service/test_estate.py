"""Tests for estate-wide planning."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError
from repro.selection import AutoConfig
from repro.service import (
    BreachSeverity,
    EstatePlanner,
    WorkloadKey,
    WorkloadStatus,
)


def seasonal_series(n=1100, seed=0, level=50.0, trend=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = level + trend * t + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, n)
    return TimeSeries(values, Frequency.HOURLY)


def in_fault_series(n=1100, seed=1):
    series = seasonal_series(n=n, seed=seed)
    values = series.values.copy()
    for s0 in (100, 260, 420, 600, 800):
        values[s0 : s0 + 2] = 2.0
    return series.with_values(values)


@pytest.fixture(scope="module")
def report():
    planner = EstatePlanner(config=AutoConfig(n_jobs=0, detect_shock_calendar=False))
    planner.register("acme", "db1", "cpu", seasonal_series(seed=2), threshold=1000.0)
    planner.register("acme", "db1", "memory", seasonal_series(seed=3, trend=0.06), threshold=90.0)
    planner.register("beta", "legacy", "cpu", in_fault_series(), threshold=80.0)
    planner.register("beta", "app", "tx", seasonal_series(seed=4))  # no threshold
    return planner.run()


class TestRegistration:
    def test_keys_sorted_and_unique(self):
        planner = EstatePlanner()
        k1 = planner.register("b", "w", "cpu", seasonal_series())
        k2 = planner.register("a", "w", "cpu", seasonal_series())
        assert planner.keys() == [k2, k1]
        planner.register("b", "w", "cpu", seasonal_series())  # replace
        assert planner.size == 2

    def test_register_cluster_run(self):
        from repro.workloads import OlapExperiment

        run = OlapExperiment(days=3.0).build().run(days=3.0, seed=1).hourly()
        planner = EstatePlanner()
        keys = planner.register_cluster_run("acme", "olap", run, thresholds={"cpu": 80.0})
        assert len(keys) == 6  # 2 instances x 3 metrics
        assert all(isinstance(k, WorkloadKey) for k in keys)

    def test_bad_series_rejected(self):
        with pytest.raises(DataError):
            EstatePlanner().register("a", "w", "m", np.arange(10.0))

    def test_empty_estate_rejected(self):
        with pytest.raises(DataError):
            EstatePlanner().run()


class TestReport:
    def test_statuses(self, report):
        assert len(report.modelled) == 3
        assert len(report.in_fault) == 1
        assert report.failed == []

    def test_in_fault_workload_identified(self, report):
        assert report.in_fault[0].key.workload == "legacy"
        assert report.in_fault[0].advisory is None

    def test_advisories_only_with_thresholds(self, report):
        advised = report.ranked_advisories()
        assert {str(e.key) for e in advised} == {"acme/db1/cpu", "acme/db1/memory"}

    def test_ranked_by_urgency(self, report):
        advised = report.ranked_advisories()
        # memory trends toward 90 (breach expected); cpu threshold 1000 is safe.
        assert advised[0].key.metric == "memory"
        assert advised[0].advisory.severity is not BreachSeverity.NONE
        assert advised[-1].advisory.severity is BreachSeverity.NONE

    def test_modelled_entries_have_models(self, report):
        for entry in report.modelled:
            assert entry.model_label
            assert np.isfinite(entry.test_rmse)

    def test_summary_lines(self, report):
        lines = report.summary_lines()
        assert "4 workload metrics" in lines[0]
        assert any("in fault" in line for line in lines)
