"""Forecasting models: ARIMA family, exponential smoothing, TBATS, baselines.

All models follow the two-step :class:`~repro.models.base.ForecastModel`
protocol (``fit`` → fitted object → ``forecast``) and return
:class:`~repro.models.base.Forecast` objects carrying predicted values and
error bars.
"""

from . import kernels
from .arima import Arima, ArimaOrder, FittedArima, SeasonalOrder
from .base import FittedModel, Forecast, ForecastModel
from .dayprofile import DayProfile, DayProfileSpec, FittedDayProfile
from .ets import FittedExpSmoothing, Holt, HoltWinters, SimpleExpSmoothing
from .naive import Drift, MovingAverage, Naive, SeasonalNaive
from .sarimax import FittedSarimax, Sarimax
from .tbats import FittedTbats, Tbats, TbatsConfig

__all__ = [
    "kernels",
    "Forecast",
    "ForecastModel",
    "FittedModel",
    "Arima",
    "ArimaOrder",
    "SeasonalOrder",
    "FittedArima",
    "Sarimax",
    "FittedSarimax",
    "SimpleExpSmoothing",
    "Holt",
    "HoltWinters",
    "FittedExpSmoothing",
    "DayProfile",
    "DayProfileSpec",
    "FittedDayProfile",
    "Tbats",
    "FittedTbats",
    "TbatsConfig",
    "Naive",
    "SeasonalNaive",
    "Drift",
    "MovingAverage",
]
