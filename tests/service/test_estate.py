"""Tests for estate-wide planning."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.engine import Executor, PoolExecutor, SerialExecutor, TaskReport
from repro.exceptions import DataError
from repro.selection import AutoConfig
from repro.service import (
    BreachSeverity,
    EstatePlanner,
    WorkloadKey,
    WorkloadStatus,
)


def seasonal_series(n=1100, seed=0, level=50.0, trend=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = level + trend * t + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, n)
    return TimeSeries(values, Frequency.HOURLY)


def in_fault_series(n=1100, seed=1):
    series = seasonal_series(n=n, seed=seed)
    values = series.values.copy()
    for s0 in (100, 260, 420, 600, 800):
        values[s0 : s0 + 2] = 2.0
    return series.with_values(values)


@pytest.fixture(scope="module")
def report():
    planner = EstatePlanner(config=AutoConfig(n_jobs=0, detect_shock_calendar=False))
    planner.register("acme", "db1", "cpu", seasonal_series(seed=2), threshold=1000.0)
    planner.register("acme", "db1", "memory", seasonal_series(seed=3, trend=0.06), threshold=90.0)
    planner.register("beta", "legacy", "cpu", in_fault_series(), threshold=80.0)
    planner.register("beta", "app", "tx", seasonal_series(seed=4))  # no threshold
    return planner.run()


class TestRegistration:
    def test_keys_sorted_and_unique(self):
        planner = EstatePlanner()
        k1 = planner.register("b", "w", "cpu", seasonal_series())
        k2 = planner.register("a", "w", "cpu", seasonal_series())
        assert planner.keys() == [k2, k1]
        planner.register("b", "w", "cpu", seasonal_series())  # replace
        assert planner.size == 2

    def test_register_cluster_run(self):
        from repro.workloads import OlapExperiment

        run = OlapExperiment(days=3.0).build().run(days=3.0, seed=1).hourly()
        planner = EstatePlanner()
        keys = planner.register_cluster_run("acme", "olap", run, thresholds={"cpu": 80.0})
        assert len(keys) == 6  # 2 instances x 3 metrics
        assert all(isinstance(k, WorkloadKey) for k in keys)

    def test_entry_lookup(self):
        planner = EstatePlanner()
        key = planner.register("a", "w", "cpu", seasonal_series())
        assert planner.entry(key).key == key
        with pytest.raises(DataError):
            planner.entry(WorkloadKey("a", "w", "memory"))

    def test_bad_series_rejected(self):
        with pytest.raises(DataError):
            EstatePlanner().register("a", "w", "m", np.arange(10.0))

    def test_empty_estate_rejected(self):
        with pytest.raises(DataError):
            EstatePlanner().run()


class TestReport:
    def test_statuses(self, report):
        assert len(report.modelled) == 3
        assert len(report.in_fault) == 1
        assert report.failed == []

    def test_in_fault_workload_identified(self, report):
        assert report.in_fault[0].key.workload == "legacy"
        assert report.in_fault[0].advisory is None

    def test_advisories_only_with_thresholds(self, report):
        advised = report.ranked_advisories()
        assert {str(e.key) for e in advised} == {"acme/db1/cpu", "acme/db1/memory"}

    def test_ranked_by_urgency(self, report):
        advised = report.ranked_advisories()
        # memory trends toward 90 (breach expected); cpu threshold 1000 is safe.
        assert advised[0].key.metric == "memory"
        assert advised[0].advisory.severity is not BreachSeverity.NONE
        assert advised[-1].advisory.severity is BreachSeverity.NONE

    def test_modelled_entries_have_models(self, report):
        for entry in report.modelled:
            assert entry.model_label
            assert np.isfinite(entry.test_rmse)

    def test_summary_lines(self, report):
        lines = report.summary_lines()
        assert "4 workload metrics" in lines[0]
        assert any("in fault" in line for line in lines)

    def test_estate_trace(self, report):
        trace = report.trace
        assert trace is not None
        assert [e.name for e in trace.events][:1] == ["fan-out"]
        # One per-workload timing event per processed entry.
        assert sum(1 for e in trace.events if e.name == "workload") == 4
        assert trace.counters["workloads_modelled"] == 3
        assert trace.counters["workloads_in_fault"] == 1
        # Candidate counters from per-series selections are folded in.
        assert trace.counters["candidates_fitted"] >= 3

    def test_modelled_entries_carry_telemetry(self, report):
        for entry in report.modelled:
            assert entry.trace is not None
            assert entry.seconds > 0.0
        for entry in report.in_fault:
            assert entry.trace is None


class _BrokenExecutor(Executor):
    """An executor whose workers all died without producing values."""

    def run(self, fn, tasks):
        return [
            TaskReport(index=i, value=None, error="worker lost", worker="w1")
            for i, __ in enumerate(tasks)
        ]


def _small_estate(**planner_kwargs):
    planner = EstatePlanner(
        config=AutoConfig(technique="hes", n_jobs=1, detect_shock_calendar=False),
        **planner_kwargs,
    )
    planner.register("acme", "db1", "cpu", seasonal_series(n=400, seed=2), threshold=1000.0)
    planner.register("acme", "db1", "mem", seasonal_series(n=400, seed=3, trend=0.06), threshold=90.0)
    planner.register("beta", "app", "tx", seasonal_series(n=400, seed=4))
    return planner


class TestFanOut:
    def test_serial_and_pool_reports_identical(self):
        serial = _small_estate().report(executor=SerialExecutor())
        with PoolExecutor(max_workers=2) as pool:
            pooled = _small_estate().report(executor=pool)
        assert [e.key for e in serial.entries] == [e.key for e in pooled.entries]
        for s, p in zip(serial.entries, pooled.entries):
            assert s.status is p.status
            assert s.model_label == p.model_label
            assert s.test_rmse == pytest.approx(p.test_rmse, rel=1e-12)
            if s.advisory is None:
                assert p.advisory is None
            else:
                assert s.advisory.severity is p.advisory.severity
                assert s.advisory.first_breach_step == p.advisory.first_breach_step

    def test_pool_workers_credited_in_trace(self):
        with PoolExecutor(max_workers=2) as pool:
            report = _small_estate().report(executor=pool)
        assert sum(report.trace.worker_tasks.values()) == 3
        assert "serial" not in report.trace.worker_tasks

    def test_constructor_executor_is_default(self):
        with PoolExecutor(max_workers=2) as pool:
            report = _small_estate(executor=pool).report()
        assert len(report.modelled) == 3
        assert pool.tasks_dispatched == 3

    def test_executor_failure_marks_workload_failed(self):
        report = _small_estate().report(executor=_BrokenExecutor())
        assert len(report.failed) == 3
        for entry in report.failed:
            assert entry.status is WorkloadStatus.FAILED
            assert entry.detail == "executor: worker lost"
        assert report.trace.counters["workloads_failed"] == 3

    def test_run_is_report_alias(self):
        report = _small_estate().run()
        assert len(report.modelled) == 3
