"""DuckDB storage backend — optional columnar engine for shard partitions.

DuckDB accepts the repository's ``?``-parameter SQL verbatim (including
``INSERT OR REPLACE`` against a ``PRIMARY KEY``), so only the engine
plumbing differs from sqlite:

* no ``executescript`` — the schema script is split on ``;`` and run
  statement by statement;
* ``with conn:`` is not a transaction bracket — transactions are
  explicit ``BEGIN``/``COMMIT``/``ROLLBACK`` statements;
* cursor ``rowcount`` is unreliable for DML — deletes that need a count
  append ``RETURNING 1`` and count the rows;
* contention surfaces as ``duckdb.IOException`` (file locks) or
  ``duckdb.TransactionException`` — both retryable.

The import is gated: the package works without duckdb installed (the
``backends`` extra provides it), and asking for this backend without it
raises :class:`~repro.exceptions.RepositoryError` naming the extra.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ...exceptions import RepositoryError
from .base import StorageBackend

try:  # pragma: no cover - exercised only where the extra is installed
    import duckdb
except ImportError:  # pragma: no cover
    duckdb = None


class DuckDBBackend(StorageBackend):
    kind = "duckdb"

    def __init__(self, path: str = ":memory:") -> None:
        if duckdb is None:
            raise RepositoryError(
                "duckdb backend requested but duckdb is not installed; "
                'install the "backends" extra (pip install "repro[backends]")'
            )
        self._conn = duckdb.connect(path)
        self._in_txn = False

    def execute(self, sql: str, params: Sequence = ()) -> list[tuple]:
        return self._conn.execute(sql, list(params)).fetchall()

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        rows = [list(row) for row in rows]
        if rows:
            self._conn.executemany(sql, rows)

    def executescript(self, script: str) -> None:
        for statement in script.split(";"):
            if statement.strip():
                self._conn.execute(statement)

    def delete_returning_count(self, sql: str, params: Sequence = ()) -> int:
        return len(self._conn.execute(sql + " RETURNING 1", list(params)).fetchall())

    def begin(self) -> None:
        self._conn.execute("BEGIN TRANSACTION")
        self._in_txn = True

    def commit(self) -> None:
        if self._in_txn:
            self._conn.execute("COMMIT")
            self._in_txn = False

    def rollback(self) -> None:
        if self._in_txn:
            self._conn.execute("ROLLBACK")
            self._in_txn = False

    @property
    def transient_errors(self) -> tuple[type[BaseException], ...]:
        return (duckdb.IOException, duckdb.TransactionException)

    def locked_error(self) -> BaseException:
        """DuckDB's file-lock contention error — what injection simulates."""
        return duckdb.IOException("database is locked")

    def close(self) -> None:
        self.commit()
        self._conn.close()
