"""Per-template query-arrival generators (the Sibyl axis)."""

import numpy as np
import pytest

from repro.core import Frequency
from repro.exceptions import DataError
from repro.workloads import (
    CalendarEffect,
    FlashCrowd,
    QueryTemplate,
    sibyl_template_mix,
    template_series,
    workload_series,
)

# born_day predates the window so the release ramp-in is already over.
FLAT = QueryTemplate(name="flat", base_rate=100.0, noise_cv=0.0, born_day=-1.0)


class TestTemplateSeries:
    def test_deterministic_and_name_seeded(self):
        t = QueryTemplate(name="q1", base_rate=50.0, daily_amplitude=10.0)
        a = template_series(t, days=7.0, seed=3)
        b = template_series(t, days=7.0, seed=3)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.name == "qps.q1"
        # The noise stream is private to the template name: a different
        # name under the same seed draws different noise.
        c = template_series(
            QueryTemplate(name="q2", base_rate=50.0, daily_amplitude=10.0),
            days=7.0,
            seed=3,
        )
        assert not np.array_equal(a.values, c.values)

    def test_noise_free_flat_template_is_constant(self):
        series = template_series(FLAT, days=3.0)
        np.testing.assert_allclose(series.values, 100.0)
        assert len(series) == 72
        assert series.frequency is Frequency.HOURLY

    def test_churn_envelope(self):
        t = QueryTemplate(
            name="churner",
            base_rate=100.0,
            noise_cv=0.0,
            born_day=2.0,
            retired_day=5.0,
            ramp_hours=6.0,
        )
        v = template_series(t, days=7.0).values
        assert (v[: 2 * 24] == 0.0).all()  # not yet born
        assert (v[2 * 24 + 6 : 5 * 24 - 6] == 100.0).all()  # fully live
        assert (v[5 * 24 :] == 0.0).all()  # retired
        # Ramps are strictly between 0 and full rate.
        assert 0.0 < v[2 * 24 + 3] < 100.0
        assert 0.0 < v[5 * 24 - 3] < 100.0

    def test_flash_crowd_trapezoid(self):
        crowd = FlashCrowd(at_day=1.0, magnitude=3.0, duration_hours=2.0, ramp_hours=1.0)
        v = template_series(FLAT, days=3.0, events=(crowd,)).values
        assert v[23] == 100.0  # before the surge
        assert v[25] == pytest.approx(300.0)  # plateau: 24h start + 1h ramp
        assert v[26] == pytest.approx(300.0)
        assert v[27] == pytest.approx(300.0)  # hold ends at start+ramp+duration+ramp
        assert (v[28:] == 100.0).all()  # fully decayed

    def test_calendar_effect_multiplies_whole_days(self):
        effect = CalendarEffect(days=(1,), multiplier=0.3)
        v = template_series(FLAT, days=3.0, calendar=(effect,)).values
        np.testing.assert_allclose(v[:24], 100.0)
        np.testing.assert_allclose(v[24:48], 30.0)
        np.testing.assert_allclose(v[48:], 100.0)

    def test_growth_and_weekly_dip(self):
        t = QueryTemplate(
            name="grow", base_rate=100.0, noise_cv=0.0,
            growth_per_day=10.0, weekly_depth=40.0,
        )
        v = template_series(t, days=14.0).values
        # Midweek levels drift up ~10/day; weekend days sag by the depth.
        assert v[3 * 24] == pytest.approx(130.0)
        assert v[5 * 24] == pytest.approx(150.0 - 40.0)
        assert v[10 * 24] == pytest.approx(200.0)

    def test_rates_never_negative(self):
        t = QueryTemplate(
            name="decline", base_rate=10.0, growth_per_day=-5.0, noise_cv=0.3
        )
        assert (template_series(t, days=14.0, seed=9).values >= 0.0).all()

    def test_validation(self):
        with pytest.raises(DataError):
            QueryTemplate(name="bad", base_rate=-1.0)
        with pytest.raises(DataError):
            QueryTemplate(name="bad", base_rate=1.0, born_day=5.0, retired_day=4.0)
        with pytest.raises(DataError):
            template_series(FLAT, days=0.0)


class TestWorkloadSeries:
    def test_aggregate_is_sum_of_templates(self):
        mix = sibyl_template_mix(n_templates=5, days=10.0, seed=2)
        total = workload_series(mix, days=10.0, seed=2)
        parts = np.sum(
            [template_series(t, days=10.0, seed=2).values for t in mix], axis=0
        )
        np.testing.assert_allclose(total.values, parts)
        assert total.name == "qps.total"

    def test_mix_growth_does_not_reshuffle_neighbours(self):
        """Adding a template never changes existing templates' bytes."""
        mix = sibyl_template_mix(n_templates=4, days=7.0, seed=0)
        small = workload_series(mix, days=7.0, seed=0)
        extra = QueryTemplate(name="newcomer", base_rate=25.0)
        grown = workload_series([*mix, extra], days=7.0, seed=0)
        addition = template_series(extra, days=7.0, seed=0)
        np.testing.assert_allclose(
            grown.values, small.values + addition.values, rtol=1e-12
        )

    def test_empty_mix_rejected(self):
        with pytest.raises(DataError):
            workload_series([], days=7.0)


class TestSibylMix:
    def test_deterministic_population(self):
        a = sibyl_template_mix(n_templates=8, days=35.0, seed=1)
        b = sibyl_template_mix(n_templates=8, days=35.0, seed=1)
        assert a == b

    def test_heavy_tailed_rates_and_churn_share(self):
        mix = sibyl_template_mix(n_templates=8, days=35.0, seed=0, churn_fraction=0.25)
        rates = [t.base_rate for t in mix]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] > 3 * rates[-1]  # Zipf-ish head
        assert sum(rates) == pytest.approx(1000.0)
        churners = [t for t in mix if t.born_day > 0 or t.retired_day is not None]
        assert len(churners) == 2  # round(0.25 * 8)
        for t in churners:
            if t.retired_day is not None:
                assert 0.3 * 35.0 <= t.retired_day <= 0.5 * 35.0
            else:
                assert 0.5 * 35.0 <= t.born_day <= 0.7 * 35.0

    def test_validation(self):
        with pytest.raises(DataError):
            sibyl_template_mix(n_templates=0)
        with pytest.raises(DataError):
            sibyl_template_mix(churn_fraction=1.5)
