"""Interned stream-key ids: ``(instance, metric)`` ↔ dense integer.

Every layer of the streaming plane — bus buffers, window finalisation
state, scheduler histories — is keyed by the same ``(instance, metric)``
pair. Hashing that tuple of strings on every sample is affordable once;
doing it per sample per layer at estate scale is the dispatch tax the
columnar ingest path exists to remove. :class:`KeyTable` interns each
pair once into a dense integer **key id** (``kid``): hot loops then index
lists and ndarrays instead of hashing strings, and a batch of samples
carries its keys as one ``int64`` column.

One table is shared per deployment (the bus owns it; the aggregator and
scheduler borrow it), so a kid means the same key everywhere. Ids are
stable for the table's lifetime: evicting a key from a layer clears that
layer's slot for the kid but never reassigns the id — a later re-adopt
or re-push of the same key lands on the same kid.
"""

from __future__ import annotations

__all__ = ["KeyTable"]

#: A monitored metric's identity: ``(instance, metric)``.
StreamKey = tuple[str, str]


class KeyTable:
    """Bidirectional ``StreamKey`` ↔ dense int id map, append-only.

    ``intern`` is the single write path: the first sighting of a key
    assigns the next id, every later sighting returns the same id.
    Lookup back out (:meth:`key_of`) is a list index — no hashing.
    """

    __slots__ = ("_ids", "_keys")

    def __init__(self) -> None:
        self._ids: dict[StreamKey, int] = {}
        self._keys: list[StreamKey] = []

    def intern(self, instance: str, metric: str) -> int:
        """The key's id, assigning the next dense id on first sighting."""
        key = (instance, metric)
        kid = self._ids.get(key)
        if kid is None:
            kid = len(self._keys)
            self._ids[key] = kid
            self._keys.append(key)
        return kid

    def intern_column(self, instances, metrics) -> list[int]:
        """Ids for a whole column of keys, one per row, interning misses.

        The columnar counterpart of :meth:`intern`: row ``i`` maps to the
        id of ``(instances[i], metrics[i])``, with unseen keys assigned
        ids in first-appearance (delivery) order — identical to calling
        ``intern`` per row. The all-hits case (a warm table, the steady
        state) runs entirely in C via ``map``; the first miss falls back
        to a per-row loop that interns as it goes.
        """
        ids = self._ids
        try:
            return list(map(ids.__getitem__, zip(instances, metrics)))
        except KeyError:
            pass
        keys = self._keys
        get = ids.get
        out: list[int] = []
        append = out.append
        for pair in zip(instances, metrics):
            kid = get(pair)
            if kid is None:
                kid = len(keys)
                ids[pair] = kid
                keys.append(pair)
            append(kid)
        return out

    def id_of(self, instance: str, metric: str) -> int | None:
        """The key's id if it was ever interned, else ``None``."""
        return self._ids.get((instance, metric))

    def key_of(self, kid: int) -> StreamKey:
        """The ``(instance, metric)`` pair behind an id."""
        return self._keys[kid]

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: StreamKey) -> bool:
        return key in self._ids
