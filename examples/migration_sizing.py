#!/usr/bin/env python
"""Cloud-migration sizing: what shape should the target environment be?

The paper's long-term use case: "If I need to migrate to a new platform,
such as a Cloud architecture, what resource capacity do I need?" — and the
introduction's warning about over-provisioning ("for every environment
provisioned, a proportion of that provisioned resource will probably never
be used").

This example sizes a cloud target for the growing OLTP cluster of
Experiment Two. It forecasts each metric a week ahead per instance,
converts the forecasts into procurement-unit recommendations, and compares
the forecast-driven sizing against the naive "current peak × 2" rule of
thumb, quantifying the over-provisioning saved.

Run:  python examples/migration_sizing.py
"""

from repro import AutoConfig
from repro.core import interpolate_missing
from repro.reporting import Table
from repro.selection import auto_select
from repro.service import recommend_capacity
from repro.workloads import generate_oltp_run

HORIZON_HOURS = 7 * 24  # size for the week after migration

# Procurement quanta per metric: whole OCPUs, 1 GB memory, 50k IOPS tiers.
UNITS = {"cpu": 1.0, "memory": 1024.0, "logical_iops": 50_000.0}

run = generate_oltp_run()
table = Table(
    ["Instance", "Metric", "Current peak", "Forecast p95", "Recommended", "Naive 2x peak", "Saved"],
    title="Migration sizing for Experiment Two (one week out)",
)

for instance, bundle in run.instances.items():
    for metric, series in bundle.as_dict().items():
        series = interpolate_missing(series)
        outcome = auto_select(series, config=AutoConfig(n_jobs=0))
        kwargs = {}
        if (
            outcome.best_spec is not None
            and outcome.best_spec.exog_columns
            and outcome.shock_calendar is not None
        ):
            kwargs["exog_future"] = outcome.shock_calendar.future_matrix(HORIZON_HOURS)[
                :, : outcome.best_spec.exog_columns
            ]
        forecast = outcome.model.forecast(HORIZON_HOURS, **kwargs).clipped(0.0)
        rec = recommend_capacity(forecast, unit=UNITS[metric], headroom=0.10)
        current_peak = float(series.values.max())
        naive = 2.0 * current_peak
        saved = max(0.0, naive - rec.recommended)
        table.add_row(
            [
                instance,
                metric,
                current_peak,
                rec.required,
                rec.recommended,
                naive,
                saved,
            ]
        )
    table.add_separator()

table.print()
print(
    "\n'Saved' is capacity the naive rule would have provisioned but the "
    "forecast shows will not be needed — the over-provisioning the paper's "
    "introduction warns about."
)
