"""Alert → plan escalation: the stream's exit into provisioning decisions.

The :class:`PlanEscalator` closes the loop the paper motivates: the
streaming scheduler already turns forecasts into debounced alerts; this
turns the alerts that *stay* bad into concrete provisioning proposals.
Each tick it feeds the advisory/alert/refit evidence into a
:class:`~repro.planner.triggers.TriggerTracker`; for every key whose
triggers fire it asks the scheduler for the exact forecast distribution
the alert path is grading (:meth:`ForecastScheduler.planning_view`),
enumerates and scores candidate blueprints against it, and emits the
best as a :class:`PlanProposal` through the existing alert-sink protocol
— a proposal is an operator event, it rides the same channel.

Proposals are deterministic: the evidence is per-key (so shards agree
with a single process), candidates rank with slug-stable tie-breaks, and
emission follows sorted advisory order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..engine.telemetry import RunTrace
from ..selection.staleness import StalenessReason
from ..service.estate import WorkloadKey
from ..stream.alerts import AlertKind
from .blueprint import (
    DEFAULT_CATALOG,
    Blueprint,
    BlueprintKind,
    CatalogTier,
    enumerate_blueprints,
)
from .scoring import (
    BlueprintScore,
    ForecastBand,
    InstanceDemand,
    ScoreWeights,
    rank_blueprints,
)
from .triggers import TriggerPolicy, TriggerTracker

__all__ = ["PlanProposal", "PlanEscalator", "RESOLVED_PROBABILITY"]

#: A blueprint "eliminates" the forecast breach when its residual breach
#: probability under the planner's own scoring drops below this.
RESOLVED_PROBABILITY = 0.05


@dataclass(frozen=True)
class PlanProposal:
    """One emitted provisioning proposal for a workload key.

    Duck-typed to the alert-sink protocol (it has a ``describe()`` and
    rides ``sink.emit``), so every existing sink — list, console, pager —
    carries plan proposals without modification.
    """

    key: WorkloadKey
    at: float
    reasons: tuple[str, ...]
    blueprint: Blueprint
    score: BlueprintScore
    baseline_probability: float
    current_capacity: float
    forecast_peak: float
    resolves_breach: bool

    @property
    def kind(self) -> str:
        return "plan-proposal"

    def describe(self) -> str:
        verdict = "resolves breach" if self.resolves_breach else "best available"
        return (
            f"[{self.at:.0f}s] PLAN {self.key} {self.blueprint.describe()} "
            f"— p(breach) {self.baseline_probability:.0%} → "
            f"{self.score.breach_probability:.0%} ({verdict}; "
            f"triggers: {', '.join(self.reasons)})"
        )


class PlanEscalator:
    """Per-tick trigger evaluation and proposal emission for one runtime.

    Parameters
    ----------
    sink:
        Where proposals are emitted (the runtime's alert sink).
    policy:
        Trigger thresholds and cooldown.
    catalog / current_tier / max_replicas / weights:
        The blueprint space each proposal is chosen from. The current
        tier is an estate-wide assumption (streams monitor utilisation,
        not procurement); override per deployment as needed.
    trace:
        Telemetry sink for the plan counters.
    """

    def __init__(
        self,
        sink=None,
        policy: TriggerPolicy | None = None,
        catalog: Sequence[CatalogTier] = DEFAULT_CATALOG,
        current_tier: CatalogTier | None = None,
        max_replicas: int = 3,
        weights: ScoreWeights | None = None,
        trace: RunTrace | None = None,
    ) -> None:
        self.sink = sink
        self.tracker = TriggerTracker(policy)
        self.catalog = tuple(catalog)
        self.current_tier = current_tier if current_tier is not None else self.catalog[0]
        self.max_replicas = int(max_replicas)
        self.weights = weights or ScoreWeights()
        self.trace = trace if trace is not None else RunTrace()
        self.proposals: list[PlanProposal] = []

    # ------------------------------------------------------------------
    def on_tick(self, scheduler, tick, events, windows, now: float) -> list[PlanProposal]:
        """Digest one tick's evidence; emit proposals for firing keys.

        ``tick`` is the :class:`~repro.stream.scheduler.SchedulerTick`,
        ``events`` the alert transitions the tick caused, ``windows``
        the closed windows it consumed (observed utilisation).
        """
        for wkey in sorted(tick.advisories):
            self.tracker.observe_advisory(wkey, tick.advisories[wkey])
        for event in events:
            if event.kind is AlertKind.ESCALATED:
                self.tracker.observe_escalation(event.key)
        for refit in tick.refits:
            if refit.reason == StalenessReason.DEGRADED.value:
                self.tracker.observe_drift(refit.key)
        for window in windows:
            self.tracker.observe_utilisation(
                scheduler.workload_key(window.instance, window.metric), window.value
            )

        emitted: list[PlanProposal] = []
        for wkey in sorted(tick.advisories):
            reasons = self.tracker.firing(wkey, now)
            if not reasons:
                continue
            self.trace.count("plan_triggers_fired")
            proposal = self.propose(scheduler, wkey, reasons, now)
            if proposal is None:
                continue
            emitted.append(proposal)
        self.proposals.extend(emitted)
        return emitted

    # ------------------------------------------------------------------
    def propose(self, scheduler, wkey: WorkloadKey, reasons, now: float) -> PlanProposal | None:
        """Score the key's blueprint space and emit the winner."""
        view = scheduler.planning_view(wkey.workload, wkey.metric)
        if view is None:
            return None
        forecast, threshold = view
        band = ForecastBand.from_forecast(forecast)
        demand = InstanceDemand(
            instance=wkey.workload,
            tier=self.current_tier,
            bands={wkey.metric: band},
            capacities={wkey.metric: float(threshold)},
        )
        candidates = enumerate_blueprints(
            wkey.workload,
            self.current_tier,
            self.catalog,
            max_replicas=self.max_replicas,
        )
        ranked = rank_blueprints(candidates, [demand], self.weights)
        self.trace.count("plan_blueprints_scored", len(ranked))
        best, best_score = ranked[0]
        baseline = next(
            score
            for bp, score in ranked
            if bp.kind is BlueprintKind.STAY and bp.replicas == demand.replicas
        )
        finite = band.mean[np.isfinite(band.mean)]
        peak = float(finite.max()) if finite.size else float(threshold)
        proposal = PlanProposal(
            key=wkey,
            at=float(now),
            reasons=tuple(r.value for r in reasons),
            blueprint=best,
            score=best_score,
            baseline_probability=float(baseline.breach_probability),
            current_capacity=float(threshold),
            forecast_peak=peak,
            resolves_breach=bool(best_score.breach_probability < RESOLVED_PROBABILITY),
        )
        self.tracker.note_planned(wkey, now, planned_peak=peak)
        self.trace.count("plan_proposals_emitted")
        if self.sink is not None:
            self.sink.emit(proposal)
        return proposal
