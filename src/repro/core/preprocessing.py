"""Gap repair and data conditioning for agent-collected series.

The first stage of the paper's pipeline (Figure 4) "gathers the data and
checks for any missing values … a linear interpolation exercise is carried
out to fill in the gaps based on known data points". Agents miss polls
during maintenance windows and faults, so every series entering a model
passes through :func:`interpolate_missing` first.

This module also provides gap inspection (for repository health reports),
winsorisation (for robust summaries) and z-score standardisation helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from .timeseries import TimeSeries

__all__ = [
    "interpolate_missing",
    "find_gaps",
    "Gap",
    "winsorize",
    "standardize",
]


@dataclass(frozen=True)
class Gap:
    """A maximal run of consecutive missing samples."""

    start_index: int
    length: int

    @property
    def end_index(self) -> int:
        """Index one past the last missing sample."""
        return self.start_index + self.length


def find_gaps(series: TimeSeries) -> list[Gap]:
    """Locate maximal runs of missing (NaN) samples.

    One vector pass: padding the missing-mask with False on both sides
    makes every run (including one touching either end of the series)
    produce exactly one rising and one falling edge in the difference of
    the mask, so run starts and ends fall out of two ``flatnonzero`` calls.
    """
    missing = np.isnan(series.values)
    edges = np.diff(missing.astype(np.int8), prepend=0, append=0)
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    return [
        Gap(start_index=int(start), length=int(end - start))
        for start, end in zip(starts, ends)
    ]


def interpolate_missing(series: TimeSeries, max_gap: int | None = None) -> TimeSeries:
    """Fill missing samples by linear interpolation between known points.

    Leading/trailing gaps (which have only one known neighbour) are filled
    by extending the nearest known value, since extrapolating a slope from
    a single boundary point would invent a trend the agent never observed.

    Parameters
    ----------
    max_gap:
        When given, raise :class:`DataError` if any single gap exceeds this
        many samples — a guard for repository windows so a dead agent does
        not silently become a long straight line that models would happily
        fit.
    """
    values = series.values
    missing = np.isnan(values)
    if not missing.any():
        return series
    if missing.all():
        raise DataError("every sample is missing; nothing to interpolate from")
    if max_gap is not None:
        worst = max(g.length for g in find_gaps(series))
        if worst > max_gap:
            raise DataError(
                f"longest gap is {worst} samples, exceeding the max_gap of {max_gap}"
            )
    idx = np.arange(values.size, dtype=float)
    known = ~missing
    filled = values.copy()
    filled[missing] = np.interp(idx[missing], idx[known], values[known])
    return series.with_values(filled)


def winsorize(series: TimeSeries, lower: float = 0.01, upper: float = 0.99) -> TimeSeries:
    """Clip values to the given empirical quantiles.

    Used for robust reporting summaries; the modelling path never winsorises
    because shocks (backups) are signal, not noise, in this domain.
    """
    if not 0.0 <= lower < upper <= 1.0:
        raise DataError(f"need 0 <= lower < upper <= 1, got ({lower}, {upper})")
    finite = series.values[np.isfinite(series.values)]
    if finite.size == 0:
        raise DataError("series has no finite values")
    lo, hi = np.quantile(finite, [lower, upper])
    return series.with_values(np.clip(series.values, lo, hi))


def standardize(series: TimeSeries) -> tuple[TimeSeries, float, float]:
    """Z-score standardise a series, returning ``(scaled, mean, std)``.

    A zero-variance series is returned centred with ``std = 1`` so callers
    can always invert with ``scaled * std + mean``.
    """
    finite = series.values[np.isfinite(series.values)]
    if finite.size == 0:
        raise DataError("series has no finite values")
    mean = float(finite.mean())
    std = float(finite.std())
    if std <= 1e-300:
        std = 1.0
    return series.with_values((series.values - mean) / std), mean, std
