"""Engine scaling: grid evaluation wall time, task bytes, candidate racing.

Section 6.3's scaling worry is concrete — four nodes would mean "nearly
24000" models — and the engine's answer is threefold: a reusable worker
pool shared across selections, a broadcast data plane that ships the
train/test bundle once instead of once per task, and successive-halving
candidate racing that spends the full optimiser budget only on the
survivors. This bench measures all three:

* wall time of the same SARIMAX sweep on the serial executor and on
  process pools of 2 and 4 workers (pool spawn excluded via warm-up);
* serialized bytes per task, broadcast plane vs. the old ship-the-series
  tuples;
* racing vs. exhaustive wall-clock and full-budget fit counts, asserting
  the racing winner stays within 1 % of the exhaustive winner's RMSE.

On a single-CPU host pools cannot win — the pool assertion is therefore
*correctness*, not speed: every executor must produce the identical
leaderboard. Results are also written machine-readable to
``benchmarks/output/BENCH_engine.json`` for CI trend tracking.

Set ``REPRO_REDUCED_GRID=1`` (the CI smoke mode) to shrink the series and
candidate sample so the whole bench finishes in well under a minute.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.engine import PoolExecutor, SerialExecutor, serialized_size
from repro.engine.telemetry import RunTrace
from repro.reporting import Table
from repro.selection import evaluate_grid, sarimax_grid
from repro.selection.grid import GRID_MAXITER, RacingPlan

from .conftest import output_path

REDUCED = os.environ.get("REPRO_REDUCED_GRID", "") not in ("", "0")

N_WORKERS = (1, 2) if REDUCED else (1, 2, 4)

BENCH_JSON = "BENCH_engine.json"


def _write_bench_json(section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench output."""
    path = output_path(BENCH_JSON)
    data = {}
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="module")
def workload():
    n = 500 if REDUCED else 1100
    rng = np.random.default_rng(7)
    t = np.arange(n)
    values = 50 + 0.02 * t + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1, n)
    series = TimeSeries(values, Frequency.HOURLY, name="cpu")
    if REDUCED:
        train, test = series.split(n - 24)
        specs = sarimax_grid(24, max_lag=8)[::4]  # 44 specs
    else:
        train, test = series.train_test_split()
        # A 1-in-12 stratified sample of the 660 grid keeps every (d, D)
        # shape while the bench stays minutes-scale even at one worker.
        specs = sarimax_grid(24)[::12]
    return train, test, specs


def _timed_run(executor, train, test, specs, **kwargs):
    t0 = time.perf_counter()
    results = evaluate_grid(specs, train, test, executor=executor, **kwargs)
    return results, time.perf_counter() - t0


def test_engine_scaling(benchmark, workload):
    train, test, specs = workload
    benchmark(lambda: evaluate_grid(specs[:4], train, test))

    runs = {}
    for n in N_WORKERS:
        if n == 1:
            executor = SerialExecutor()
            runs[n] = _timed_run(executor, train, test, specs)
        else:
            with PoolExecutor(max_workers=n) as pool:
                evaluate_grid(specs[:2], train, test, executor=pool)  # warm the pool
                runs[n] = _timed_run(pool, train, test, specs)
                assert pool.pools_created == 1  # warm-up and run shared one pool

    serial_time = runs[1][1]
    table = Table(
        ["Workers", "Candidates", "Wall time (s)", "Speedup"],
        title="Engine scaling: SARIMAX grid evaluation",
    )
    for n in N_WORKERS:
        __, seconds = runs[n]
        table.add_row([str(n), str(len(specs)), seconds, f"{serial_time / seconds:.2f}x"])
    print()
    table.print()

    baseline = runs[1][0]
    for n in N_WORKERS[1:]:
        results, __ = runs[n]
        assert [r.spec for r in results] == [r.spec for r in baseline]
        assert np.allclose(
            [r.rmse for r in results if np.isfinite(r.rmse)],
            [r.rmse for r in baseline if np.isfinite(r.rmse)],
            rtol=1e-10,
        )

    _write_bench_json(
        "scaling",
        {
            "candidates": len(specs),
            "reduced_grid": REDUCED,
            "wall_seconds": {str(n): runs[n][1] for n in N_WORKERS},
            "speedup": {str(n): serial_time / runs[n][1] for n in N_WORKERS},
        },
    )


def test_task_bytes_broadcast_vs_inline(workload):
    """Per-task serialized bytes: broadcast refs vs. ship-the-series tuples."""
    train, test, specs = workload
    executor = SerialExecutor()
    ref = executor.broadcast((train, test, None, None))

    old_style = serialized_size((specs[0], train, test, None, None, GRID_MAXITER))
    new_style = serialized_size((specs[0], GRID_MAXITER, None, ref))
    sweep_old = old_style * len(specs)
    sweep_new = ref.nbytes + new_style * len(specs)

    table = Table(
        ["Plane", "Bytes/task", "Sweep total (KiB)"],
        title=f"Task serialization, {len(specs)}-candidate sweep",
    )
    table.add_row(["inline series (old)", str(old_style), f"{sweep_old / 1024:.1f}"])
    table.add_row(["broadcast ref (new)", str(new_style), f"{sweep_new / 1024:.1f}"])
    print()
    table.print()

    assert new_style < 1024  # O(spec), not O(series length)
    assert new_style * 10 < old_style

    _write_bench_json(
        "task_bytes",
        {
            "bytes_per_task_inline": old_style,
            "bytes_per_task_broadcast": new_style,
            "broadcast_payload_bytes": ref.nbytes,
            "sweep_bytes_inline": sweep_old,
            "sweep_bytes_broadcast": sweep_new,
        },
    )


def test_racing_vs_exhaustive(workload):
    """Racing must match the exhaustive winner within 1 % at >= 2x fewer
    full-budget fits — the Section 6.3 sweep without the Section 6.3 bill."""
    train, test, specs = workload
    executor = SerialExecutor()

    exhaustive, exhaustive_seconds = _timed_run(executor, train, test, specs)

    # Promote the top 40 % at a rung budget of 8: comfortably under the 2x
    # bound on full-budget fits even when the promotion count rounds up,
    # with ranking fidelity to spare on noisy series.
    plan = RacingPlan(eta=2.5, rung_maxiter=8)
    trace = RunTrace()
    raced, raced_seconds = _timed_run(
        executor, train, test, specs, trace=trace, racing=plan
    )

    full_fits = trace.counters["racing_full_fits"]
    pruned = trace.counters["candidates_pruned_by_racing"]
    table = Table(
        ["Protocol", "Full-budget fits", "Wall time (s)", "Winner RMSE"],
        title="Candidate racing vs exhaustive scoring",
    )
    table.add_row(
        ["exhaustive", str(len(specs)), exhaustive_seconds, f"{exhaustive[0].rmse:.4f}"]
    )
    table.add_row(["racing", str(full_fits), raced_seconds, f"{raced[0].rmse:.4f}"])
    print()
    table.print()

    assert raced[0].rmse <= exhaustive[0].rmse * 1.01
    assert full_fits * 2 <= len(specs)
    assert pruned > 0

    _write_bench_json(
        "racing",
        {
            "candidates": len(specs),
            "full_budget_fits": full_fits,
            "pruned_by_racing": pruned,
            "warm_start_hits": trace.counters.get("warm_start_hits", 0),
            "wall_seconds_exhaustive": exhaustive_seconds,
            "wall_seconds_racing": raced_seconds,
            "winner_rmse_exhaustive": exhaustive[0].rmse,
            "winner_rmse_racing": raced[0].rmse,
        },
    )
