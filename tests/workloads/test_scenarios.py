"""Tests for the extra scenario library."""

import numpy as np
import pytest

from repro.core import Frequency, detect_seasonalities, seasonal_strength
from repro.exceptions import DataError
from repro.workloads import (
    Composite,
    Constant,
    GaussianNoise,
    batch_etl,
    make_series,
    unstable_system,
    web_transactions,
    weekly_business_app,
)


class TestMakeSeries:
    def test_length_and_frequency(self):
        stack = Composite([Constant(5.0)])
        ts = make_series(stack, days=3.0, frequency=Frequency.HOURLY, name="x")
        assert len(ts) == 72
        assert ts.frequency is Frequency.HOURLY
        assert ts.name == "x"

    def test_floor_applied(self):
        stack = Composite([Constant(-10.0)])
        ts = make_series(stack, days=1.0)
        assert np.all(ts.values >= 0.0)

    def test_deterministic(self):
        stack = Composite([Constant(1.0), GaussianNoise(sigma=1.0)])
        a = make_series(stack, days=2.0, seed=3)
        b = make_series(stack, days=2.0, seed=3)
        assert np.array_equal(a.values, b.values)

    def test_validation(self):
        with pytest.raises(DataError):
            make_series(Composite([Constant(1.0)]), days=0.0)


class TestScenarios:
    def test_web_transactions_structure(self):
        ts = web_transactions()
        report = detect_seasonalities(ts, candidates=[24, 168])
        assert 24 in report.periods
        assert 168 in report.periods  # weekend dip = weekly season

    def test_batch_etl_dominated_by_shocks(self):
        ts = batch_etl()
        values = ts.values
        # The nightly ETL spike towers over the median load.
        assert values.max() > 2.0 * np.median(values)

    def test_weekly_business_app_office_hours(self):
        ts = weekly_business_app()
        hours = np.arange(len(ts)) % 24
        office = ts.values[(hours >= 10) & (hours < 16)].mean()
        night = ts.values[(hours >= 0) & (hours < 5)].mean()
        assert office > night * 1.5

    def test_unstable_system_has_three_crashes(self):
        ts = unstable_system()
        # Crashes drop load by ~55 from a 60-ish base: near-zero samples.
        dips = np.flatnonzero(ts.values < 20.0)
        assert dips.size >= 3
        # But they are one-off faults: no recurring shock should be learned.
        from repro.shocks import build_shock_calendar

        calendar = build_shock_calendar(ts, period=24)
        recurring_dips = [s for s in calendar.shocks if s.mean_magnitude < -20]
        assert recurring_dips == []

    def test_all_scenarios_nonnegative_and_finite(self):
        for ts in (web_transactions(), batch_etl(), weekly_business_app(), unstable_system()):
            assert ts.is_finite()
            assert np.all(ts.values >= 0.0)


class TestSanStorage:
    def test_structure(self):
        from repro.workloads import san_storage

        ts = san_storage()
        assert ts.name == "san_throughput_mbps"
        assert seasonal_strength(ts, 24) > 0.3
        # The nightly backup window dominates throughput.
        assert ts.values.max() > 1.5 * np.median(ts.values)

    def test_shock_calendar_finds_backup_window(self):
        from repro.shocks import build_shock_calendar
        from repro.workloads import san_storage

        calendar = build_shock_calendar(san_storage(), period=24)
        assert calendar.n_columns >= 1


class TestWeblogicHeap:
    def test_sawtooth_shape(self):
        from repro.workloads import weblogic_heap

        ts = weblogic_heap()
        values = ts.values
        diffs = np.diff(values)
        # Many small climbs, few large drops — the GC sawtooth.
        assert (diffs > 0).mean() > 0.6
        assert diffs.min() < -1500.0
        assert values.min() >= 0.0

    def test_bounded_by_heap_limits(self):
        from repro.workloads import weblogic_heap

        ts = weblogic_heap(days=60)
        assert ts.values.max() < 6500.0
        assert ts.values.min() > 1000.0

    def test_deterministic(self):
        from repro.workloads import weblogic_heap

        assert np.array_equal(weblogic_heap(seed=3).values, weblogic_heap(seed=3).values)
