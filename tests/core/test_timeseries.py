"""Tests for the TimeSeries value type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Frequency, TimeSeries
from repro.exceptions import DataError, FrequencyError


class TestConstruction:
    def test_basic(self):
        ts = TimeSeries([1.0, 2.0, 3.0], Frequency.HOURLY, start=100.0, name="cpu")
        assert len(ts) == 3
        assert ts.name == "cpu"
        assert ts.start == 100.0
        assert list(ts) == [1.0, 2.0, 3.0]

    def test_values_are_immutable(self):
        ts = TimeSeries([1.0, 2.0])
        with pytest.raises(ValueError):
            ts.values[0] = 99.0

    def test_input_array_copied(self):
        src = np.array([1.0, 2.0])
        ts = TimeSeries(src)
        src[0] = 99.0
        assert ts.values[0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            TimeSeries([])

    def test_rejects_2d(self):
        with pytest.raises(DataError):
            TimeSeries(np.zeros((3, 2)))

    def test_coerces_ints(self):
        ts = TimeSeries([1, 2, 3])
        assert ts.values.dtype == np.float64


class TestTimestamps:
    def test_timestamps_spacing(self):
        ts = TimeSeries(np.zeros(5), Frequency.HOURLY, start=10.0)
        assert np.array_equal(ts.timestamps, 10.0 + 3600.0 * np.arange(5))

    def test_end(self):
        ts = TimeSeries(np.zeros(4), Frequency.DAILY, start=0.0)
        assert ts.end == 3 * 86400

    def test_timestamps_cached_and_readonly(self):
        ts = TimeSeries(np.zeros(3))
        first = ts.timestamps
        assert ts.timestamps is first
        with pytest.raises(ValueError):
            first[0] = 1.0


class TestMissing:
    def test_has_missing(self):
        assert TimeSeries([1.0, np.nan]).has_missing()
        assert not TimeSeries([1.0, 2.0]).has_missing()

    def test_missing_indices(self):
        ts = TimeSeries([np.nan, 1.0, np.nan])
        assert list(ts.missing_indices()) == [0, 2]

    def test_is_finite_rejects_inf(self):
        assert not TimeSeries([1.0, np.inf]).is_finite()


class TestSlicing:
    def test_slice_adjusts_start(self):
        ts = TimeSeries(np.arange(10.0), Frequency.HOURLY, start=0.0)
        part = ts[3:7]
        assert part.start == 3 * 3600
        assert list(part.values) == [3.0, 4.0, 5.0, 6.0]

    def test_slice_step_rejected(self):
        ts = TimeSeries(np.arange(10.0))
        with pytest.raises(DataError):
            ts[::2]

    def test_empty_slice_rejected(self):
        ts = TimeSeries(np.arange(10.0))
        with pytest.raises(DataError):
            ts[5:5]

    def test_scalar_access(self):
        ts = TimeSeries([1.5, 2.5])
        assert ts[1] == 2.5

    def test_tail(self):
        ts = TimeSeries(np.arange(10.0))
        assert list(ts.tail(3).values) == [7.0, 8.0, 9.0]
        with pytest.raises(DataError):
            ts.tail(0)
        with pytest.raises(DataError):
            ts.tail(11)


class TestSplit:
    def test_split(self):
        ts = TimeSeries(np.arange(10.0))
        a, b = ts.split(7)
        assert len(a) == 7 and len(b) == 3
        assert b.start == 7 * 3600

    def test_split_bounds(self):
        ts = TimeSeries(np.arange(5.0))
        with pytest.raises(DataError):
            ts.split(0)
        with pytest.raises(DataError):
            ts.split(5)

    def test_table1_split_hourly(self):
        ts = TimeSeries(np.arange(1008.0), Frequency.HOURLY)
        train, test = ts.train_test_split()
        assert len(train) == 984 and len(test) == 24

    def test_table1_uses_most_recent_window(self):
        ts = TimeSeries(np.arange(1200.0), Frequency.HOURLY)
        train, test = ts.train_test_split()
        assert test.values[-1] == 1199.0
        assert len(train) + len(test) == 1008

    def test_table1_split_daily(self):
        ts = TimeSeries(np.arange(90.0), Frequency.DAILY)
        train, test = ts.train_test_split()
        assert len(train) == 83 and len(test) == 7

    def test_table1_too_short(self):
        ts = TimeSeries(np.arange(100.0), Frequency.HOURLY)
        with pytest.raises(DataError):
            ts.train_test_split()


class TestAppend:
    def test_append_contiguous(self):
        a = TimeSeries(np.arange(5.0), Frequency.HOURLY, start=0.0)
        b = TimeSeries(np.arange(3.0), Frequency.HOURLY, start=5 * 3600.0)
        joined = a.append(b)
        assert len(joined) == 8

    def test_append_gap_rejected(self):
        a = TimeSeries(np.arange(5.0), Frequency.HOURLY, start=0.0)
        b = TimeSeries(np.arange(3.0), Frequency.HOURLY, start=9 * 3600.0)
        with pytest.raises(DataError):
            a.append(b)

    def test_append_frequency_mismatch(self):
        a = TimeSeries(np.arange(5.0), Frequency.HOURLY)
        b = TimeSeries(np.arange(3.0), Frequency.DAILY, start=5 * 3600.0)
        with pytest.raises(FrequencyError):
            a.append(b)


class TestAggregate:
    def test_15min_to_hourly_mean(self):
        values = np.tile([1.0, 2.0, 3.0, 4.0], 5)
        ts = TimeSeries(values, Frequency.MINUTE_15)
        hourly = ts.aggregate(Frequency.HOURLY)
        assert len(hourly) == 5
        assert np.allclose(hourly.values, 2.5)
        assert hourly.frequency is Frequency.HOURLY

    def test_sum_aggregation(self):
        ts = TimeSeries(np.ones(8), Frequency.MINUTE_15)
        assert np.allclose(ts.aggregate(Frequency.HOURLY, how="sum").values, 4.0)

    def test_max_aggregation(self):
        ts = TimeSeries(np.arange(8.0), Frequency.MINUTE_15)
        assert list(ts.aggregate(Frequency.HOURLY, how="max").values) == [3.0, 7.0]

    def test_partial_trailing_bucket_dropped(self):
        ts = TimeSeries(np.arange(10.0), Frequency.MINUTE_15)
        assert len(ts.aggregate(Frequency.HOURLY)) == 2

    def test_nan_bucket_stays_nan(self):
        values = np.ones(8)
        values[4:8] = np.nan
        hourly = TimeSeries(values, Frequency.MINUTE_15).aggregate(Frequency.HOURLY)
        assert hourly.values[0] == 1.0
        assert np.isnan(hourly.values[1])

    def test_partial_nan_bucket_uses_available(self):
        values = np.array([1.0, np.nan, 3.0, np.nan])
        hourly = TimeSeries(values, Frequency.MINUTE_15).aggregate(Frequency.HOURLY)
        assert hourly.values[0] == 2.0

    def test_upsample_rejected(self):
        ts = TimeSeries(np.arange(5.0), Frequency.HOURLY)
        with pytest.raises(FrequencyError):
            ts.aggregate(Frequency.MINUTE_15)

    def test_unknown_how_rejected(self):
        ts = TimeSeries(np.arange(8.0), Frequency.MINUTE_15)
        with pytest.raises(DataError):
            ts.aggregate(Frequency.HOURLY, how="median")


class TestFromSamples:
    def test_regular_samples(self):
        samples = [(0.0, 1.0), (3600.0, 2.0), (7200.0, 3.0)]
        ts = TimeSeries.from_samples(samples, Frequency.HOURLY)
        assert list(ts.values) == [1.0, 2.0, 3.0]

    def test_gap_becomes_nan(self):
        samples = [(0.0, 1.0), (2 * 3600.0, 3.0)]
        ts = TimeSeries.from_samples(samples, Frequency.HOURLY)
        assert np.isnan(ts.values[1])

    def test_duplicates_averaged(self):
        samples = [(0.0, 1.0), (0.0, 3.0), (3600.0, 5.0)]
        ts = TimeSeries.from_samples(samples, Frequency.HOURLY)
        assert ts.values[0] == 2.0

    def test_unsorted_input(self):
        samples = [(3600.0, 2.0), (0.0, 1.0)]
        ts = TimeSeries.from_samples(samples, Frequency.HOURLY)
        assert list(ts.values) == [1.0, 2.0]

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            TimeSeries.from_samples([], Frequency.HOURLY)


class TestArithmetic:
    def test_add_scalar(self):
        ts = TimeSeries([1.0, 2.0]) + 1.0
        assert list(ts.values) == [2.0, 3.0]

    def test_add_series(self):
        a = TimeSeries([1.0, 2.0])
        b = TimeSeries([10.0, 20.0])
        assert list((a + b).values) == [11.0, 22.0]

    def test_mul_and_sub(self):
        a = TimeSeries([2.0, 4.0])
        assert list((a * 2.0).values) == [4.0, 8.0]
        assert list((a - 1.0).values) == [1.0, 3.0]

    def test_misaligned_rejected(self):
        a = TimeSeries([1.0, 2.0])
        b = TimeSeries([1.0, 2.0, 3.0])
        with pytest.raises(FrequencyError):
            a + b


class TestSummary:
    def test_summary_ignores_nan(self):
        ts = TimeSeries([1.0, np.nan, 3.0])
        s = ts.summary()
        assert s["mean"] == 2.0
        assert s["missing"] == 1.0

    def test_summary_all_nan_rejected(self):
        with pytest.raises(DataError):
            TimeSeries([np.nan, np.nan]).summary()


class TestProperties:
    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=1, max_value=199))
    @settings(max_examples=30, deadline=None)
    def test_split_roundtrip(self, n, k):
        k = min(k, n - 1)
        ts = TimeSeries(np.arange(float(n)), Frequency.HOURLY)
        a, b = ts.split(k)
        rejoined = a.append(b)
        assert np.array_equal(rejoined.values, ts.values)
        assert rejoined.start == ts.start

    @given(st.integers(min_value=4, max_value=120))
    @settings(max_examples=30, deadline=None)
    def test_aggregate_mean_preserves_total_mean(self, n_hours):
        values = np.arange(float(n_hours * 4))
        ts = TimeSeries(values, Frequency.MINUTE_15)
        hourly = ts.aggregate(Frequency.HOURLY)
        assert np.isclose(hourly.values.mean(), values.mean())
