"""Consistent-hash ring: stability, balance and rebalance economy."""

import math
import subprocess
import sys

import pytest

from repro.exceptions import DataError
from repro.shard import HashRing, ShardRouter


def keys(n):
    return [(f"db{i:05d}", metric) for i in range(n // 2) for metric in ("cpu", "iops")]


class TestPlacement:
    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(i, m) for i, m in keys(200)} == {0}

    def test_placement_is_deterministic(self):
        a, b = HashRing(5), HashRing(5)
        for i, m in keys(500):
            assert a.shard_for(i, m) == b.shard_for(i, m)

    def test_placement_is_stable_across_processes(self):
        """blake2b placement must not depend on PYTHONHASHSEED — the
        control plane and its workers compute placements independently."""
        sample = keys(40)
        script = (
            "from repro.shard import HashRing\n"
            "ring = HashRing(4)\n"
            f"print([ring.shard_for(i, m) for i, m in {sample!r}])\n"
        )
        outs = set()
        for hashseed in ("1", "2"):
            import os

            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONPATH": os.pathsep.join(sys.path),
                    "PYTHONHASHSEED": hashseed,
                },
                check=True,
            )
            outs.add(proc.stdout.strip())
        local = HashRing(4)
        assert outs == {str([local.shard_for(i, m) for i, m in sample])}

    def test_all_shards_receive_load(self):
        ring = HashRing(8)
        owners = {ring.shard_for(i, m) for i, m in keys(2000)}
        assert owners == set(range(8))

    def test_load_split_is_roughly_balanced(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i, m in keys(4000):
            counts[ring.shard_for(i, m)] += 1
        assert max(counts) / min(counts) < 2.0

    def test_validation(self):
        with pytest.raises(DataError):
            HashRing(0)
        with pytest.raises(DataError):
            HashRing(2, vnodes=0)


class TestRebalanceStability:
    @pytest.mark.parametrize("n_from,n_to", [(1, 2), (2, 3), (3, 4), (4, 5)])
    def test_grow_moves_about_one_nth(self, n_from, n_to):
        """Adding the (N+1)-th shard moves ~K/(N+1) keys, never a reshuffle."""
        sample = keys(3000)
        old, new = HashRing(n_from), HashRing(n_to)
        moved = sum(1 for i, m in sample if old.shard_for(i, m) != new.shard_for(i, m))
        expected = len(sample) / n_to
        # generous slack for vnode variance; a mod-N remap would move
        # (N-1)/N of all keys and blow straight through this bound
        assert moved <= math.ceil(expected * 1.5)
        assert moved > 0

    def test_survivor_placements_never_change_on_grow(self):
        """A key that stays put keeps its exact shard — grow only steals."""
        sample = keys(2000)
        old, new = HashRing(3), HashRing(4)
        for i, m in sample:
            if new.shard_for(i, m) != 3:
                assert new.shard_for(i, m) == old.shard_for(i, m)


class TestRouter:
    def test_partition_preserves_per_shard_order(self):
        from repro.agent.agent import AgentSample

        router = ShardRouter(3)
        samples = [
            AgentSample(instance=f"db{i % 7}", metric="cpu", timestamp=float(i), value=1.0)
            for i in range(100)
        ]
        parts = router.partition(samples)
        assert sum(len(p) for p in parts) == len(samples)
        for shard, part in enumerate(parts):
            assert [s.timestamp for s in part] == sorted(s.timestamp for s in part)
            for s in part:
                assert router.shard_for(s.instance, s.metric) == shard

    def test_rebuild_returns_only_moved_keys(self):
        router = ShardRouter(2)
        for i, m in keys(400):
            router.shard_for(i, m)
        before = {k: router.shard_for(*k) for k in router.known_keys()}
        moved = router.rebuild(3)
        for key, (old, new) in moved.items():
            assert before[key] == old
            assert router.shard_for(*key) == new
            assert old != new
        for key in router.known_keys():
            if key not in moved:
                assert router.shard_for(*key) == before[key]
        assert 0 < len(moved) <= math.ceil(len(before) / 3 * 1.5)
