"""Worker warm-compile coverage: JIT cost is paid at init, never in a task.

The contract under test (see ``repro.engine.kernels``): pool workers run
:func:`repro.models.kernels.warm_compile` in their initializer, so the
first scored candidate never pays compilation; the serial executor warms
in-process before its first task; and the warm-up itself is visible in
``RunTrace`` counters as ``kernel_warm_runs`` with
``kernel_calls_before_warm`` staying at zero.
"""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries
from repro.engine import PoolExecutor, RunTrace, SerialExecutor
from repro.engine import kernels as engine_kernels
from repro.models import kernels
from repro.selection import CandidateSpec, evaluate_grid


@pytest.fixture
def fresh_kernel_counters():
    """Zero the process-wide kernel counters; leave the module warm after."""
    kernels._reset_for_tests()
    yield
    kernels.ensure_warm()


def _workload() -> tuple[TimeSeries, TimeSeries]:
    rng = np.random.default_rng(99)
    t = np.arange(180)
    values = 40.0 + 0.05 * t + 6.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.0, t.size)
    series = TimeSeries(values, Frequency.HOURLY, name="warmup")
    return series.split(150)


SPECS = [
    CandidateSpec(order=(1, 0, 1)),
    CandidateSpec(order=(2, 1, 1)),
    CandidateSpec(order=(1, 1, 2)),
    CandidateSpec(order=(3, 0, 1)),
]


def test_pool_workers_warm_at_init_not_inside_first_task(fresh_kernel_counters):
    train, test = _workload()
    trace = RunTrace()
    # The pool forks lazily inside evaluate_grid, i.e. after the counter
    # reset above, so every worker starts cold and must warm in its
    # initializer for the assertions below to hold.
    with PoolExecutor(max_workers=2) as pool:
        results = evaluate_grid(SPECS, train, test, maxiter=10, executor=pool, trace=trace)
    assert any(not r.failed for r in results)
    # Each reporting worker warmed exactly once, at init...
    assert trace.counters.get("kernel_warm_runs", 0) >= 1
    # ...and no kernel dispatch ever ran against a cold backend.
    assert trace.counters.get("kernel_calls_before_warm", 0) == 0
    # The grid's forecast path went through the kernels and was counted.
    assert trace.counters.get("kernel_arma_forecast_calls", 0) > 0
    assert trace.counters.get("kernel_arma_forecast_us", 0) > 0


def test_serial_executor_warms_before_first_task(fresh_kernel_counters):
    train, test = _workload()
    trace = RunTrace()
    results = evaluate_grid(
        SPECS, train, test, maxiter=10, executor=SerialExecutor(), trace=trace
    )
    assert any(not r.failed for r in results)
    # Serial work runs in this process: the executor must have warmed the
    # kernels before dispatching the first candidate.
    snap = kernels.stats_snapshot()
    assert kernels.is_warmed()
    assert snap["kernel_warm_runs"] >= 1
    assert snap["kernel_calls_before_warm"] == 0
    assert snap["kernel_arma_forecast_calls"] > 0


def test_serial_counters_flow_through_pipeline_snapshot(fresh_kernel_counters):
    # evaluate_grid only absorbs worker-reported deltas; in-process kernel
    # work is charged by run_pipeline's before/after snapshot instead.
    before = engine_kernels.snapshot()
    train, test = _workload()
    evaluate_grid(SPECS, train, test, maxiter=10, executor=SerialExecutor())
    moved = engine_kernels.delta(before, engine_kernels.snapshot())
    trace = RunTrace()
    engine_kernels.absorb_delta(trace, moved)
    assert trace.counters.get("kernel_arma_forecast_calls", 0) > 0
    assert trace.counters.get("kernel_warm_runs", 0) == 1


def test_trace_renders_kernel_summary_line(fresh_kernel_counters):
    trace = RunTrace()
    trace.set_info("kernel_backend", kernels.active_backend())
    trace.count("kernel_arma_forecast_calls", 12)
    trace.count("kernel_arma_forecast_us", 3400)
    trace.count("kernel_warm_runs", 2)
    lines = trace.summary_lines()
    kernel_lines = [ln for ln in lines if ln.startswith("kernels[")]
    assert len(kernel_lines) == 1
    line = kernel_lines[0]
    assert kernels.active_backend() in line
    assert "arma_forecast:12" in line
    # Kernel counters stay out of the generic counts line.
    assert not any("kernel_" in ln for ln in lines if not ln.startswith("kernels["))


def test_warm_worker_init_is_idempotent(fresh_kernel_counters):
    engine_kernels.warm_worker_init()
    engine_kernels.warm_worker_init()
    assert kernels.stats_snapshot()["kernel_warm_runs"] == 1
