"""Tests for blueprint enumeration and the tier catalog."""

import pytest

from repro.exceptions import DataError
from repro.planner import (
    DEFAULT_CATALOG,
    BlueprintKind,
    enumerate_blueprints,
    enumerate_consolidations,
    metric_dimension,
    tier_named,
)
from repro.planner.blueprint import DIMENSIONS


class TestResourceShape:
    def test_amount_per_dimension(self):
        shape = DEFAULT_CATALOG[0].shape
        assert shape.amount("cpu") == 2.0
        assert shape.amount("memory_gb") == 16.0
        assert shape.amount("storage_gb") == 256.0

    def test_unknown_dimension_rejected(self):
        with pytest.raises(DataError):
            DEFAULT_CATALOG[0].shape.amount("gpus")

    def test_dominates_is_strict(self):
        small, medium = DEFAULT_CATALOG[0].shape, DEFAULT_CATALOG[1].shape
        assert medium.dominates(small)
        assert not small.dominates(medium)
        assert not small.dominates(small)  # equality is not dominance


class TestCatalog:
    def test_doubling_ladder_dominates_upward(self):
        for lower, upper in zip(DEFAULT_CATALOG, DEFAULT_CATALOG[1:]):
            assert upper.shape.dominates(lower.shape)
            assert upper.hourly_cost > lower.hourly_cost

    def test_tier_named(self):
        assert tier_named("t-large") is DEFAULT_CATALOG[2]
        with pytest.raises(DataError):
            tier_named("t-galactic")


class TestMetricDimension:
    @pytest.mark.parametrize(
        ("metric", "dimension"),
        [
            ("cpu", "cpu"),
            ("sessions", "cpu"),
            ("sga_used", "memory_gb"),
            ("memory_pct", "memory_gb"),
            ("logical_iops", "storage_gb"),
            ("disk_space", "storage_gb"),
            ("tablespace_gb", "storage_gb"),
        ],
    )
    def test_known_tokens(self, metric, dimension):
        assert metric_dimension(metric) == dimension

    def test_matching_is_word_level_not_substring(self):
        # "memcached" contains "mem" as a prefix but is not a memory token.
        assert metric_dimension("memcached_ops") == "cpu"

    def test_every_answer_is_a_dimension(self):
        for metric in ("cpu", "sga", "iops", "whatever"):
            assert metric_dimension(metric) in DIMENSIONS


class TestEnumerateBlueprints:
    def test_stay_comes_first(self):
        bps = enumerate_blueprints("db1", DEFAULT_CATALOG[0])
        assert bps[0].kind is BlueprintKind.STAY
        assert bps[0].tier is DEFAULT_CATALOG[0]

    def test_count_bound(self):
        # len(catalog) + max_replicas - replicas, independent of estate size
        bps = enumerate_blueprints("db1", DEFAULT_CATALOG[0], max_replicas=3)
        assert len(bps) == len(DEFAULT_CATALOG) + 3 - 1

    def test_scale_up_requires_dominance(self):
        bps = enumerate_blueprints("db1", DEFAULT_CATALOG[2])
        up = [b for b in bps if b.kind is BlueprintKind.SCALE_UP]
        down = [b for b in bps if b.kind is BlueprintKind.MIGRATE]
        assert {b.tier.name for b in up} == {"t-xlarge", "t-2xlarge"}
        assert {b.tier.name for b in down} == {"t-small", "t-medium"}

    def test_scale_out_counts(self):
        bps = enumerate_blueprints("db1", DEFAULT_CATALOG[0], replicas=1, max_replicas=4)
        out = [b for b in bps if b.kind is BlueprintKind.SCALE_OUT]
        assert [b.replicas for b in out] == [2, 3, 4]
        assert all(b.tier is DEFAULT_CATALOG[0] for b in out)

    def test_capacity_and_cost_scale_with_replicas(self):
        bp = enumerate_blueprints("db1", DEFAULT_CATALOG[0], max_replicas=2)[-1]
        assert bp.replicas == 2
        assert bp.capacity("cpu") == 4.0
        assert bp.hourly_cost == pytest.approx(0.68)

    def test_replica_validation(self):
        with pytest.raises(DataError):
            enumerate_blueprints("db1", DEFAULT_CATALOG[0], replicas=0)
        with pytest.raises(DataError):
            enumerate_blueprints("db1", DEFAULT_CATALOG[0], replicas=3, max_replicas=2)

    def test_slug_is_stable_identity(self):
        bps = enumerate_blueprints("db1", DEFAULT_CATALOG[0])
        assert bps[0].slug() == "stay:db1:t-smallx1"
        assert len({b.slug() for b in bps}) == len(bps)


class TestEnumerateConsolidations:
    def test_singleton_group_yields_nothing(self):
        assert enumerate_consolidations(["db1"]) == ()
        assert enumerate_consolidations([]) == ()

    def test_group_is_sorted_and_deduplicated(self):
        bps = enumerate_consolidations(["b", "a", "b"])
        assert all(bp.instances == ("a", "b") for bp in bps)
        assert all(bp.kind is BlueprintKind.CONSOLIDATE for bp in bps)

    def test_count_bound(self):
        bps = enumerate_consolidations(["a", "b"], max_replicas=3)
        assert len(bps) == len(DEFAULT_CATALOG) * 3
