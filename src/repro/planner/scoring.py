"""Distribution-aware blueprint scoring.

A blueprint is only as good as its behaviour against the forecast
*distribution*, not the point forecast: the models already produce
calibrated bands, and the band quantiles give P(breach) over the horizon
directly (:func:`repro.service.thresholds.breach_probability_arrays` —
the same implementation the alert path grades with). Each blueprint is
scored on four axes:

* **breach probability** — P(any horizon step exceeds the capacity the
  blueprint provides), combined across the covered metrics;
* **expected headroom** — the worst metric's fractional gap between
  provided capacity and the forecast peak;
* **overprovision ratio** — the best-case waste, via
  :func:`repro.service.sizing.overprovision_ratio` against the upper
  band's peak (the paper: "a proportion of that provisioned resource
  will probably never be used");
* **cost** — the blueprint's hourly price relative to what the covered
  instances cost today.

The composite is a weighted sum (lower is better) dominated by the
breach term, so the ranking prefers the cheapest blueprint that actually
clears the forecast, with the overprovision penalty steering away from
oversized picks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import DataError
from ..models.base import Forecast
from ..service.sizing import overprovision_ratio
from ..service.thresholds import breach_probability_arrays
from .blueprint import Blueprint, CatalogTier, metric_dimension

__all__ = [
    "ForecastBand",
    "InstanceDemand",
    "ScoreWeights",
    "BlueprintScore",
    "score_blueprint",
    "rank_blueprints",
    "demands_from_entries",
]


@dataclass(frozen=True, eq=False)
class ForecastBand:
    """The slice of a forecast the scorer consumes: mean + upper quantile."""

    mean: np.ndarray
    upper: np.ndarray
    alpha: float = 0.05

    @classmethod
    def from_forecast(cls, forecast: Forecast) -> "ForecastBand":
        return cls(
            mean=np.asarray(forecast.mean.values, dtype=float),
            upper=np.asarray(forecast.upper.values, dtype=float),
            alpha=float(forecast.alpha),
        )

    def payload(self) -> dict:
        """Picklable/JSON form for shard fan-in and the CLI."""
        return {
            "mean": [float(v) for v in self.mean],
            "upper": [float(v) for v in self.upper],
            "alpha": float(self.alpha),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ForecastBand":
        return cls(
            mean=np.asarray(payload["mean"], dtype=float),
            upper=np.asarray(payload["upper"], dtype=float),
            alpha=float(payload["alpha"]),
        )


@dataclass(frozen=True, eq=False)
class InstanceDemand:
    """One instance's planning inputs.

    ``capacities`` maps each forecasted metric to the capacity the
    *current* provisioning gives it (the alerting threshold); scoring
    scales that capacity by the candidate blueprint's resource ratio on
    the dimension the metric consumes, so abstract tiers translate into
    metric-space thresholds without a per-metric calibration table.
    """

    instance: str
    tier: CatalogTier
    bands: dict[str, ForecastBand] = field(default_factory=dict)
    capacities: dict[str, float] = field(default_factory=dict)
    replicas: int = 1
    group: str | None = None


@dataclass(frozen=True)
class ScoreWeights:
    """Composite-score weights; breach dominates by design."""

    breach: float = 10.0
    cost: float = 1.0
    overprovision: float = 0.5
    #: Overprovision ratios up to this are free; only the excess is
    #: penalised (some slack is the point of capacity planning).
    target_overprovision: float = 1.5


@dataclass(frozen=True)
class BlueprintScore:
    """How one blueprint fares against the forecast distributions."""

    breach_probability: float
    expected_headroom: float
    overprovision: float
    hourly_cost: float
    composite: float

    def describe(self) -> str:
        return (
            f"p(breach)={self.breach_probability:.1%} "
            f"headroom={self.expected_headroom:+.0%} "
            f"overprovision={self.overprovision:.2f}x "
            f"cost=${self.hourly_cost:.2f}/h score={self.composite:.3f}"
        )


def _capacity_density(demands: Sequence[InstanceDemand], metric: str, dimension: str) -> float:
    """Capacity per provisioned resource unit for one metric.

    Each demand that carries the metric implies a density (its current
    capacity over its current resource amount); the minimum across the
    covered demands is used so a consolidation never assumes a more
    generous translation than its least generous member.
    """
    densities = []
    for demand in demands:
        if metric not in demand.capacities:
            continue
        provided = demand.tier.shape.amount(dimension) * demand.replicas
        if provided <= 0:
            raise DataError(
                f"instance {demand.instance} provides no {dimension}; cannot scale {metric}"
            )
        densities.append(demand.capacities[metric] / provided)
    if not densities:
        raise DataError(f"no covered instance carries metric {metric!r}")
    return min(densities)


def score_blueprint(
    blueprint: Blueprint,
    demands: Sequence[InstanceDemand],
    weights: ScoreWeights = ScoreWeights(),
    reference_cost: float | None = None,
) -> BlueprintScore:
    """Score one blueprint against the demands it covers.

    ``demands`` must be exactly the instances the blueprint covers — one
    for per-instance kinds, the whole co-location group for CONSOLIDATE
    (their bands are summed per metric, truncated to the shortest
    horizon, because consolidated instances share the box). The cost
    term is relative to ``reference_cost`` (defaults to the covered
    instances' current hourly cost), so STAY always lands at 1.0.
    """
    if not demands:
        raise DataError("score_blueprint needs at least one demand")
    covered = {d.instance for d in demands}
    if covered != set(blueprint.instances):
        raise DataError(
            f"blueprint covers {sorted(blueprint.instances)} but demands are {sorted(covered)}"
        )
    if reference_cost is None:
        reference_cost = sum(d.tier.hourly_cost * d.replicas for d in demands)
    metrics = sorted({m for d in demands for m in d.bands if m in d.capacities})
    if not metrics:
        raise DataError("no metric has both a forecast band and a capacity")

    survival = 1.0
    worst_headroom = math.inf
    worst_overprovision = 1.0
    alpha = None
    for metric in metrics:
        parts = [d.bands[metric] for d in demands if metric in d.bands]
        alpha = parts[0].alpha if alpha is None else alpha
        horizon = min(p.mean.size for p in parts)
        if horizon == 0:
            continue
        mean = np.sum([p.mean[:horizon] for p in parts], axis=0)
        upper = np.sum([p.upper[:horizon] for p in parts], axis=0)
        dimension = metric_dimension(metric)
        capacity = _capacity_density(demands, metric, dimension) * blueprint.capacity(
            dimension
        )
        p_metric = breach_probability_arrays(mean, upper, capacity, alpha=parts[0].alpha)
        if math.isfinite(p_metric):
            survival *= 1.0 - p_metric
        finite = mean[np.isfinite(mean)]
        if finite.size and capacity > 0:
            worst_headroom = min(worst_headroom, (capacity - float(finite.max())) / capacity)
        finite_upper = upper[np.isfinite(upper)]
        if finite_upper.size and capacity > 0 and float(finite_upper.max()) > 0:
            worst_overprovision = max(
                worst_overprovision,
                overprovision_ratio(capacity, float(finite_upper.max())),
            )

    breach_probability = 1.0 - survival
    headroom = worst_headroom if math.isfinite(worst_headroom) else 0.0
    cost_term = (
        blueprint.hourly_cost / reference_cost if reference_cost > 0 else blueprint.hourly_cost
    )
    over_penalty = max(0.0, worst_overprovision - weights.target_overprovision)
    composite = (
        weights.breach * breach_probability
        + weights.cost * cost_term
        + weights.overprovision * over_penalty
    )
    return BlueprintScore(
        breach_probability=float(breach_probability),
        expected_headroom=float(headroom),
        overprovision=float(worst_overprovision),
        hourly_cost=float(blueprint.hourly_cost),
        composite=float(composite),
    )


def demands_from_entries(
    entries,
    tier: CatalogTier,
    horizon: int | None = None,
    replicas: int = 1,
) -> list[InstanceDemand]:
    """Build per-instance demands from modelled estate entries.

    ``entries`` are :class:`~repro.service.estate.EstateEntry` objects
    (duck-typed — anything with ``key``, ``series``, ``threshold`` and
    ``outcome`` works); entries without a threshold or a fitted outcome
    are skipped. Each entry's forecast is recomputed from its stored
    selection outcome exactly as the estate advisory path does —
    including the shock-calendar exogenous future — so the plan grades
    the same distribution the alerts grade. Entries sharing a workload
    collapse into one demand carrying all of its metrics; the result is
    sorted by instance, which is what makes downstream plans independent
    of registration (and shard) order.
    """
    merged: dict[str, tuple[dict, dict]] = {}
    for entry in entries:
        if entry.threshold is None or entry.outcome is None:
            continue
        outcome = entry.outcome
        steps = horizon or entry.series.frequency.split_rule.horizon
        kwargs = {}
        if (
            outcome.best_spec is not None
            and outcome.best_spec.exog_columns
            and outcome.shock_calendar is not None
        ):
            kwargs["exog_future"] = outcome.shock_calendar.future_matrix(steps)[
                :, : outcome.best_spec.exog_columns
            ]
        forecast = outcome.model.forecast(steps, **kwargs).clipped(0.0)
        bands, capacities = merged.setdefault(entry.key.workload, ({}, {}))
        bands[entry.key.metric] = ForecastBand.from_forecast(forecast)
        capacities[entry.key.metric] = float(entry.threshold)
    return [
        InstanceDemand(
            instance=instance,
            tier=tier,
            bands=merged[instance][0],
            capacities=merged[instance][1],
            replicas=replicas,
        )
        for instance in sorted(merged)
    ]


def rank_blueprints(
    candidates: Sequence[Blueprint],
    demands: Sequence[InstanceDemand],
    weights: ScoreWeights = ScoreWeights(),
    reference_cost: float | None = None,
) -> tuple[tuple[Blueprint, BlueprintScore], ...]:
    """Score every candidate and sort best-first, slug-stable on ties."""
    scored = [
        (bp, score_blueprint(bp, demands, weights, reference_cost)) for bp in candidates
    ]
    scored.sort(key=lambda item: (item[1].composite, item[0].slug()))
    return tuple(scored)
