"""Streaming ingestion and live forecast serving.

The batch pipeline answers "what will this stored series do next?"; this
package keeps that answer *current* while samples keep arriving:

* :mod:`~repro.stream.clock` — injectable time (tests never sleep);
* :mod:`~repro.stream.keys` — the interned key table: ``(instance,
  metric)`` ↔ dense int id, shared by bus, aggregator and scheduler;
* :mod:`~repro.stream.ingest` — the sample bus: dedup, watermarks,
  bounded buffering with backpressure accounting, and the columnar
  ``push_columns`` fast path with dirty-key tracking;
* :mod:`~repro.stream.aggregate` — incremental hourly windows that
  finalise as watermarks advance, bit-equal to the batch repository's
  ``load_series``;
* :mod:`~repro.stream.scheduler` — cohort-batched model upkeep: roll
  stored states forward on closed windows, grade same-spec keys in one
  batched kernel call, re-select through the engine executor and the
  estate selection cache only on real staleness;
* :mod:`~repro.stream.drift` — the CUSUM drift check on roll
  innovations that decides when re-selection is worth paying for;
* :mod:`~repro.stream.alerts` — debounced breach alerting with severity
  escalation and recovery;
* :mod:`~repro.stream.runtime` — the wired loop over simulated agent
  traffic, with merged telemetry for the ``repro stream`` CLI.
"""

from .aggregate import ClosedWindow, WindowAggregator
from .alerts import (
    AlertEvent,
    AlertKind,
    AlertManager,
    AlertSink,
    ConsoleSink,
    ListSink,
)
from .clock import Clock, ManualClock, SystemClock
from .drift import CusumDetector
from .ingest import IngestBus, KeyBuffer, StreamKey
from .keys import KeyTable
from .runtime import StreamConfig, StreamRuntime
from .scheduler import ForecastScheduler, RefitEvent, SchedulerTick

__all__ = [
    "AlertEvent",
    "AlertKind",
    "AlertManager",
    "AlertSink",
    "Clock",
    "ClosedWindow",
    "ConsoleSink",
    "CusumDetector",
    "ForecastScheduler",
    "IngestBus",
    "KeyBuffer",
    "KeyTable",
    "ListSink",
    "ManualClock",
    "RefitEvent",
    "SchedulerTick",
    "StreamConfig",
    "StreamKey",
    "StreamRuntime",
    "SystemClock",
    "WindowAggregator",
]
