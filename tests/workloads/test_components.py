"""Tests for workload signal components."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.workloads import (
    BusinessHours,
    Composite,
    Constant,
    DailyCycle,
    GaussianNoise,
    LinearTrend,
    OneOffShock,
    ProportionalNoise,
    RecurringShockComponent,
    Surge,
    WeeklyCycle,
)

HOUR = 3600.0
DAY = 86400.0


def grid(days=7, step=HOUR):
    return np.arange(0, days * DAY, step)


def rng():
    return np.random.default_rng(0)


class TestConstant:
    def test_flat(self):
        out = Constant(42.0).values(grid(), rng())
        assert np.all(out == 42.0)


class TestLinearTrend:
    def test_slope(self):
        out = LinearTrend(per_day=10.0).values(grid(days=3), rng())
        assert out[0] == 0.0
        assert out[24] == pytest.approx(10.0)  # one day in
        assert out[-1] == pytest.approx(10.0 * (len(out) - 1) / 24)

    def test_relative_to_window_start(self):
        t = grid(days=2) + 5 * DAY
        out = LinearTrend(per_day=10.0).values(t, rng())
        assert out[0] == 0.0


class TestDailyCycle:
    def test_period_24h(self):
        out = DailyCycle(amplitude=10.0).values(grid(days=4), rng())
        assert np.allclose(out[:24], out[24:48])

    def test_peak_at_peak_hour(self):
        out = DailyCycle(amplitude=10.0, peak_hour=14.0).values(grid(days=1), rng())
        assert np.argmax(out) == 14

    def test_amplitude_normalised(self):
        out = DailyCycle(amplitude=10.0, sharpness=0.5).values(grid(days=2), rng())
        assert out.max() <= 10.0 + 1e-9


class TestWeeklyCycle:
    def test_weekend_depressed(self):
        out = WeeklyCycle(depth=20.0).values(grid(days=7), rng())
        weekday = out[2 * 24 + 12]  # Wednesday noon
        weekend = out[5 * 24 + 12]  # Saturday noon
        assert weekend < weekday - 15.0

    def test_period_one_week(self):
        out = WeeklyCycle(depth=20.0).values(grid(days=14), rng())
        assert np.allclose(out[: 7 * 24], out[7 * 24 :], atol=1e-9)


class TestBusinessHours:
    def test_plateau_inside_hours(self):
        out = BusinessHours(amplitude=30.0, start=9.0, end=17.0).values(grid(days=1), rng())
        assert out[12] > 25.0
        assert out[3] < 5.0

    def test_ramps_monotone(self):
        out = BusinessHours(amplitude=30.0, start=9.0, end=17.0, ramp_hours=1.0).values(
            grid(days=1, step=900.0), rng()
        )
        morning = out[30:40]  # 7:30–10:00 in 15-min steps
        assert np.all(np.diff(morning) >= -1e-9)


class TestSurge:
    def test_active_window(self):
        out = Surge(magnitude=100.0, start_hour=7.0, duration_hours=4.0).values(
            grid(days=1), rng()
        )
        assert np.all(out[7:11] == 100.0)
        assert np.all(out[11:] == 0.0)
        assert np.all(out[:7] == 0.0)

    def test_wraps_midnight(self):
        out = Surge(magnitude=10.0, start_hour=23.0, duration_hours=2.0).values(
            grid(days=1), rng()
        )
        assert out[23] == 10.0 and out[0] == 10.0 and out[1] == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            Surge(magnitude=1.0, start_hour=0.0, duration_hours=0.0)


class TestRecurringShock:
    def test_six_hourly(self):
        out = RecurringShockComponent(
            magnitude=50.0, every_hours=6.0, duration_hours=1.0
        ).values(grid(days=1), rng())
        fired = np.flatnonzero(out > 0)
        assert list(fired) == [0, 6, 12, 18]

    def test_offset(self):
        out = RecurringShockComponent(
            magnitude=50.0, every_hours=24.0, at_hour=3.0, duration_hours=1.0
        ).values(grid(days=2), rng())
        assert out[3] > 0 and out[27] > 0 and out[0] == 0.0

    def test_decay_over_duration(self):
        out = RecurringShockComponent(
            magnitude=60.0, every_hours=24.0, duration_hours=3.0
        ).values(grid(days=1), rng())
        assert out[0] > out[1] > out[2] > 0

    def test_validation(self):
        with pytest.raises(DataError):
            RecurringShockComponent(magnitude=1.0, every_hours=0.0)


class TestOneOffShock:
    def test_fires_once(self):
        out = OneOffShock(magnitude=-30.0, at_hour=10.0, duration_hours=2.0).values(
            grid(days=2), rng()
        )
        assert out[10] == -30.0 and out[11] == -30.0
        assert np.count_nonzero(out) == 2


class TestNoise:
    def test_gaussian_stats(self):
        out = GaussianNoise(sigma=2.0).values(grid(days=30), rng())
        assert abs(out.mean()) < 0.3
        assert out.std() == pytest.approx(2.0, rel=0.1)

    def test_deterministic_given_seed(self):
        a = GaussianNoise(sigma=1.0).values(grid(), np.random.default_rng(5))
        b = GaussianNoise(sigma=1.0).values(grid(), np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestComposite:
    def test_sums_components(self):
        stack = Composite([Constant(10.0), Constant(5.0)])
        assert np.all(stack.values(grid(), rng()) == 15.0)

    def test_add_operator(self):
        stack = Constant(10.0) + Constant(1.0)
        assert isinstance(stack, Composite)
        assert np.all(stack.values(grid(), rng()) == 11.0)

    def test_nested_flattened(self):
        inner = Composite([Constant(1.0), Constant(2.0)])
        outer = Composite([inner, Constant(3.0)])
        assert len(outer.components) == 3

    def test_proportional_noise_scales_with_level(self):
        low = Composite([Constant(10.0), ProportionalNoise(cv=0.1)])
        high = Composite([Constant(1000.0), ProportionalNoise(cv=0.1)])
        lo = low.values(grid(days=30), np.random.default_rng(1))
        hi = high.values(grid(days=30), np.random.default_rng(1))
        assert hi.std() > 50 * lo.std()
