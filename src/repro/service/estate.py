"""Estate-wide capacity planning: many clusters, many metrics, one report.

Section 8 of the paper describes the production reality: "the approach is
being applied across several thousand customers, covering 1000's of
workloads involving different components in the technological stack" —
databases, application containers, storage layers. The per-series pipeline
(:mod:`repro.selection.auto`) stays the same; what changes at estate scale
is orchestration:

* every (workload, metric) pair gets its own model, and selection **fans
  out across the pairs** on a shared
  :class:`~repro.engine.executor.Executor` — pass a
  :class:`~repro.engine.PoolExecutor` (or construct the planner with one)
  and the estate parallelises across series, one worker per workload,
  with grid evaluation inside each worker kept serial so the pool is
  never nested;
* systems flagged *in-fault* by the crash rules are excluded from
  forecasting and surfaced separately ("manual override is needed to
  accommodate systems that are in-fault");
* the output is a fleet report: per-workload advisories ranked by urgency
  so an operator sees the next outage first, plus a
  :class:`~repro.engine.telemetry.RunTrace` recording per-workload
  wall-times, aggregate candidate counts and worker utilisation.

:class:`EstatePlanner` implements exactly that on top of any number of
registered series or :class:`~repro.service.planner.CapacityPlanner`
repositories. One pathological series cannot take the report down — a
workload whose selection fails (or whose worker dies) lands in
``failed`` with the captured error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..core.timeseries import TimeSeries
from ..engine.executor import Executor, SerialExecutor
from ..engine.telemetry import RunTrace
from ..exceptions import DataError, SelectionError
from ..selection.auto import AutoConfig, SelectionOutcome, auto_select
from ..selection.staleness import StalenessVerdict
from ..shocks.faults import FaultPolicy, FaultVerdict, discard_faults
from .selection_cache import SelectionCache
from .thresholds import BreachPrediction, BreachSeverity, predict_breach

__all__ = ["WorkloadKey", "WorkloadStatus", "EstateEntry", "EstateReport", "EstatePlanner"]


@dataclass(frozen=True, order=True)
class WorkloadKey:
    """Identity of one monitored metric in the estate."""

    customer: str
    workload: str
    metric: str

    def __str__(self) -> str:
        return f"{self.customer}/{self.workload}/{self.metric}"


class WorkloadStatus(enum.Enum):
    """Planner state of a workload."""

    PENDING = "pending"
    MODELLED = "modelled"
    IN_FAULT = "in fault (excluded from forecasting)"
    FAILED = "selection failed"


#: Ranking order for the fleet report (most urgent first).
_SEVERITY_RANK = {
    BreachSeverity.CERTAIN: 0,
    BreachSeverity.LIKELY: 1,
    BreachSeverity.POSSIBLE: 2,
    BreachSeverity.NONE: 3,
}


@dataclass
class EstateEntry:
    """Everything the estate planner knows about one workload metric."""

    key: WorkloadKey
    series: TimeSeries
    threshold: float | None
    status: WorkloadStatus = WorkloadStatus.PENDING
    model_label: str = ""
    test_rmse: float = float("nan")
    advisory: BreachPrediction | None = None
    detail: str = ""
    #: Wall-clock seconds the workload's selection took (0 until processed).
    seconds: float = 0.0
    #: Per-selection engine telemetry (None for in-fault/failed workloads
    #: and for selection-cache hits, which run no fresh selection).
    trace: RunTrace | None = None
    #: The full selection outcome (model, leaderboard, shock calendar);
    #: feeds the estate selection cache. None until modelled.
    outcome: SelectionOutcome | None = field(default=None, repr=False)


@dataclass
class EstateReport:
    """Fleet-wide summary, advisories ranked most-urgent first."""

    entries: list[EstateEntry]
    #: Estate-level telemetry: fan-out timing, per-workload wall-times,
    #: aggregated candidate counters and worker utilisation.
    trace: RunTrace | None = None

    @property
    def modelled(self) -> list[EstateEntry]:
        return [e for e in self.entries if e.status is WorkloadStatus.MODELLED]

    @property
    def in_fault(self) -> list[EstateEntry]:
        return [e for e in self.entries if e.status is WorkloadStatus.IN_FAULT]

    @property
    def failed(self) -> list[EstateEntry]:
        return [e for e in self.entries if e.status is WorkloadStatus.FAILED]

    def ranked_advisories(self) -> list[EstateEntry]:
        """Modelled workloads with thresholds, most urgent breach first."""
        with_advice = [e for e in self.modelled if e.advisory is not None]
        return sorted(
            with_advice,
            key=lambda e: (
                _SEVERITY_RANK[e.advisory.severity],
                e.advisory.first_breach_step or 1_000_000,
            ),
        )

    def summary_lines(self) -> list[str]:
        lines = [
            f"estate: {len(self.entries)} workload metrics — "
            f"{len(self.modelled)} modelled, {len(self.in_fault)} in fault, "
            f"{len(self.failed)} failed"
        ]
        for entry in self.ranked_advisories():
            lines.append(f"  {entry.key}: {entry.advisory.describe()} [{entry.model_label}]")
        for entry in self.in_fault:
            lines.append(f"  {entry.key}: {entry.detail}")
        return lines


def _evaluate_entry(
    entry: EstateEntry,
    config: AutoConfig,
    fault_policy: FaultPolicy,
    horizon: int | None,
) -> EstateEntry:
    """Process one workload: repair → fault check → select → advise.

    Module-level and argument-pure so a :class:`PoolExecutor` can ship it
    to worker processes; mutates and returns ``entry``.
    """
    period = entry.series.frequency.default_period
    # Figure 4 order: repair agent gaps first, then fault analysis.
    from ..core.preprocessing import interpolate_missing

    try:
        repaired = interpolate_missing(entry.series)
    except DataError as exc:
        entry.status = WorkloadStatus.FAILED
        entry.detail = str(exc)
        return entry
    analysis = discard_faults(repaired, period=period, policy=fault_policy)
    if analysis.verdict is FaultVerdict.IN_FAULT:
        entry.status = WorkloadStatus.IN_FAULT
        entry.detail = analysis.describe()
        return entry
    try:
        outcome = auto_select(analysis.series, config=config)
    except (SelectionError, DataError) as exc:
        entry.status = WorkloadStatus.FAILED
        entry.detail = str(exc)
        return entry
    entry.status = WorkloadStatus.MODELLED
    entry.model_label = outcome.model.label()
    entry.test_rmse = outcome.test_rmse
    entry.detail = analysis.describe()
    entry.trace = outcome.trace
    entry.outcome = outcome
    _advise(entry, outcome, horizon)
    return entry


def _advise(entry: EstateEntry, outcome: SelectionOutcome, horizon: int | None) -> None:
    """Attach a breach advisory to a modelled entry (threshold permitting)."""
    if entry.threshold is None:
        return
    advisory_horizon = horizon or entry.series.frequency.split_rule.horizon
    kwargs = {}
    if (
        outcome.best_spec is not None
        and outcome.best_spec.exog_columns
        and outcome.shock_calendar is not None
    ):
        kwargs["exog_future"] = outcome.shock_calendar.future_matrix(advisory_horizon)[
            :, : outcome.best_spec.exog_columns
        ]
    forecast = outcome.model.forecast(advisory_horizon, **kwargs).clipped(0.0)
    entry.advisory = predict_breach(forecast, entry.threshold)


def _evaluate_entry_task(payload) -> EstateEntry:
    """Executor task wrapper: unpack one ``(entry, config, policy, horizon)``."""
    entry, config, fault_policy, horizon = payload
    return _evaluate_entry(entry, config, fault_policy, horizon)


class EstatePlanner:
    """Capacity planning across a whole monitored estate.

    Parameters
    ----------
    config:
        Selection configuration applied to every workload.
    fault_policy:
        Crash handling policy (see :mod:`repro.shocks.faults`).
    horizon:
        Forecast horizon (samples) used for advisories; defaults to the
        Table 1 horizon of each series' frequency.
    executor:
        Default execution backend for :meth:`report`. A
        :class:`~repro.engine.PoolExecutor` fans selection out across
        (workload, metric) pairs — the estate-scale parallelism of
        Section 8; ``None`` processes workloads serially in-process.
    cache:
        The estate's :class:`~repro.service.selection_cache.SelectionCache`
        implementing the paper's reuse-for-one-week rule: re-registering
        an unchanged (workload, metric) series re-uses the stored
        selection outcome (zero grid fits) until its staleness monitor
        declares it expired, degraded or outgrown. ``None`` builds a
        fresh cache; pass a shared instance to pool reuse across
        planners.
    """

    def __init__(
        self,
        config: AutoConfig | None = None,
        fault_policy: FaultPolicy | None = None,
        horizon: int | None = None,
        executor: Executor | None = None,
        cache: SelectionCache | None = None,
    ) -> None:
        self.config = config or AutoConfig()
        self.fault_policy = fault_policy or FaultPolicy()
        self.horizon = horizon
        self.executor = executor
        self.cache = cache if cache is not None else SelectionCache()
        self._entries: dict[WorkloadKey, EstateEntry] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        customer: str,
        workload: str,
        metric: str,
        series: TimeSeries,
        threshold: float | None = None,
    ) -> WorkloadKey:
        """Add (or replace) one workload metric in the estate."""
        if not isinstance(series, TimeSeries):
            raise DataError("series must be a TimeSeries")
        key = WorkloadKey(customer=customer, workload=workload, metric=metric)
        self._entries[key] = EstateEntry(key=key, series=series, threshold=threshold)
        return key

    def adopt(
        self,
        customer: str,
        workload: str,
        metric: str,
        series: TimeSeries,
        outcome: SelectionOutcome,
        threshold: float | None = None,
    ) -> WorkloadKey:
        """Install a pre-fitted selection outcome without running the grid.

        The bulk-seeding path (restarts, benchmarks): the entry lands
        ``MODELLED`` immediately and the outcome is stored in the
        selection cache, so the staleness monitor governs its lifecycle
        exactly as if :meth:`report` had selected it here. No advisory
        is attached — the streaming scheduler grades on its own clock.
        """
        key = self.register(customer, workload, metric, series, threshold=threshold)
        entry = self._entries[key]
        entry.status = WorkloadStatus.MODELLED
        entry.model_label = outcome.model.label()
        entry.test_rmse = outcome.test_rmse
        entry.detail = "adopted pre-fitted outcome"
        entry.outcome = outcome
        self.cache.put(key, entry.series, self.config, outcome)
        return key

    def register_cluster_run(
        self,
        customer: str,
        workload: str,
        run,
        thresholds: dict[str, float] | None = None,
    ) -> list[WorkloadKey]:
        """Register every metric of every instance in a simulator run."""
        thresholds = thresholds or {}
        keys = []
        for instance, bundle in run.instances.items():
            for metric, series in bundle.as_dict().items():
                keys.append(
                    self.register(
                        customer,
                        f"{workload}:{instance}",
                        metric,
                        series,
                        threshold=thresholds.get(metric),
                    )
                )
        return keys

    @property
    def size(self) -> int:
        return len(self._entries)

    def keys(self) -> list[WorkloadKey]:
        return sorted(self._entries)

    def entry(self, key: WorkloadKey) -> EstateEntry:
        """The live estate entry for ``key`` (streaming layer reads these)."""
        try:
            return self._entries[key]
        except KeyError:
            raise DataError(f"unknown workload {key}") from None

    def forget(self, key: WorkloadKey) -> bool:
        """Drop a workload from the estate (shard rebalance migration).

        Removes the live entry and invalidates its selection-cache slot;
        returns ``False`` when the key was never registered. The workload
        re-registers from scratch wherever it lands next.
        """
        removed = self._entries.pop(key, None) is not None
        self.cache.invalidate(key)
        return removed

    # ------------------------------------------------------------------
    def report(self, executor: Executor | None = None) -> EstateReport:
        """Process every pending workload and build the fleet report.

        Workloads fan out across ``executor`` (falling back to the
        planner's default, then to serial in-process execution). On a
        pool executor each workload's selection runs in its own worker
        with inner grid parallelism pinned to one process — parallelism
        across series, not nested pools. Workloads are processed
        independently; one pathological series cannot take the estate
        report down (it lands in ``failed``).

        Pending workloads first consult the selection cache: an entry
        whose series and config fingerprints match a stored, still-fresh
        outcome is modelled from the cache (zero grid fits, counted as
        ``selection_cache_hits``); everything else runs a fresh selection
        and is stored for next time.
        """
        if not self._entries:
            raise DataError("no workloads registered")
        executor = executor if executor is not None else self.executor
        fanned_out = executor is not None and not isinstance(executor, SerialExecutor)
        if executor is None:
            executor = SerialExecutor()
        config = self.config
        if fanned_out:
            # Workers each own one series; the grid inside must not spawn
            # a nested pool of its own.
            config = replace(config, n_jobs=1)

        trace = RunTrace()
        pending = []
        for key in self.keys():
            entry = self._entries[key]
            if entry.status is not WorkloadStatus.PENDING:
                continue
            cached = self.cache.get(key, entry.series, config)
            if cached is not None:
                self._model_from_cache(entry, cached)
                trace.count("selection_cache_hits")
                continue
            trace.count("selection_cache_misses")
            pending.append(key)
        payloads = [
            (self._entries[key], config, self.fault_policy, self.horizon)
            for key in pending
        ]
        with trace.stage(
            "fan-out", detail=f"{len(payloads)} workloads, {'pool' if fanned_out else 'serial'}"
        ):
            reports = executor.run(_evaluate_entry_task, payloads)
        trace.record_task_reports(reports)

        for key, task in zip(pending, reports):
            entry = self._entries[key]
            if task.ok:
                processed = task.value  # a pickled copy when pooled
                processed.seconds = task.seconds
                self._entries[key] = processed
                entry = processed
                if entry.status is WorkloadStatus.MODELLED and entry.outcome is not None:
                    self.cache.put(key, entry.series, config, entry.outcome)
            else:
                entry.status = WorkloadStatus.FAILED
                entry.detail = f"executor: {task.error}"
            trace.add_stage("workload", task.seconds, detail=str(key))
            if entry.trace is not None:
                for counter, value in entry.trace.counters.items():
                    trace.count(counter, value)

        for entry in self._entries.values():
            trace.count(f"workloads_{entry.status.name.lower()}")
        return EstateReport(entries=[self._entries[k] for k in self.keys()], trace=trace)

    def _model_from_cache(self, entry: EstateEntry, outcome: SelectionOutcome) -> None:
        """Model an entry from a cached outcome — zero grid fits.

        The advisory is recomputed against the entry's *current*
        threshold (re-registration may have changed it); ``trace`` stays
        ``None`` so the estate trace never double-counts the original
        selection's candidate counters.
        """
        entry.status = WorkloadStatus.MODELLED
        entry.model_label = outcome.model.label()
        entry.test_rmse = outcome.test_rmse
        entry.detail = "selection cache hit"
        entry.outcome = outcome
        entry.trace = None
        entry.seconds = 0.0
        _advise(entry, outcome, self.horizon)

    def observe(self, key: WorkloadKey, values) -> StalenessVerdict | None:
        """Feed fresh monitored observations to ``key``'s stored model.

        Implements the paper's model-lifecycle rule at estate scope: the
        observations update the cached outcome's staleness monitor, and a
        stale verdict (older than a week, RMSE degraded beyond the
        monitor's factor, or significant data growth) evicts the cache
        record and resets the workload to ``PENDING`` so the next
        :meth:`report` re-selects from scratch. Returns the verdict, or
        ``None`` when nothing is cached for ``key``.
        """
        if key not in self._entries:
            raise DataError(f"unknown workload {key}")
        verdict = self.cache.observe(key, values)
        if verdict is not None and verdict.stale:
            entry = self._entries[key]
            entry.status = WorkloadStatus.PENDING
            entry.detail = f"re-selection required: {verdict.describe()}"
        return verdict

    def run(self) -> EstateReport:
        """Backwards-compatible alias for :meth:`report`."""
        return self.report()
