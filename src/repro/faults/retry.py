"""Retry with exponential backoff: the fault plane's first resilience policy.

Injecting transient failures (see :mod:`repro.faults.plan`) immediately
exposed the gap this module fills: repository writes raised on the first
``sqlite3.OperationalError: database is locked`` and an agent poll that
failed once lost the whole metric. :class:`RetryPolicy` is the declarative
cure — bounded attempts, exponentially growing delays with seeded jitter,
and a hard **budget** on total backoff so a permanently broken dependency
cannot stall a caller forever.

Nothing here ever calls :func:`time.sleep`. Backoff waits are routed
through the stream layer's :class:`~repro.stream.clock.Clock` abstraction:
a :class:`~repro.stream.clock.ManualClock` *advances* (simulated weeks
replay in milliseconds, deterministic tests), a custom ``waiter`` callable
can block for real in a live deployment, and with neither the wait is
accounted but instantaneous — retries then act as bounded immediate
re-attempts, which is exactly right for in-process lock contention.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError

__all__ = ["RetryPolicy", "RetryRunner"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how long, and how hard to retry a transient failure.

    Parameters
    ----------
    max_attempts:
        Total call attempts (first try included); ``1`` disables retry.
    base_delay:
        Backoff before the first retry, in seconds.
    multiplier:
        Exponential growth factor between consecutive delays.
    max_delay:
        Per-retry delay ceiling.
    jitter:
        Fractional jitter: each delay is stretched by
        ``U(0, jitter) × delay`` drawn from a seeded RNG, so colliding
        writers decorrelate while every schedule stays reproducible.
    budget:
        Total backoff budget in seconds; once the summed delays would
        exceed it, retrying stops even if attempts remain.
    seed:
        Seed of the jitter stream.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    budget: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise DataError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.budget < 0:
            raise DataError("delays and budget must be non-negative")
        if self.multiplier < 1.0:
            raise DataError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise DataError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff schedule, capped by the budget.

        Yields at most ``max_attempts - 1`` delays; stops early once the
        budget is exhausted. A fresh iterator replays identically.
        """
        rng = np.random.default_rng(self.seed)
        spent = 0.0
        delay = self.base_delay
        for __ in range(self.max_attempts - 1):
            step = min(delay, self.max_delay)
            if self.jitter:
                step *= 1.0 + self.jitter * float(rng.random())
            if spent + step > self.budget:
                return
            spent += step
            yield step
            delay *= self.multiplier


class RetryRunner:
    """Executes callables under a :class:`RetryPolicy`, counting everything.

    Parameters
    ----------
    policy:
        The backoff schedule; ``None`` uses the default policy.
    clock:
        Optional stream-layer clock. A clock with an ``advance`` method
        (:class:`~repro.stream.clock.ManualClock`) has backoff waits
        applied to it, keeping simulated time honest without sleeping.
    waiter:
        Optional ``f(delay_seconds)`` called for each wait — a live
        deployment's hook for a real (interruptible) sleep. Takes
        precedence over ``clock``.
    name:
        Prefix of the emitted counters (``<name>_retries``,
        ``<name>_recoveries``, ``<name>_exhausted``, ``<name>_wait_ms``),
        so several runners can share one ``faults`` telemetry block.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        clock=None,
        waiter: Callable[[float], None] | None = None,
        name: str = "retry",
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock
        self.waiter = waiter
        self.name = name
        self.counters: dict[str, int] = {}

    def _count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def _wait(self, delay: float) -> None:
        self._count(f"{self.name}_wait_ms", int(round(delay * 1000.0)))
        if self.waiter is not None:
            self.waiter(delay)
        elif self.clock is not None and hasattr(self.clock, "advance"):
            self.clock.advance(delay)
        # No waiter, no advanceable clock: the wait is accounted but
        # instantaneous — never time.sleep.

    def call(
        self,
        fn: Callable[[], object],
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Run ``fn`` until it succeeds or the policy gives up.

        Retries only exceptions matching ``retry_on``; anything else
        propagates immediately. ``on_retry(attempt, exc)`` fires before
        each retry (1-based attempt that just failed). When the policy is
        exhausted the final exception propagates unchanged.
        """
        delays = self.policy.delays()
        attempt = 1
        while True:
            try:
                value = fn()
            except retry_on as exc:
                delay = next(delays, None)
                if delay is None:
                    self._count(f"{self.name}_exhausted")
                    raise
                self._count(f"{self.name}_retries")
                self._wait(delay)
                if on_retry is not None:
                    on_retry(attempt, exc)
                attempt += 1
                continue
            if attempt > 1:
                self._count(f"{self.name}_recoveries")
            return value
