"""Exponential smoothing models: SES, Holt's linear trend and Holt–Winters.

Section 4.3 of the paper presents exponential smoothing as "the other side
of the coin" from ARIMA: recent observations get exponentially more weight,
which suits workloads with drift or without stable autocorrelation
structure. The pipeline's HES branch (Figure 4) uses the Holt–Winters
seasonal method; SES and Holt are provided both as building blocks and as
baselines.

All three share one recursion engine with additive or multiplicative
seasonality and optional damped trend. Smoothing parameters are estimated
by minimising the in-sample one-step sum of squared errors with L-BFGS-B.
Prediction intervals use the standard analytic variance expressions for the
additive cases (Hyndman et al., *Forecasting: Principles & Practice*) and a
residual-bootstrap simulation for multiplicative seasonality, where no
closed form exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from ..core.timeseries import TimeSeries
from ..exceptions import ConvergenceError, ModelError
from .base import FittedModel, Forecast, ForecastModel, check_series

__all__ = [
    "SimpleExpSmoothing",
    "Holt",
    "HoltWinters",
    "FittedExpSmoothing",
]

_BOUND = (1e-4, 0.9999)
_PHI_BOUND = (0.8, 0.998)


@dataclass(frozen=True)
class _EtsSpec:
    """Which components the smoothing model carries."""

    trend: bool
    damped: bool
    seasonal: str | None  # None | "add" | "mul"
    period: int

    def n_smoothing_params(self) -> int:
        n = 1  # alpha
        if self.trend:
            n += 1  # beta
            if self.damped:
                n += 1  # phi
        if self.seasonal:
            n += 1  # gamma
        return n


def _run_recursion(
    y: np.ndarray,
    spec: _EtsSpec,
    alpha: float,
    beta: float,
    gamma: float,
    phi: float,
    level0: float,
    trend0: float,
    seasonal0: np.ndarray,
):
    """One pass of the smoothing recursion; returns (errors, final state).

    The recursion follows the standard error-correction form; seasonal
    indices rotate through a length-``period`` buffer.
    """
    n = y.size
    m = spec.period
    level = level0
    trend = trend0
    seas = seasonal0.copy()
    errors = np.empty(n)
    for t in range(n):
        damped_trend = phi * trend if spec.trend else 0.0
        s_idx = t % m if spec.seasonal else 0
        if spec.seasonal == "add":
            fitted = level + damped_trend + seas[s_idx]
        elif spec.seasonal == "mul":
            fitted = (level + damped_trend) * seas[s_idx]
        else:
            fitted = level + damped_trend
        err = y[t] - fitted
        errors[t] = err
        prev_level = level
        if spec.seasonal == "add":
            level = alpha * (y[t] - seas[s_idx]) + (1 - alpha) * (prev_level + damped_trend)
            seas[s_idx] = gamma * (y[t] - prev_level - damped_trend) + (1 - gamma) * seas[s_idx]
        elif spec.seasonal == "mul":
            denom = seas[s_idx] if abs(seas[s_idx]) > 1e-12 else 1e-12
            level = alpha * (y[t] / denom) + (1 - alpha) * (prev_level + damped_trend)
            base = prev_level + damped_trend
            seas[s_idx] = gamma * (y[t] / (base if abs(base) > 1e-12 else 1e-12)) + (1 - gamma) * seas[s_idx]
        else:
            level = alpha * y[t] + (1 - alpha) * (prev_level + damped_trend)
        if spec.trend:
            trend = beta * (level - prev_level) + (1 - beta) * damped_trend
    return errors, level, trend, seas


def _initial_state(y: np.ndarray, spec: _EtsSpec) -> tuple[float, float, np.ndarray]:
    """Heuristic initial level/trend/seasonal state (Hyndman-style)."""
    m = spec.period
    if spec.seasonal:
        first = y[:m]
        level0 = float(first.mean())
        if spec.trend and y.size >= 2 * m:
            second = y[m : 2 * m]
            trend0 = float((second.mean() - first.mean()) / m)
        else:
            trend0 = 0.0
        if spec.seasonal == "add":
            seasonal0 = first - level0
        else:
            base = level0 if abs(level0) > 1e-12 else 1e-12
            seasonal0 = first / base
    else:
        level0 = float(y[0])
        trend0 = float(y[1] - y[0]) if spec.trend and y.size > 1 else 0.0
        seasonal0 = np.zeros(max(m, 1)) if spec.seasonal != "mul" else np.ones(max(m, 1))
    return level0, trend0, np.asarray(seasonal0, dtype=float)


@dataclass
class FittedExpSmoothing(FittedModel):
    """A fitted exponential-smoothing model (SES / Holt / Holt–Winters)."""

    spec: _EtsSpec = field(default=None)
    alpha: float = 0.0
    beta: float = 0.0
    gamma: float = 0.0
    phi: float = 1.0
    level: float = 0.0
    trend: float = 0.0
    seasonal_state: np.ndarray = field(default=None, repr=False)
    family: str = "HES"

    def label(self) -> str:
        return self.family

    def _point_forecast(self, horizon: int) -> np.ndarray:
        m = self.spec.period
        out = np.empty(horizon)
        for h in range(1, horizon + 1):
            if self.spec.trend:
                if self.spec.damped:
                    damp_sum = sum(self.phi**j for j in range(1, h + 1))
                else:
                    damp_sum = float(h)
                base = self.level + damp_sum * self.trend
            else:
                base = self.level
            if self.spec.seasonal:
                # Seasonal buffer index continuing the training rotation.
                s_idx = (len(self.train) + h - 1) % m
                if self.spec.seasonal == "add":
                    base = base + self.seasonal_state[s_idx]
                else:
                    base = base * self.seasonal_state[s_idx]
            out[h - 1] = base
        return out

    def _forecast_std(self, horizon: int) -> np.ndarray:
        """Forecast standard deviations.

        Additive models use the closed-form cumulative-variance expressions;
        multiplicative seasonality falls back to a fixed-seed Gaussian
        simulation through the recursion (500 paths).
        """
        sigma = np.sqrt(self.sigma2)
        m = self.spec.period
        if self.spec.seasonal != "mul":
            c = np.zeros(horizon)  # c_j for j = 1..horizon-1 offset
            var = np.empty(horizon)
            acc = 0.0
            for h in range(1, horizon + 1):
                var[h - 1] = self.sigma2 * (1.0 + acc)
                # c_h term added for the *next* step.
                j = h
                cj = self.alpha
                if self.spec.trend:
                    if self.spec.damped:
                        cj += self.alpha * self.beta * sum(self.phi**i for i in range(1, j + 1))
                    else:
                        cj += self.alpha * self.beta * j
                if self.spec.seasonal == "add" and m > 1 and j % m == 0:
                    cj += self.gamma * (1 - self.alpha)
                acc += cj * cj
            return np.sqrt(var)
        # Multiplicative: simulate.
        rng = np.random.default_rng(1234)
        n_paths = 500
        sims = np.empty((n_paths, horizon))
        for i in range(n_paths):
            level, trend, seas = self.level, self.trend, self.seasonal_state.copy()
            for h in range(horizon):
                damped_trend = self.phi * trend if self.spec.trend else 0.0
                s_idx = (len(self.train) + h) % m
                point = (level + damped_trend) * seas[s_idx]
                value = point + rng.normal(0.0, sigma)
                prev_level = level
                denom = seas[s_idx] if abs(seas[s_idx]) > 1e-12 else 1e-12
                level = self.alpha * (value / denom) + (1 - self.alpha) * (prev_level + damped_trend)
                base = prev_level + damped_trend
                seas[s_idx] = self.gamma * (value / (base if abs(base) > 1e-12 else 1e-12)) + (
                    1 - self.gamma
                ) * seas[s_idx]
                if self.spec.trend:
                    trend = self.beta * (level - prev_level) + (1 - self.beta) * damped_trend
                sims[i, h] = value
        return sims.std(axis=0)

    def forecast(self, horizon: int, alpha: float = 0.05) -> Forecast:
        if horizon <= 0:
            raise ModelError(f"horizon must be positive, got {horizon}")
        mean = self._point_forecast(horizon)
        std = self._forecast_std(horizon)
        return self.make_forecast(mean, std, alpha)


class _EtsBase(ForecastModel):
    """Shared fitting machinery for the smoothing family."""

    _family = "HES"

    def _spec(self) -> _EtsSpec:
        raise NotImplementedError

    def _fixed_params(self) -> dict[str, float]:
        return {}

    @property
    def min_observations(self) -> int:
        spec = self._spec()
        if spec.seasonal:
            return 2 * spec.period + 1
        return 4

    def fit(self, series: TimeSeries, **kwargs) -> FittedExpSmoothing:
        if kwargs:
            raise ModelError(f"unexpected fit options: {sorted(kwargs)}")
        spec = self._spec()
        y = check_series(series, self.min_observations)
        level0, trend0, seasonal0 = _initial_state(y, spec)
        fixed = self._fixed_params()

        names = ["alpha"]
        if spec.trend:
            names.append("beta")
            if spec.damped:
                names.append("phi")
        if spec.seasonal:
            names.append("gamma")
        free = [n for n in names if n not in fixed]

        defaults = {"alpha": 0.3, "beta": 0.1, "gamma": 0.1, "phi": 0.97}

        def unpack(x: np.ndarray) -> dict[str, float]:
            params = dict(defaults)
            params.update(fixed)
            for name, value in zip(free, x):
                params[name] = float(value)
            if not spec.trend:
                params["beta"] = 0.0
                params["phi"] = 1.0
            elif not spec.damped:
                params["phi"] = 1.0
            if not spec.seasonal:
                params["gamma"] = 0.0
            return params

        def objective(x: np.ndarray) -> float:
            p = unpack(x)
            errors, *_ = _run_recursion(
                y, spec, p["alpha"], p["beta"], p["gamma"], p["phi"], level0, trend0, seasonal0
            )
            sse = float(errors @ errors)
            return sse if np.isfinite(sse) else 1e12

        if free:
            x0 = np.array([defaults[n] if n != "phi" else 0.97 for n in free])
            bounds = [(_PHI_BOUND if n == "phi" else _BOUND) for n in free]
            result = optimize.minimize(
                objective, x0, method="L-BFGS-B", bounds=bounds, options={"maxiter": 200}
            )
            if not np.isfinite(result.fun):
                raise ConvergenceError(f"{self._family} optimisation diverged")
            x_best = result.x
        else:
            x_best = np.empty(0)

        p = unpack(x_best)
        errors, level, trend, seas = _run_recursion(
            y, spec, p["alpha"], p["beta"], p["gamma"], p["phi"], level0, trend0, seasonal0
        )
        skip = spec.period if spec.seasonal else 1
        used = errors[skip:] if errors.size > skip else errors
        n_params = len(free) + 2 + (spec.period if spec.seasonal else 0)
        dof = max(1, used.size - len(free) - 1)
        sigma2 = float(used @ used) / dof
        return FittedExpSmoothing(
            train=series,
            residuals=errors,
            sigma2=sigma2,
            n_params=n_params,
            spec=spec,
            alpha=p["alpha"],
            beta=p["beta"],
            gamma=p["gamma"],
            phi=p["phi"],
            level=level,
            trend=trend,
            seasonal_state=seas,
            family=self._family,
        )


class SimpleExpSmoothing(_EtsBase):
    """Simple exponential smoothing — no trend, no seasonality.

    Suitable for stationary workloads; the single ``alpha`` controls how
    quickly old observations are forgotten.
    """

    _family = "SES"

    def __init__(self, alpha: float | None = None) -> None:
        if alpha is not None and not 0.0 < alpha < 1.0:
            raise ModelError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha

    def _spec(self) -> _EtsSpec:
        return _EtsSpec(trend=False, damped=False, seasonal=None, period=1)

    def _fixed_params(self) -> dict[str, float]:
        return {} if self.alpha is None else {"alpha": self.alpha}


class Holt(_EtsBase):
    """Holt's linear trend method, optionally damped.

    Handles workloads with drift but no stable seasonal pattern ("fixed
    drift" in the paper's Section 4.3 terminology).
    """

    _family = "HLT"

    def __init__(self, damped: bool = False) -> None:
        self.damped = bool(damped)

    def _spec(self) -> _EtsSpec:
        return _EtsSpec(trend=True, damped=self.damped, seasonal=None, period=1)


class HoltWinters(_EtsBase):
    """Holt–Winters seasonal exponential smoothing — the paper's **HES**.

    Parameters
    ----------
    period:
        Seasonal period (24 for hourly data with a daily cycle).
    seasonal:
        ``"add"`` for stable-amplitude cycles, ``"mul"`` when seasonal
        swings scale with the level (typical for growing OLTP workloads).
    trend:
        Include Holt's trend component (default True).
    damped:
        Damp the trend for long horizons.
    """

    _family = "HES"

    def __init__(
        self,
        period: int,
        seasonal: str = "add",
        trend: bool = True,
        damped: bool = False,
    ) -> None:
        if period < 2:
            raise ModelError(f"seasonal period must be >= 2, got {period}")
        if seasonal not in ("add", "mul"):
            raise ModelError(f"seasonal must be 'add' or 'mul', got {seasonal!r}")
        self.period = int(period)
        self.seasonal = seasonal
        self.trend = bool(trend)
        self.damped = bool(damped)
        if damped and not trend:
            raise ModelError("damped=True requires trend=True")

    def _spec(self) -> _EtsSpec:
        return _EtsSpec(
            trend=self.trend,
            damped=self.damped,
            seasonal=self.seasonal,
            period=self.period,
        )
