"""The fault plan: deterministic, seedable failure injection.

The paper's pipeline exists because real monitoring estates fail
constantly — "it is possible that the agent may have been at fault and may
not have executed or polled the value" (Section 5.1) — yet a reproduction
that only ever exercises the happy path proves nothing about the recovery
machinery. This module is the injection side of the fault plane: a
declarative :class:`FaultPlan` (which failures, where, how often) executed
by a :class:`FaultInjector` at named **hook points** threaded through the
runtime layers:

====================  =====================================================
site                  where the hook fires
====================  =====================================================
``agent.poll``        once per (instance, metric) poll attempt of the
                      monitoring agent — transient errors here model an
                      agent that could not execute its command
``agent.sample``      once per sample the agent records — drops,
                      duplicates, corrupt values, NaN bursts, clock skew
``repository.write``  once per repository write transaction — transient
                      ``sqlite3.OperationalError`` under lock contention
``ingest.deliver``    once per sample delivered to the streaming bus —
                      the network between agent and repository
``executor.submit``   once per task submitted to an engine executor —
                      worker crashes, slow calls, transient task errors
====================  =====================================================

Determinism is the contract: every site draws from its own RNG stream
derived from ``(plan.seed, site)``, so the same plan over the same input
produces byte-identical fault sequences — which is what lets the chaos CI
job assert survival reports byte for byte. An **empty plan injects
nothing**: every hook short-circuits before touching a counter or an RNG,
so behaviour with ``FaultPlan()`` is bit-for-bit identical to running with
no injector at all (asserted by the no-op parity tests).
"""

from __future__ import annotations

import dataclasses
import enum
import math
import zlib
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError

__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "KNOWN_SITES",
]

#: Hook points the runtime exposes; rules naming anything else are typos.
KNOWN_SITES = frozenset(
    {
        "agent.poll",
        "agent.sample",
        "repository.write",
        "ingest.deliver",
        "executor.submit",
    }
)


class InjectedFault(RuntimeError):
    """A deliberately injected transient failure.

    Deliberately *not* a :class:`~repro.exceptions.CapacityPlanningError`:
    injected faults simulate infrastructure failures (a dead agent
    command, a locked database), which the resilience policies must catch
    explicitly — they must never be absorbed by the library's ordinary
    data-error handling by accident.
    """


class FaultKind(enum.Enum):
    """What a firing rule does to the event it fires on."""

    #: Sample sites: the sample silently vanishes.
    DROP_SAMPLE = "drop_sample"
    #: Sample sites: the sample is delivered twice (agent retry).
    DUPLICATE_SAMPLE = "duplicate_sample"
    #: Sample sites: the value is scaled by ``param`` (default 1000×) —
    #: a garbage reading from a confused collector.
    CORRUPT_VALUE = "corrupt_value"
    #: Sample sites: this sample and the next ``param - 1`` become NaN.
    NAN_BURST = "nan_burst"
    #: Sample sites: the timestamp shifts by ``param`` seconds.
    CLOCK_SKEW = "clock_skew"
    #: Executor site: the task's result misses its deadline.
    SLOW_CALL = "slow_call"
    #: Executor site: the worker running the task dies.
    WORKER_CRASH = "worker_crash"
    #: Call sites: the call raises a transient, retryable error.
    TRANSIENT_ERROR = "transient_error"


#: Kinds that mutate individual samples (valid at sample sites).
_SAMPLE_KINDS = frozenset(
    {
        FaultKind.DROP_SAMPLE,
        FaultKind.DUPLICATE_SAMPLE,
        FaultKind.CORRUPT_VALUE,
        FaultKind.NAN_BURST,
        FaultKind.CLOCK_SKEW,
    }
)


@dataclass(frozen=True)
class FaultRule:
    """One failure mode at one hook point.

    Parameters
    ----------
    site:
        Hook point name (one of :data:`KNOWN_SITES`).
    kind:
        What happens when the rule fires.
    probability:
        Per-event chance of firing, drawn from the site's seeded RNG.
    every:
        Deterministic schedule: fire on every ``every``-th event at the
        site (counting from ``start``); ``0`` disables the schedule.
        ``every`` and ``probability`` compose — the rule fires when
        either triggers.
    start:
        First event index (0-based) at which the rule is eligible.
    limit:
        Maximum number of firings (``None`` = unlimited).
    param:
        Kind-specific magnitude: skew seconds for ``CLOCK_SKEW``, burst
        length for ``NAN_BURST``, scale factor for ``CORRUPT_VALUE``.
    """

    site: str
    kind: FaultKind
    probability: float = 0.0
    every: int = 0
    start: int = 0
    limit: int | None = None
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise DataError(
                f"unknown fault site {self.site!r}; known sites: {sorted(KNOWN_SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise DataError(f"probability must be in [0, 1], got {self.probability}")
        if self.every < 0:
            raise DataError(f"every must be >= 0, got {self.every}")
        if self.probability == 0.0 and self.every == 0:
            raise DataError("rule can never fire: set probability > 0 or every >= 1")
        if self.start < 0:
            raise DataError(f"start must be >= 0, got {self.start}")
        if self.limit is not None and self.limit < 1:
            raise DataError(f"limit must be >= 1, got {self.limit}")
        if not math.isfinite(self.param):
            raise DataError("param must be finite")


@dataclass(frozen=True)
class FaultPlan:
    """A seedable set of fault rules — the whole chaos experiment.

    An empty plan (the default) is the documented no-op: injectors built
    from it never fire, never draw randomness and never count anything.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise DataError(f"rules must be FaultRule instances, got {type(rule)}")

    @property
    def empty(self) -> bool:
        return not self.rules

    def for_site(self, site: str) -> tuple[tuple[int, FaultRule], ...]:
        """The plan's rules at one site, with stable rule ids."""
        return tuple((i, r) for i, r in enumerate(self.rules) if r.site == site)


def _site_rng(seed: int, site: str) -> np.random.Generator:
    """One RNG stream per (plan seed, site) — sites never share draws."""
    return np.random.default_rng([int(seed) & 0xFFFFFFFF, zlib.crc32(site.encode())])


class FaultInjector:
    """Executes a :class:`FaultPlan` at the runtime's hook points.

    One injector is shared by every layer of a chaos run (agent, bus,
    repository, executor); each site keeps its own event counter and RNG
    stream so the layers cannot perturb each other's fault sequences.
    ``counters`` accumulates one entry per fault kind injected (plus
    ``faults_injected`` in total) and flows into the
    :class:`~repro.engine.telemetry.RunTrace` ``faults`` block.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.counters: dict[str, int] = {}
        self._events: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._rngs: dict[str, np.random.Generator] = {}
        self._nan_remaining: dict[str, int] = {}
        self._site_rules = {
            site: self.plan.for_site(site)
            for site in {rule.site for rule in self.plan.rules}
        }

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """False for an empty plan — every hook then short-circuits."""
        return not self.plan.empty

    def active_at(self, site: str) -> bool:
        """Whether the plan has any rule at ``site``.

        Callers with a batched fast path (the bus's columnar intake)
        check this before paying per-sample hook dispatch: a plan that
        only targets, say, ``executor.submit`` must not force ingest
        back onto the one-sample-at-a-time road. Skipping the hook for
        an inactive site is observationally safe — :meth:`_fire` on such
        a site fires nothing and leaves every counter and RNG stream
        untouched.
        """
        return site in self._site_rules

    def _count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def _record(self, site: str, kind: FaultKind) -> None:
        self._count("faults_injected")
        self._count(f"fault_{kind.value}")

    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = _site_rng(self.plan.seed, site)
        return rng

    def _fire(self, site: str) -> list[FaultRule]:
        """Advance the site's event counter; return the rules that fire.

        Every probabilistic rule draws exactly once per event regardless
        of whether its deterministic schedule already hit, so the RNG
        stream consumption — and therefore every later draw — depends
        only on the event count, never on earlier outcomes.
        """
        rules = self._site_rules.get(site)
        if not rules:
            return []
        idx = self._events.get(site, 0)
        self._events[site] = idx + 1
        fired: list[FaultRule] = []
        for rid, rule in rules:
            draw = self._rng(site).random() if rule.probability > 0.0 else 1.0
            if idx < rule.start:
                continue
            if rule.limit is not None and self._fired.get(rid, 0) >= rule.limit:
                continue
            hit = bool(rule.every) and (idx - rule.start) % rule.every == 0
            if not hit:
                hit = draw < rule.probability
            if hit:
                self._fired[rid] = self._fired.get(rid, 0) + 1
                fired.append(rule)
        return fired

    # ------------------------------------------------------------------
    # Hook-point API
    # ------------------------------------------------------------------
    def on_sample(self, site: str, sample):
        """Mangle one :class:`~repro.agent.agent.AgentSample` in flight.

        Returns the delivered samples: ``[]`` for a drop, two copies for
        a duplicate, otherwise one (possibly skewed/corrupted) sample.
        """
        if not self.active:
            return [sample]
        value = float(sample.value)
        timestamp = float(sample.timestamp)
        mutated = False
        burst = self._nan_remaining.get(site, 0)
        if burst > 0:
            self._nan_remaining[site] = burst - 1
            value = float("nan")
            mutated = True
            self._count("fault_nan_burst_samples")
        drop = False
        duplicate = False
        for rule in self._fire(site):
            if rule.kind not in _SAMPLE_KINDS:
                continue
            self._record(site, rule.kind)
            if rule.kind is FaultKind.DROP_SAMPLE:
                drop = True
            elif rule.kind is FaultKind.DUPLICATE_SAMPLE:
                duplicate = True
            elif rule.kind is FaultKind.CORRUPT_VALUE:
                value *= rule.param if rule.param else 1000.0
                mutated = True
            elif rule.kind is FaultKind.NAN_BURST:
                self._nan_remaining[site] = max(int(rule.param), 1) - 1
                value = float("nan")
                mutated = True
                self._count("fault_nan_burst_samples")
            elif rule.kind is FaultKind.CLOCK_SKEW:
                timestamp += rule.param
                mutated = True
        if drop:
            return []
        if mutated:
            sample = dataclasses.replace(sample, value=value, timestamp=timestamp)
        return [sample, sample] if duplicate else [sample]

    def check_call(self, site: str, make_error=None) -> None:
        """Fire call-level rules at ``site``; raise on a transient error.

        ``make_error`` builds the exception realistic for the layer (the
        repository raises ``sqlite3.OperationalError``, the agent a
        :class:`InjectedFault`); ``None`` defaults to
        :class:`InjectedFault`.
        """
        if not self.active:
            return
        for rule in self._fire(site):
            if rule.kind is FaultKind.TRANSIENT_ERROR:
                self._record(site, rule.kind)
                exc = make_error() if make_error is not None else None
                raise exc if exc is not None else InjectedFault(
                    f"injected transient error at {site}"
                )

    def task_outcome(self, site: str = "executor.submit") -> str | None:
        """Executor hook: the injected fate of the next submitted task.

        Returns ``"crash"`` (worker died), ``"slow"`` (deadline missed),
        ``"error"`` (transient task failure) or ``None`` (run normally).
        """
        if not self.active:
            return None
        outcome = None
        for rule in self._fire(site):
            if rule.kind is FaultKind.WORKER_CRASH:
                self._record(site, rule.kind)
                outcome = outcome or "crash"
            elif rule.kind is FaultKind.SLOW_CALL:
                self._record(site, rule.kind)
                outcome = outcome or "slow"
            elif rule.kind is FaultKind.TRANSIENT_ERROR:
                self._record(site, rule.kind)
                outcome = outcome or "error"
        return outcome
