"""Debounced breach alerting: advisories in, operator events out.

The paper pitches forecasting as the cure for "the 'old' threshold-based
monitoring approach, that often led to a reactive way of working" — but a
live stream that pages an operator every time one advisory tick grazes a
threshold has merely invented a new way to be noisy. :class:`AlertManager`
sits between the scheduler's per-tick
:class:`~repro.service.thresholds.BreachPrediction` stream and the humans:

* an alert **raises** only after ``raise_after`` consecutive breaching
  ticks (debounce — one flappy forecast does not page);
* while an alert is active, a *more* certain grade (POSSIBLE → LIKELY →
  CERTAIN) **escalates immediately** — rising urgency must not be
  debounced away — while a less certain (but still breaching) grade just
  updates the state silently;
* the alert **recovers** only after ``recover_after`` consecutive
  breach-free ticks, so a forecast oscillating around the threshold
  cannot flap the pager.

Events flow to a pluggable :class:`AlertSink`; :class:`ListSink` records
for tests and :class:`ConsoleSink` prints for the CLI demo.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, TextIO, runtime_checkable

from ..exceptions import DataError
from ..service.estate import WorkloadKey
from ..service.thresholds import BreachPrediction, BreachSeverity
from .clock import Clock

__all__ = [
    "AlertKind",
    "AlertEvent",
    "AlertSink",
    "ListSink",
    "ConsoleSink",
    "AlertManager",
]

#: Certainty ordering used for escalation decisions.
_SEVERITY_RANK = {
    BreachSeverity.NONE: 0,
    BreachSeverity.POSSIBLE: 1,
    BreachSeverity.LIKELY: 2,
    BreachSeverity.CERTAIN: 3,
}


class AlertKind(enum.Enum):
    """Lifecycle stage an alert event reports."""

    RAISED = "raised"
    ESCALATED = "escalated"
    RECOVERED = "recovered"


@dataclass(frozen=True)
class AlertEvent:
    """One operator-facing alert transition."""

    kind: AlertKind
    key: WorkloadKey
    severity: BreachSeverity
    previous: BreachSeverity
    at: float
    advisory: BreachPrediction

    def describe(self) -> str:
        if self.kind is AlertKind.RECOVERED:
            return f"[{self.at:.0f}s] RECOVERED {self.key} (was {self.previous.name})"
        return (
            f"[{self.at:.0f}s] {self.kind.value.upper()} {self.key} "
            f"{self.severity.name}: {self.advisory.describe()}"
        )


@runtime_checkable
class AlertSink(Protocol):
    """Anywhere alert events can land (pager, log, test list...)."""

    def emit(self, event: AlertEvent) -> None:  # pragma: no cover - protocol
        ...


class ListSink:
    """Records events in order; the test suite's sink."""

    def __init__(self) -> None:
        self.events: list[AlertEvent] = []

    def emit(self, event: AlertEvent) -> None:
        self.events.append(event)


class ConsoleSink:
    """Prints events as they happen; the CLI demo's sink."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream

    def emit(self, event: AlertEvent) -> None:
        print(event.describe(), file=self.stream)


@dataclass
class _AlertState:
    """Debounce bookkeeping for one workload key."""

    active: BreachSeverity | None = None
    breach_streak: int = 0
    clear_streak: int = 0
    #: Most certain grade seen during the current breach streak, so the
    #: raised alert carries the streak's peak severity, not just the
    #: latest tick's.
    peak: BreachSeverity = BreachSeverity.NONE
    peak_advisory: BreachPrediction | None = field(default=None, repr=False)


class AlertManager:
    """Turns per-tick advisories into debounced alert transitions.

    Parameters
    ----------
    sink:
        Where events go; defaults to a fresh :class:`ListSink` (exposed
        as ``manager.sink``).
    raise_after:
        Consecutive breaching ticks required before an alert raises.
    recover_after:
        Consecutive breach-free ticks required before an active alert
        recovers.
    clock:
        Fallback time source when :meth:`observe` is not given ``at``.
    """

    def __init__(
        self,
        sink: AlertSink | None = None,
        raise_after: int = 2,
        recover_after: int = 2,
        clock: Clock | None = None,
    ) -> None:
        if raise_after < 1 or recover_after < 1:
            raise DataError("raise_after and recover_after must be at least 1")
        self.sink = sink if sink is not None else ListSink()
        self.raise_after = int(raise_after)
        self.recover_after = int(recover_after)
        self.clock = clock
        self._states: dict[WorkloadKey, _AlertState] = {}
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def _emit(self, event: AlertEvent) -> AlertEvent:
        self.sink.emit(event)
        self._count(f"alerts_{event.kind.value}")
        return event

    def evict(self, key: WorkloadKey) -> None:
        """Drop a key's debounce state (shard rebalance migration).

        No RECOVERED event is emitted — the alert is not resolving, its
        key is moving shards; the receiving shard rebuilds streaks from
        its own first observation.
        """
        self._states.pop(key, None)

    def active_alerts(self) -> dict[WorkloadKey, BreachSeverity]:
        """Currently raised alerts by key."""
        return {
            key: state.active
            for key, state in sorted(self._states.items())
            if state.active is not None
        }

    # ------------------------------------------------------------------
    def observe(
        self,
        key: WorkloadKey,
        advisory: BreachPrediction,
        at: float | None = None,
    ) -> AlertEvent | None:
        """Feed one advisory tick; returns the transition it caused, if any."""
        if at is None:
            if self.clock is None:
                raise DataError("observe needs `at` when no clock is configured")
            at = self.clock.now()
        state = self._states.setdefault(key, _AlertState())
        severity = advisory.severity
        breaching = severity is not BreachSeverity.NONE

        if breaching:
            state.clear_streak = 0
            state.breach_streak += 1
            if _SEVERITY_RANK[severity] >= _SEVERITY_RANK[state.peak]:
                state.peak = severity
                state.peak_advisory = advisory
            if state.active is None:
                if state.breach_streak >= self.raise_after:
                    state.active = state.peak
                    return self._emit(
                        AlertEvent(
                            kind=AlertKind.RAISED,
                            key=key,
                            severity=state.peak,
                            previous=BreachSeverity.NONE,
                            at=float(at),
                            advisory=state.peak_advisory or advisory,
                        )
                    )
                self._count("alerts_debounced")
                return None
            if _SEVERITY_RANK[severity] > _SEVERITY_RANK[state.active]:
                previous = state.active
                state.active = severity
                return self._emit(
                    AlertEvent(
                        kind=AlertKind.ESCALATED,
                        key=key,
                        severity=severity,
                        previous=previous,
                        at=float(at),
                        advisory=advisory,
                    )
                )
            self._count("alerts_suppressed")
            return None

        # Breach-free tick.
        state.breach_streak = 0
        state.peak = BreachSeverity.NONE
        state.peak_advisory = None
        if state.active is None:
            return None
        state.clear_streak += 1
        if state.clear_streak < self.recover_after:
            self._count("alerts_recovery_pending")
            return None
        previous = state.active
        state.active = None
        state.clear_streak = 0
        return self._emit(
            AlertEvent(
                kind=AlertKind.RECOVERED,
                key=key,
                severity=BreachSeverity.NONE,
                previous=previous,
                at=float(at),
                advisory=advisory,
            )
        )
