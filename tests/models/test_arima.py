"""Tests for the ARIMA/SARIMA CSS estimator."""

import numpy as np
import pytest

from repro.core import Frequency, TimeSeries, rmse
from repro.exceptions import DataError, ModelError
from repro.models import Arima, ArimaOrder, SeasonalOrder


def simulate_arma(phi=(), theta=(), n=2000, seed=0, mu=0.0):
    rng = np.random.default_rng(seed)
    p, q = len(phi), len(theta)
    burn = 300
    e = rng.normal(0, 1, n + burn)
    x = np.zeros(n + burn)
    for t in range(max(p, q), n + burn):
        x[t] = (
            sum(phi[i] * x[t - 1 - i] for i in range(p))
            + e[t]
            + sum(theta[j] * e[t - 1 - j] for j in range(q))
        )
    return x[burn:] + mu


class TestOrders:
    def test_arima_order_validation(self):
        with pytest.raises(ModelError):
            ArimaOrder(-1, 0, 0)
        with pytest.raises(ModelError):
            ArimaOrder(1, 3, 0)

    def test_seasonal_order_validation(self):
        with pytest.raises(ModelError):
            SeasonalOrder(1, 0, 0, 1)  # seasonal terms need F >= 2
        with pytest.raises(ModelError):
            SeasonalOrder(0, 3, 0, 24)

    def test_null_seasonal(self):
        assert SeasonalOrder(0, 0, 0, 1).is_null
        assert not SeasonalOrder(1, 0, 0, 24).is_null

    def test_str_formats(self):
        assert str(ArimaOrder(2, 1, 1)) == "(2,1,1)"
        assert str(SeasonalOrder(1, 1, 1, 24)) == "(1,1,1,24)"

    def test_model_trend_validation(self):
        with pytest.raises(ModelError):
            Arima((1, 0, 0), trend="x")

    def test_fit_rejects_unknown_kwargs(self):
        with pytest.raises(ModelError):
            Arima((1, 0, 0)).fit(TimeSeries(np.random.default_rng(0).normal(size=100)), bogus=1)


class TestParameterRecovery:
    def test_ar1(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.7,))))
        assert fit.coeffs[0] == pytest.approx(0.7, abs=0.06)

    def test_ar2(self):
        fit = Arima((2, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.5, 0.3), seed=1)))
        assert fit.coeffs[0] == pytest.approx(0.5, abs=0.08)
        assert fit.coeffs[1] == pytest.approx(0.3, abs=0.08)

    def test_ma1(self):
        fit = Arima((0, 0, 1)).fit(TimeSeries(simulate_arma(theta=(0.6,), seed=2)))
        assert fit.coeffs[0] == pytest.approx(0.6, abs=0.08)

    def test_arma11(self):
        fit = Arima((1, 0, 1)).fit(TimeSeries(simulate_arma(phi=(0.6,), theta=(0.3,), seed=3)))
        assert fit.coeffs[0] == pytest.approx(0.6, abs=0.1)
        assert fit.coeffs[1] == pytest.approx(0.3, abs=0.12)

    def test_mean_recovered(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.5,), mu=50.0, seed=4)))
        assert fit.intercept == pytest.approx(50.0, abs=1.0)

    def test_sigma2_recovered(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.5,), seed=5)))
        assert fit.sigma2 == pytest.approx(1.0, abs=0.12)

    def test_integrated_series(self):
        walk = np.cumsum(simulate_arma(phi=(0.4,), seed=6)) + 100
        fit = Arima((1, 1, 0)).fit(TimeSeries(walk))
        assert fit.coeffs[0] == pytest.approx(0.4, abs=0.08)


class TestStationarityEnforcement:
    def test_estimates_stay_stationary_on_trending_data(self):
        t = np.arange(500.0)
        rng = np.random.default_rng(7)
        y = 5 * t + rng.normal(0, 1, 500)
        fit = Arima((2, 0, 1), trend="c").fit(TimeSeries(y))
        from repro.models.polynomials import ar_poly, min_root_modulus

        assert min_root_modulus(ar_poly(fit.coeffs[:2])) > 1.0


class TestForecast:
    def test_ar1_forecast_decays_to_mean(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.8,), mu=10.0, seed=8)))
        fc = fit.forecast(50)
        assert fc.mean.values[-1] == pytest.approx(10.0, abs=0.8)

    def test_interval_widens(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.6,), seed=9)))
        fc = fit.forecast(20)
        widths = fc.upper.values - fc.lower.values
        assert np.all(np.diff(widths) >= -1e-9)

    def test_interval_contains_mean(self):
        fit = Arima((1, 0, 1)).fit(TimeSeries(simulate_arma(phi=(0.5,), theta=(0.2,), seed=10)))
        fc = fit.forecast(10)
        assert np.all(fc.lower.values <= fc.mean.values)
        assert np.all(fc.mean.values <= fc.upper.values)

    def test_alpha_changes_width(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.5,), seed=11)))
        narrow = fit.forecast(5, alpha=0.2)
        wide = fit.forecast(5, alpha=0.01)
        assert np.all(
            (wide.upper.values - wide.lower.values)
            > (narrow.upper.values - narrow.lower.values)
        )

    def test_forecast_clock_continues(self):
        ts = TimeSeries(simulate_arma(phi=(0.5,), seed=12)[:200], Frequency.HOURLY, start=1000.0)
        fc = Arima((1, 0, 0)).fit(ts).forecast(5)
        assert fc.mean.start == ts.end + 3600.0

    def test_random_walk_interval_sqrt_growth(self):
        rng = np.random.default_rng(13)
        walk = np.cumsum(rng.normal(0, 1, 1000))
        fit = Arima((0, 1, 0)).fit(TimeSeries(walk))
        fc = fit.forecast(16)
        widths = fc.upper.values - fc.lower.values
        assert widths[15] / widths[3] == pytest.approx(2.0, rel=0.05)  # sqrt(16/4)

    def test_invalid_horizon(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.5,), seed=14)))
        with pytest.raises(ModelError):
            fit.forecast(0)


class TestSeasonal:
    def test_seasonal_pattern_forecast(self, daily_series):
        train, test = daily_series.split(len(daily_series) - 24)
        fit = Arima((1, 0, 0), seasonal=(0, 1, 1, 24)).fit(train)
        fc = fit.forecast(24)
        assert rmse(test, fc.mean) < 2.5  # noise sigma is 1

    def test_seasonal_beats_nonseasonal(self, daily_series):
        train, test = daily_series.split(len(daily_series) - 24)
        plain = Arima((2, 1, 1)).fit(train).forecast(24)
        seasonal = Arima((2, 1, 1), seasonal=(1, 1, 1, 24)).fit(train).forecast(24)
        assert rmse(test, seasonal.mean) < rmse(test, plain.mean)

    def test_trend_plus_seasonal(self, trending_series):
        train, test = trending_series.split(len(trending_series) - 24)
        fit = Arima((1, 1, 1), seasonal=(0, 1, 1, 24)).fit(train)
        fc = fit.forecast(24)
        # The forecast must keep climbing with the trend (0.1/hour).
        assert fc.mean.values[-1] > train.values[-24:].mean()
        assert rmse(test, fc.mean) < 6.0

    def test_label(self):
        fit = Arima((1, 0, 0), seasonal=(1, 1, 1, 24)).fit(
            TimeSeries(simulate_arma(phi=(0.5,), seed=15)[:400])
        )
        assert fit.label() == "SARIMAX (1,0,0)(1,1,1,24)"

    def test_plain_label(self):
        fit = Arima((1, 0, 0)).fit(TimeSeries(simulate_arma(phi=(0.5,), seed=16)[:300]))
        assert fit.label() == "ARIMA (1,0,0)"


class TestEdgeCases:
    def test_constant_series(self):
        fit = Arima((1, 1, 0), trend="n").fit(TimeSeries(np.full(100, 42.0)))
        fc = fit.forecast(5)
        assert np.allclose(fc.mean.values, 42.0)

    def test_white_noise_near_zero_coeffs(self, white_noise):
        fit = Arima((1, 0, 1)).fit(white_noise)
        fc = fit.forecast(5)
        assert np.all(np.abs(fc.mean.values - white_noise.values.mean()) < 1.0)

    def test_rejects_missing_values(self):
        values = simulate_arma(phi=(0.5,), seed=17)[:100]
        values[5] = np.nan
        with pytest.raises(DataError):
            Arima((1, 0, 0)).fit(TimeSeries(values))

    def test_rejects_too_short(self):
        with pytest.raises(DataError):
            Arima((2, 0, 2), seasonal=(1, 1, 1, 24)).fit(TimeSeries(np.arange(20.0)))

    def test_aic_bic_finite(self):
        fit = Arima((1, 0, 1)).fit(TimeSeries(simulate_arma(phi=(0.5,), theta=(0.2,), seed=18)))
        assert np.isfinite(fit.aic)
        assert np.isfinite(fit.bic)
        assert fit.bic > fit.aic  # n large → BIC penalty exceeds AIC's

    def test_zero_order_model(self):
        fit = Arima((0, 0, 0)).fit(TimeSeries(simulate_arma(seed=19)[:200]))
        fc = fit.forecast(3)
        assert np.isfinite(fc.mean.values).all()


class TestBootstrapIntervals:
    def _fit(self, seed=20, skewed=False):
        rng = np.random.default_rng(seed)
        n = 800
        e = rng.exponential(1.0, n) - 1.0 if skewed else rng.normal(0, 1, n)
        y = np.zeros(n)
        for t in range(1, n):
            y[t] = 0.6 * y[t - 1] + e[t]
        return Arima((1, 0, 0)).fit(TimeSeries(y + 50))

    def test_bootstrap_close_to_analytic_for_gaussian(self):
        fit = self._fit()
        analytic = fit.forecast(12, intervals="analytic")
        boot = fit.forecast(12, intervals="bootstrap")
        width_a = analytic.upper.values - analytic.lower.values
        width_b = boot.upper.values - boot.lower.values
        assert np.allclose(width_b, width_a, rtol=0.25)

    def test_bootstrap_asymmetric_for_skewed_noise(self):
        fit = self._fit(skewed=True)
        boot = fit.forecast(6, intervals="bootstrap")
        up = boot.upper.values - boot.mean.values
        down = boot.mean.values - boot.lower.values
        # Exponential shocks: long right tail → wider upper band.
        assert up.mean() > down.mean() * 1.1

    def test_bands_ordered_and_deterministic(self):
        fit = self._fit()
        a = fit.forecast(8, intervals="bootstrap")
        b = fit.forecast(8, intervals="bootstrap")
        assert np.array_equal(a.lower.values, b.lower.values)
        assert np.all(a.lower.values <= a.mean.values)
        assert np.all(a.mean.values <= a.upper.values)

    def test_validation(self):
        fit = self._fit()
        with pytest.raises(ModelError):
            fit.forecast(5, intervals="magic")
        with pytest.raises(ModelError):
            fit.forecast(5, intervals="bootstrap", n_paths=10)
