"""Task executors: the engine's parallel substrate.

The paper scales model selection to "1000's of workloads" because "gains
are also achieved by parallel processing the models" (Section 8). This
module provides the execution layer that makes those gains reusable
across the codebase instead of being re-implemented (and a process pool
re-spawned) at every grid call:

* :class:`SerialExecutor` — runs tasks in-process, in order. The
  reference implementation: every parallel path must produce identical
  results to it.
* :class:`PoolExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  wrapper whose worker pool is created lazily on first use and **reused**
  across calls. Spawning workers costs ~100 ms each plus a fresh import
  of numpy/scipy; amortising that across the hundreds of
  ``evaluate_grid`` calls an estate report makes is where the wall-clock
  win lives. Supports configurable chunking and per-task timeout.

Both executors implement one method, :meth:`Executor.run`, which never
raises for a task failure: every task yields a :class:`TaskReport`
carrying either the value or the captured error, plus its duration and
the worker that ran it (food for :mod:`repro.engine.telemetry`).

Both executors also implement a **broadcast data plane**. A grid sweep
scores hundreds of ~100-byte candidate specs against one shared
``(train, test, shock_matrix, shock_future)`` bundle; shipping that
bundle inside every task tuple pickles the same arrays hundreds of times
per sweep. :meth:`Executor.broadcast` ships the bundle once per
(executor, content-fingerprint) and returns a tiny :class:`PayloadRef`;
tasks carry only the ref, and workers resolve it through a per-process
registry (:func:`resolve_payload`) that caches the deserialised bundle
until LRU eviction. Broken-pool recovery is transparent: the broadcast
spill file outlives the pool, so replacement workers simply re-read it.

``default_executor(n_jobs)`` maps the long-standing ``n_jobs`` knob onto
a process-wide cache of shared executors, so code that still talks in
``n_jobs`` transparently shares one pool per worker count (and per
chunking/timeout configuration).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..exceptions import DataError

__all__ = [
    "TaskReport",
    "CohortSpec",
    "PayloadRef",
    "ExecutionPolicy",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "resolve_payload",
    "serialized_size",
    "default_executor",
    "shutdown_default_executors",
]


@dataclass(frozen=True)
class ExecutionPolicy:
    """Resilience policy of an executor — what happens when tasks fail.

    The broken-pool recovery that used to be hard-wired into
    :class:`PoolExecutor` is generalised here, joined by bounded re-try
    of failed tasks (the gap the fault plane's ``executor.submit``
    injection exposed: one transient worker error permanently failed its
    workload even though a second attempt would have succeeded).

    Parameters
    ----------
    task_retries:
        How many extra rounds failed tasks are re-submitted for (``0``
        preserves the historical fail-fast behaviour). Tasks that
        succeeded are never re-run; each retry round re-submits only the
        still-failed ones.
    retry_timed_out:
        Whether timed-out tasks are eligible for retry. Off by default:
        a task that blew its deadline once usually will again, and its
        worker may still be busy with the abandoned attempt.
    rebuild_broken_pool:
        Replace the worker pool transparently when a worker dies hard
        (the pre-policy behaviour). ``False`` propagates the
        :class:`~concurrent.futures.process.BrokenProcessPool` instead —
        for callers that prefer to crash loudly.
    """

    task_retries: int = 0
    retry_timed_out: bool = False
    rebuild_broken_pool: bool = True

    def __post_init__(self) -> None:
        if self.task_retries < 0:
            raise DataError(f"task_retries must be >= 0, got {self.task_retries}")


@dataclass(frozen=True)
class TaskReport:
    """What happened to one submitted task.

    Attributes
    ----------
    index:
        Position of the task in the submitted sequence (results are
        always returned in submission order).
    value:
        The task's return value, or ``None`` when it failed or timed out.
    error:
        Captured failure description (empty string on success).
    seconds:
        Wall-clock duration of the task body. Zero for timed-out tasks,
        whose true duration is unknown to the parent.
    worker:
        Identifier of the worker that ran the task (``"serial"`` or the
        worker process PID).
    timed_out:
        True when the task exceeded the executor's deadline. The worker
        process is *not* killed — the result is abandoned, not the
        computation — so a timed-out task may still occupy its worker
        until it finishes.
    """

    index: int
    value: object
    error: str = ""
    seconds: float = 0.0
    worker: str = "serial"
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.error and not self.timed_out


@dataclass(frozen=True)
class CohortSpec:
    """One batched unit of work: a model family, its member keys, one payload.

    The cohort is the scheduling currency of batched dispatch: N keys
    whose per-key tasks collapsed into a single structure-of-arrays
    kernel call. ``payload`` is whatever the task function needs to run
    the whole cohort — typically a :class:`PayloadRef` from
    :meth:`Executor.broadcast` (the zero-copy data plane applies
    unchanged: one broadcast per cohort instead of one per key) plus
    per-row parameter arrays.
    """

    family: str
    keys: tuple
    payload: object = None

    def __post_init__(self) -> None:
        if not self.keys:
            raise DataError("a cohort needs at least one key")


# ---------------------------------------------------------------------------
# Broadcast data plane
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PayloadRef:
    """Handle to a broadcast payload — what tasks carry instead of data.

    Attributes
    ----------
    key:
        Content fingerprint (SHA-1 of the pickled payload). Identical
        payloads broadcast twice share one key, one spill file and one
        per-worker registry slot.
    path:
        Spill file holding the pickled payload for cross-process
        transport; ``None`` for in-process (serial) broadcasts, which
        live only in the parent's registry.
    nbytes:
        Serialized payload size — the bytes the broadcast moved *once*
        instead of once per task.
    """

    key: str
    path: str | None = None
    nbytes: int = 0


#: Per-process payload registry: key → deserialised payload, LRU order.
#: Lives at module level so pool workers (which import this module) and
#: the serial executor share one resolution path.
_PAYLOAD_REGISTRY: OrderedDict[str, object] = OrderedDict()

#: How many distinct payloads a worker keeps before evicting the least
#: recently used. Eight comfortably covers one estate worker cycling
#: through a handful of series; raise it for unusual fan-in patterns.
PAYLOAD_REGISTRY_CAPACITY = 8

_MISSING = object()


def _install_payload(key: str, payload: object) -> None:
    """Cache a payload in this process's registry, evicting LRU overflow."""
    _PAYLOAD_REGISTRY[key] = payload
    _PAYLOAD_REGISTRY.move_to_end(key)
    while len(_PAYLOAD_REGISTRY) > PAYLOAD_REGISTRY_CAPACITY:
        _PAYLOAD_REGISTRY.popitem(last=False)


def resolve_payload(ref: PayloadRef) -> object:
    """Fetch a broadcast payload in the current process.

    Registry hit: free. Miss: the payload is loaded from the spill file
    and cached, so each worker deserialises a given payload at most once
    per (pool, fingerprint) — re-reads only happen after LRU eviction or
    when a replacement worker joins a recovered pool.
    """
    payload = _PAYLOAD_REGISTRY.get(ref.key, _MISSING)
    if payload is not _MISSING:
        _PAYLOAD_REGISTRY.move_to_end(ref.key)
        return payload
    if ref.path is None:
        raise DataError(
            f"payload {ref.key[:12]} is not in this process's registry and "
            "has no spill file (serial broadcasts cannot cross processes)"
        )
    try:
        with open(ref.path, "rb") as fh:
            payload = pickle.load(fh)
    except OSError as exc:
        raise DataError(f"payload spill file unreadable: {exc}") from exc
    _install_payload(ref.key, payload)
    return payload


def payload_registry_keys() -> list[str]:
    """Fingerprints currently cached in this process (MRU last)."""
    return list(_PAYLOAD_REGISTRY)


def serialized_size(obj: object) -> int:
    """Pickled size of ``obj`` — the bytes one task dispatch would ship."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _run_captured(fn: Callable, task, index: int) -> TaskReport:
    """Execute one task, converting any exception into a report.

    Runs inside the worker process for :class:`PoolExecutor` (must stay
    module-level picklable) and inline for :class:`SerialExecutor`.
    """
    worker = str(os.getpid())
    started = time.perf_counter()
    try:
        value = fn(task)
    except Exception as exc:  # capture, never propagate out of a worker
        return TaskReport(
            index=index,
            value=None,
            error=f"{type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - started,
            worker=worker,
        )
    return TaskReport(
        index=index,
        value=value,
        seconds=time.perf_counter() - started,
        worker=worker,
    )


#: Last kernel-counter snapshot this worker reported back to the parent.
#: ``None`` means "never reported": the first chunk then ships the whole
#: process history, which is what charges pool-init warm-compilation to
#: the run that created the pool instead of losing it.
_KERNEL_REPORTED: dict[str, float] | None = None


def _pool_worker_init() -> None:
    """Pool-worker initializer: JIT-compile every kernel before the first task."""
    from . import kernels as engine_kernels

    engine_kernels.warm_worker_init()


def _drain_worker_kernel_delta() -> dict[str, float]:
    """Kernel-counter movement in this worker since its last report."""
    global _KERNEL_REPORTED
    from . import kernels as engine_kernels

    now = engine_kernels.snapshot()
    if _KERNEL_REPORTED is None:
        moved = {key: value for key, value in now.items() if value}
    else:
        moved = engine_kernels.delta(_KERNEL_REPORTED, now)
    _KERNEL_REPORTED = now
    return moved


def _run_chunk(
    fn: Callable, chunk: list[tuple[int, object]]
) -> tuple[list[TaskReport], dict[str, float]]:
    """Worker-side entry point: run one chunk of (index, task) pairs.

    Returns the task reports plus this worker's kernel-counter delta, so
    compiled-kernel telemetry rides the existing result channel instead
    of needing a second IPC round.
    """
    reports = [_run_captured(fn, task, index) for index, task in chunk]
    return reports, _drain_worker_kernel_delta()


class Executor:
    """Interface shared by :class:`SerialExecutor` and :class:`PoolExecutor`.

    :meth:`run` is a template method: it applies fault injection (when an
    injector is attached), delegates the surviving tasks to the
    subclass's :meth:`_execute`, then applies the
    :class:`ExecutionPolicy`'s bounded retry to whatever failed.
    Subclasses only implement :meth:`_execute` over ``(index, task)``
    pairs; reports may come back in any order.
    """

    #: Resilience policy; ``None`` means fail-fast (historical behaviour).
    policy: ExecutionPolicy | None = None
    #: Fault injector for the ``executor.submit`` hook point; ``None``
    #: (or an injector with an empty plan) makes :meth:`run` behave
    #: bit-for-bit as if the hook did not exist.
    injector = None

    def _fault_count(self, key: str, n: int = 1) -> None:
        counters = getattr(self, "fault_counters", None)
        if counters is None:
            counters = self.fault_counters = {}
        counters[key] = counters.get(key, 0) + n

    def _execute(self, fn: Callable, pairs: list[tuple[int, object]]) -> list[TaskReport]:
        """Run ``fn`` over ``(index, task)`` pairs; any report order."""
        raise NotImplementedError

    def _partition_injected(
        self, pairs: list[tuple[int, object]]
    ) -> tuple[list[tuple[int, object]], dict[int, TaskReport]]:
        """Ask the injector about each task; fabricate reports for victims.

        Injected outcomes become synthetic :class:`TaskReport`s attributed
        to worker ``"chaos"`` — a crash reads like a dead worker, a slow
        call like a missed deadline, an error like a transient task
        failure — so downstream telemetry and retry treat them exactly
        like the real thing.
        """
        injector = getattr(self, "injector", None)
        if injector is None or not getattr(injector, "active", False):
            return pairs, {}
        live: list[tuple[int, object]] = []
        injected: dict[int, TaskReport] = {}
        for index, task in pairs:
            outcome = injector.task_outcome("executor.submit")
            if outcome is None:
                live.append((index, task))
            elif outcome == "crash":
                injected[index] = TaskReport(
                    index=index, value=None,
                    error="injected fault: worker died", worker="chaos",
                )
            elif outcome == "slow":
                injected[index] = TaskReport(
                    index=index, value=None,
                    error="injected fault: deadline missed", worker="chaos",
                    timed_out=True,
                )
            else:
                injected[index] = TaskReport(
                    index=index, value=None,
                    error="InjectedFault: injected transient task error",
                    worker="chaos",
                )
        return live, injected

    def _retryable(self, report: TaskReport, policy: ExecutionPolicy) -> bool:
        if report.ok:
            return False
        return policy.retry_timed_out or not report.timed_out

    def run(self, fn: Callable, tasks: Sequence) -> list[TaskReport]:
        """Apply ``fn`` to every task; reports in submission order."""
        tasks = list(tasks)
        if not tasks:
            return []
        pairs, injected = self._partition_injected(list(enumerate(tasks)))
        reports: dict[int, TaskReport] = dict(injected)
        if pairs:
            for report in self._execute(fn, pairs):
                reports[report.index] = report
        policy = getattr(self, "policy", None)
        if policy is not None and policy.task_retries:
            for __ in range(policy.task_retries):
                failed = [
                    index for index in sorted(reports)
                    if self._retryable(reports[index], policy)
                ]
                if not failed:
                    break
                # Retries run the task for real: injection applies to the
                # original submission only, so a transient injected error
                # is recoverable — which is the point of the policy.
                self._fault_count("tasks_retried", len(failed))
                for report in self._execute(fn, [(i, tasks[i]) for i in failed]):
                    if report.ok:
                        self._fault_count("tasks_recovered")
                    reports[report.index] = report
            exhausted = sum(
                1 for report in reports.values() if self._retryable(report, policy)
            )
            if exhausted:
                self._fault_count("task_retries_exhausted", exhausted)
        return [reports[i] for i in range(len(tasks))]

    def broadcast(self, payload: object) -> PayloadRef:
        """Ship ``payload`` to every worker once; tasks carry the ref.

        Re-broadcasting identical content is a cache hit and moves no
        bytes. Task functions recover the payload with
        :func:`resolve_payload`.
        """
        raise NotImplementedError

    def run_cohorts(self, fn: Callable, cohorts: Sequence) -> list[TaskReport]:
        """Run one task per :class:`CohortSpec`; reports in cohort order.

        A cohort is one dispatch no matter how many keys ride in it:
        fault injection and the retry policy apply per cohort (a failed
        cohort is retried as a unit; the caller decides whether to
        re-run its keys individually afterwards). Batch-size telemetry
        lands in ``cohort_counters`` — dispatches, total rows and peak
        rows — the executor-level mirror of the kernel registry's
        per-kernel row counters.
        """
        cohorts = list(cohorts)
        for spec in cohorts:
            if not isinstance(spec, CohortSpec):
                raise DataError(
                    f"run_cohorts takes CohortSpec tasks, got {type(spec).__name__}"
                )
        reports = self.run(fn, cohorts)
        counters = getattr(self, "cohort_counters", None)
        if counters is None:
            counters = self.cohort_counters = {}
        for spec, report in zip(cohorts, reports):
            if report.ok:
                counters["cohorts_dispatched"] = counters.get("cohorts_dispatched", 0) + 1
                counters["cohort_rows"] = counters.get("cohort_rows", 0) + len(spec.keys)
                counters["cohort_rows_max"] = max(
                    counters.get("cohort_rows_max", 0), len(spec.keys)
                )
            else:
                counters["cohorts_failed"] = counters.get("cohorts_failed", 0) + 1
        return reports

    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Like :meth:`run` but unwraps values, re-raising the first failure."""
        out = []
        for report in self.run(fn, tasks):
            if not report.ok:
                raise DataError(f"task {report.index} failed: {report.error or 'timeout'}")
            out.append(report.value)
        return out

    def drain_kernel_counters(self) -> dict[str, float]:
        """Take (and clear) kernel-counter deltas reported by workers.

        Serial execution runs kernels in the parent process, where the
        pipeline's own snapshot already counts them — so the base
        implementation has nothing to report and returns ``{}``.
        """
        return {}

    def close(self, force: bool = False) -> None:
        """Release worker resources (no-op for serial execution)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every task inline, in submission order.

    The semantics baseline: grid evaluation and estate fan-out on any
    other executor must produce results identical to this one — including
    the broadcast plane, which here installs the payload straight into
    the in-process registry (same fingerprinting, no spill file), so
    serial-vs-pool parity tests exercise one code path end to end.
    """

    def __init__(
        self,
        policy: ExecutionPolicy | None = None,
        injector=None,
    ) -> None:
        self.policy = policy
        self.injector = injector
        self.fault_counters: dict[str, int] = {}
        self.bytes_broadcast = 0
        self.broadcasts_created = 0
        self.broadcast_hits = 0

    def broadcast(self, payload: object) -> PayloadRef:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        key = hashlib.sha1(blob).hexdigest()
        if key in _PAYLOAD_REGISTRY:
            self.broadcast_hits += 1
            _PAYLOAD_REGISTRY.move_to_end(key)
        else:
            _install_payload(key, payload)
            self.broadcasts_created += 1
            self.bytes_broadcast += len(blob)
        return PayloadRef(key=key, path=None, nbytes=len(blob))

    def _execute(self, fn: Callable, pairs: list[tuple[int, object]]) -> list[TaskReport]:
        # Match pool semantics: kernels are warm before the first task runs
        # (for numpy backends this is a microsecond no-op after the first call).
        from . import kernels as engine_kernels

        engine_kernels.warm_worker_init()
        reports = []
        for index, task in pairs:
            report = _run_captured(fn, task, index)
            # In-process execution: label the worker "serial" so telemetry
            # distinguishes it from pool workers at a glance.
            reports.append(
                TaskReport(
                    index=report.index,
                    value=report.value,
                    error=report.error,
                    seconds=report.seconds,
                    worker="serial",
                )
            )
        return reports


class PoolExecutor(Executor):
    """Process-pool executor with a lazily created, reused worker pool.

    Parameters
    ----------
    max_workers:
        Worker process count; ``None`` or ``0`` means one per CPU.
    chunksize:
        Tasks per worker dispatch. Larger chunks amortise IPC overhead
        for cheap tasks; 1 gives the finest timeout granularity. The
        default adapts: ``max(1, len(tasks) // (4 * max_workers))``
        capped at 8, mirroring what ``ProcessPoolExecutor.map`` users
        typically hand-tune to.
    timeout:
        Per-task deadline in seconds (``None`` = wait forever). Applied
        per dispatched chunk as ``timeout * len(chunk)``: a chunk that
        misses its deadline yields timed-out reports for all its tasks.
        The worker is left to finish in the background — the pool is not
        torn down — so prefer ``chunksize=1`` when timeouts matter.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created on the first :meth:`run` and kept for subsequent calls;
    ``pools_created`` counts how many times a pool was (re)built, which
    tests use to assert reuse. A broken pool (a worker died hard) is
    replaced transparently on the next call.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int | None = None,
        timeout: float | None = None,
        policy: ExecutionPolicy | None = None,
        injector=None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise DataError(f"max_workers must be >= 0, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise DataError(f"chunksize must be >= 1, got {chunksize}")
        if timeout is not None and timeout <= 0:
            raise DataError(f"timeout must be positive, got {timeout}")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.chunksize = chunksize
        self.timeout = timeout
        self.policy = policy
        self.injector = injector
        self.fault_counters: dict[str, int] = {}
        self.pools_created = 0
        self.tasks_dispatched = 0
        self.bytes_broadcast = 0
        self.broadcasts_created = 0
        self.broadcast_hits = 0
        self._pool: ProcessPoolExecutor | None = None
        self._broadcasts: dict[str, PayloadRef] = {}
        self._close_lock = threading.Lock()
        #: Kernel-counter deltas reported by workers, accumulated until a
        #: trace-owning caller drains them (see engine.kernels policy).
        self.kernel_counters: dict[str, float] = {}

    # ------------------------------------------------------------------
    def broadcast(self, payload: object) -> PayloadRef:
        """Spill the payload to a file once per content fingerprint.

        Workers read and cache it lazily on first resolve, so the bytes
        cross the process boundary once per (pool, fingerprint) rather
        than once per task. The spill file outlives a broken pool:
        replacement workers re-read it transparently, no re-broadcast
        bookkeeping required.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        key = hashlib.sha1(blob).hexdigest()
        ref = self._broadcasts.get(key)
        if ref is not None:
            self.broadcast_hits += 1
            return ref
        fd, path = tempfile.mkstemp(prefix=f"repro-payload-{key[:12]}-", suffix=".pkl")
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        ref = PayloadRef(key=key, path=path, nbytes=len(blob))
        self._broadcasts[key] = ref
        self.broadcasts_created += 1
        self.bytes_broadcast += len(blob)
        return ref

    def _drop_broadcasts(self) -> None:
        for ref in self._broadcasts.values():
            if ref.path is not None:
                try:
                    os.unlink(ref.path)
                except OSError:
                    pass
        self._broadcasts.clear()

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=_pool_worker_init
            )
            self.pools_created += 1
        return self._pool

    def _chunk_size_for(self, n_tasks: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, min(8, n_tasks // (4 * self.max_workers)))

    @property
    def _rebuild_broken(self) -> bool:
        return self.policy.rebuild_broken_pool if self.policy is not None else True

    def _execute(self, fn: Callable, pairs: list[tuple[int, object]]) -> list[TaskReport]:
        size = self._chunk_size_for(len(pairs))
        chunks = [pairs[i : i + size] for i in range(0, len(pairs), size)]
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
        except BrokenProcessPool:
            if not self._rebuild_broken:
                raise
            self._reset_pool()
            self._fault_count("pools_rebuilt")
            pool = self._ensure_pool()
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
        self.tasks_dispatched += len(pairs)

        reports: dict[int, TaskReport] = {}
        broken = False
        for chunk, future in zip(chunks, futures):
            deadline = self.timeout * len(chunk) if self.timeout else None
            try:
                chunk_reports, kernel_delta = future.result(timeout=deadline)
                for report in chunk_reports:
                    reports[report.index] = report
                for key, value in kernel_delta.items():
                    self.kernel_counters[key] = self.kernel_counters.get(key, 0.0) + value
            except FuturesTimeoutError:
                future.cancel()
                for index, __ in chunk:
                    reports[index] = TaskReport(
                        index=index,
                        value=None,
                        error=f"timed out after {deadline:g}s",
                        worker="?",
                        timed_out=True,
                    )
            except BrokenProcessPool as exc:
                broken = True
                for index, __ in chunk:
                    reports.setdefault(
                        index,
                        TaskReport(
                            index=index,
                            value=None,
                            error=f"worker died: {exc}",
                            worker="?",
                        ),
                    )
        if broken and self._rebuild_broken:
            # Tear the corpse down now; the next _execute lazily rebuilds.
            self._reset_pool()
            self._fault_count("pools_rebuilt")
        return [reports[index] for index, __ in pairs]

    def drain_kernel_counters(self) -> dict[str, float]:
        """Take (and clear) the kernel-counter deltas workers reported."""
        out = self.kernel_counters
        self.kernel_counters = {}
        return out

    # ------------------------------------------------------------------
    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self, force: bool = False) -> None:
        """Shut the pool down and release broadcast spill files.

        ``force=True`` terminates worker processes outright (used after
        timeout tests abandon a still-running task); otherwise pending
        work is cancelled and workers exit once idle. Idempotent and
        thread-safe: a caller's own ``close()`` cannot race the
        interpreter-exit :func:`shutdown_default_executors` hook.
        """
        with self._close_lock:
            self._drop_broadcasts()
            if self._pool is None:
                return
            if force:
                processes = list(getattr(self._pool, "_processes", {}).values())
                self._pool.shutdown(wait=False, cancel_futures=True)
                for proc in processes:
                    proc.terminate()
            else:
                self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


# ---------------------------------------------------------------------------
# Shared executors for the n_jobs convention
# ---------------------------------------------------------------------------
_SHARED: dict[tuple[int, int | None, float | None], PoolExecutor] = {}
_SHARED_LOCK = threading.Lock()
_SERIAL = SerialExecutor()


def default_executor(
    n_jobs: int = 1,
    chunksize: int | None = None,
    timeout: float | None = None,
) -> Executor:
    """The process-wide shared executor for an ``n_jobs`` worker count.

    ``n_jobs <= 1`` returns the shared :class:`SerialExecutor`;
    ``n_jobs == 0`` means one worker per CPU. Pool executors are cached
    per effective **configuration** — worker count, chunking and
    timeout — so every caller asking for the same parallelism shares one
    pool (repeated selections never pay a per-call pool spawn) while
    differently-configured callers never silently share a pool whose
    chunking or deadline semantics they did not ask for.
    """
    if n_jobs < 0:
        raise DataError(f"n_jobs must be >= 0, got {n_jobs}")
    workers = os.cpu_count() or 1 if n_jobs == 0 else n_jobs
    if workers <= 1:
        return _SERIAL
    cache_key = (workers, chunksize, timeout)
    with _SHARED_LOCK:
        if cache_key not in _SHARED:
            _SHARED[cache_key] = PoolExecutor(
                max_workers=workers, chunksize=chunksize, timeout=timeout
            )
        return _SHARED[cache_key]


def shutdown_default_executors() -> None:
    """Close every cached shared pool (tests and interpreter exit).

    Idempotent and thread-safe: each pool is popped from the cache under
    a lock before being closed, and :meth:`PoolExecutor.close` itself is
    idempotent, so the atexit hook cannot race (or double-close) a pool a
    benchmark already shut down explicitly.
    """
    while True:
        with _SHARED_LOCK:
            if not _SHARED:
                return
            __, executor = _SHARED.popitem()
        executor.close()


atexit.register(shutdown_default_executors)
